"""E2 benchmarks -- Theorem 4.6: wPAXOS O(D * F_ack) scaling.

Series: decision time vs diameter on lines, vs n on cliques (flat),
and on 2-D meshes. Each measured run re-asserts consensus and the
claimed time shape.
"""

import pytest

from benchmarks._helpers import run_consensus_once
from repro.core.wpaxos import WPaxosConfig, WPaxosNode
from repro.macsim.schedulers import SynchronousScheduler
from repro.topology import clique, grid, line


def make_factory(graph):
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    return lambda v, val: WPaxosNode(uid[v], val, graph.n,
                                     WPaxosConfig())


@pytest.mark.parametrize("diameter", [9, 19, 39])
def test_wpaxos_line_diameter_series(benchmark, diameter):
    graph = line(diameter + 1)
    factory = make_factory(graph)

    def run():
        t = run_consensus_once(graph, factory,
                               SynchronousScheduler(1.0))
        # Theorem 4.6 shape: bounded constant times D.
        assert t <= 8.0 * diameter
        return t

    benchmark(run)


@pytest.mark.parametrize("n", [8, 32])
def test_wpaxos_clique_n_series(benchmark, n):
    graph = clique(n)
    factory = make_factory(graph)

    def run():
        t = run_consensus_once(graph, factory,
                               SynchronousScheduler(1.0))
        assert t <= 10.0  # flat in n at D = 1
        return t

    benchmark(run)


@pytest.mark.parametrize("side", [5, 8])
def test_wpaxos_grid_series(benchmark, side):
    graph = grid(side, side)
    diameter = graph.diameter()
    factory = make_factory(graph)

    def run():
        t = run_consensus_once(graph, factory,
                               SynchronousScheduler(1.0))
        assert t <= 8.0 * diameter
        return t

    benchmark(run)
