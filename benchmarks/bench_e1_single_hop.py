"""E1 benchmarks -- Theorem 4.1: Two-Phase Consensus, single hop.

The series: decision time is O(F_ack), independent of n. The
benchmark times full executions at several clique sizes; wall-clock
grows with n (more events to simulate) but the *simulated* decision
time, asserted inside, stays at 2 rounds.
"""

import pytest

from benchmarks._helpers import run_consensus_once
from repro.core.twophase import TwoPhaseConsensus
from repro.macsim.schedulers import (RandomDelayScheduler,
                                     SynchronousScheduler)
from repro.topology import clique


def factory(label, value):
    return TwoPhaseConsensus(uid=label, initial_value=value)


@pytest.mark.parametrize("n", [2, 8, 32])
def test_two_phase_clique_synchronous(benchmark, n):
    graph = clique(n)

    def run():
        t = run_consensus_once(graph, factory,
                               SynchronousScheduler(1.0))
        assert t <= 2.0  # the Theorem 4.1 claim, re-checked per run
        return t

    benchmark(run)


@pytest.mark.parametrize("f_ack", [1.0, 4.0])
def test_two_phase_f_ack_scaling(benchmark, f_ack):
    graph = clique(10)

    def run():
        t = run_consensus_once(graph, factory,
                               SynchronousScheduler(f_ack))
        assert t == 2.0 * f_ack
        return t

    benchmark(run)


def test_two_phase_random_scheduler(benchmark):
    graph = clique(16)
    seeds = iter(range(10 ** 9))

    def run():
        sched = RandomDelayScheduler(1.0, seed=next(seeds))
        t = run_consensus_once(graph, factory, sched)
        assert t <= 4.0
        return t

    benchmark(run)
