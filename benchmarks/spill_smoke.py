"""Bounded-memory smoke for the spill pipeline:
``python -m benchmarks.spill_smoke``.

Sets a *hard* address-space ceiling (``resource.setrlimit``) at the
process's current footprint plus ``--headroom-mb``, then drives a
full-level :class:`~repro.macsim.trace.SpillSink` run of at least
``--events`` events, streams the trace back through
``check_model_invariants``, collects metrics, and exports the trace
with the streaming (schema v5) writer. If any stage's memory grew with
the trace instead of the chunk size, the allocation fails and the
smoke exits non-zero -- the ceiling is enforced by the kernel, not by
sampling.

CI runs this at 10^6 events; the acceptance-scale 10^7-event run is
the same invocation with ``--events 10000000`` (a few minutes of
wall-clock, same ceiling).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import tempfile

from repro.analysis import collect_metrics, save_trace
from repro.macsim import (Process, SpillSink, build_simulation,
                          check_model_invariants)
from repro.macsim.schedulers import SynchronousScheduler
from repro.topology import clique


class _FloodProcess(Process):
    """Broadcasts ``rounds`` messages back-to-back, then decides."""

    def __init__(self, uid, rounds: int):
        super().__init__(uid=uid, initial_value=uid % 2)
        self.rounds = rounds
        self.sent = 0

    def on_start(self):
        self._next()

    def on_ack(self):
        self._next()

    def _next(self):
        if self.sent < self.rounds:
            self.sent += 1
            self.broadcast(("m", self.uid, self.sent))
        elif not self.decided:
            # Not a real consensus protocol -- every node "decides" 0
            # so the smoke can assert agreement/termination checking
            # works over the spilled trace.
            self.decide(0)


def _vm_size_mb() -> float:
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) / 1024.0
    raise RuntimeError("VmSize not found")  # pragma: no cover


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.spill_smoke",
        description="SpillSink bounded-memory smoke (hard RSS ceiling).")
    parser.add_argument("--events", type=int, default=1_000_000,
                        help="minimum events to process (default 1M)")
    parser.add_argument("--nodes", type=int, default=24,
                        help="clique size (default 24)")
    parser.add_argument("--headroom-mb", type=int, default=256,
                        help="address-space ceiling above the current "
                             "footprint (default 256 MB); an in-RAM "
                             "full trace of the same run needs far "
                             "more")
    parser.add_argument("--chunk-records", type=int, default=50_000)
    parser.add_argument("--skip-rlimit", action="store_true",
                        help="measure without enforcing the ceiling "
                             "(non-Linux debugging)")
    args = parser.parse_args(argv)

    n = args.nodes
    # Per full round: n broadcasts x (n-1 deliveries + 1 ack) events.
    per_round = n * n
    rounds = args.events // per_round + 1

    baseline_mb = _vm_size_mb()
    if not args.skip_rlimit:
        limit = int((baseline_mb + args.headroom_mb) * 1024 * 1024)
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        print(f"address-space ceiling: {limit / 1e6:,.0f} MB "
              f"(baseline {baseline_mb:,.0f} MB "
              f"+ {args.headroom_mb} MB headroom)")

    graph = clique(n)
    values = {v: v % 2 for v in graph.nodes}
    with tempfile.TemporaryDirectory(prefix="spill-smoke-") as spill_dir:
        sink = SpillSink(spill_dir, chunk_records=args.chunk_records)
        sim = build_simulation(
            graph, lambda v: _FloodProcess(v, rounds),
            SynchronousScheduler(1.0), trace_sink=sink,
            # Validated plans let the engine free each broadcast's
            # book-keeping at its ack (O(n) records in RAM).
            validate_plans=True)
        # Each flood round completes in one f_ack (= 1.0); leave slack
        # for the final decision wave rather than inheriting the
        # engine's default time ceiling.
        result = sim.run(max_events=args.events * 2,
                         max_time=float(rounds) + 10.0)
        sink.close()
        print(f"run: {result.events_processed:,} events, "
              f"{len(sink):,} records, "
              f"{len(sink.chunk_paths())} chunks, "
              f"stop={result.stop_reason}")
        if result.events_processed < args.events:
            print(f"FAIL: processed fewer than {args.events:,} events")
            return 1

        report = check_model_invariants(graph, sink, 1.0)
        if not report.ok:
            print(f"FAIL: invariants violated: {report.violations[:3]}")
            return 1
        print("invariants: ok (streamed replay)")

        metrics = collect_metrics(
            algorithm="flood", topology=f"clique({n})", graph=graph,
            scheduler=sim.scheduler, result=result,
            initial_values=values, diameter=1)
        print(f"metrics: broadcasts={metrics.broadcasts:,} "
              f"deliveries={metrics.deliveries:,} "
              f"termination={metrics.termination}")
        if not (metrics.agreement and metrics.termination):
            print("FAIL: consensus checks failed on the smoke workload")
            return 1

        export_path = os.path.join(spill_dir, "export.jsonl")
        save_trace(sink, export_path,
                   metadata={"smoke": True, "events": args.events})
        export_mb = os.path.getsize(export_path) / 1e6
        print(f"export: {export_mb:,.1f} MB (streamed, schema v5)")

    peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print(json.dumps({
        "events": result.events_processed,
        "records": len(sink),
        "ru_maxrss_mb": round(peak_mb, 1),
        "baseline_vmsize_mb": round(baseline_mb, 1),
    }))
    print("spill smoke ok: full-level trace replayed, checked and "
          "exported under the memory ceiling")
    return 0


if __name__ == "__main__":
    sys.exit(main())
