"""Bounded-memory smoke for the spill pipeline:
``python -m benchmarks.spill_smoke``.

Sets a *hard* address-space ceiling (``resource.setrlimit``) at the
process's current footprint plus ``--headroom-mb``, then drives a
full-level disk-spilling run of at least ``--events`` events in the
chosen ``--format`` (chunked JSONL via
:class:`~repro.macsim.trace.SpillSink`, or binary columnar chunks via
:class:`~repro.macsim.columnar.ColumnarSink`), streams the trace back
through ``check_model_invariants``, collects metrics, and exports the
trace with the streaming (schema v6) writer. If any stage's memory
grew with the trace instead of the chunk size, the allocation fails
and the smoke exits non-zero -- the ceiling is enforced by the
kernel, not by sampling.

The smoke reports each format's trace-bytes-per-event ratio, and
``--disk-budget-mb`` bounds the spill footprint *loudly*: past the
budget the sink raises
:class:`~repro.macsim.trace.SpillBudgetError` and the smoke FAILS,
instead of silently truncating the trace. Columnar runs additionally
reopen the spill directory (``ColumnarSink.load``) and re-derive the
metrics from the columns -- the vectorized disk-replay path.

CI runs the JSONL format at 10^6 events and the columnar format at
10^7; the acceptance-scale 10^8-event columnar run is the same
invocation with ``--events 100000000 --format columnar
--headroom-mb 1024`` (the vectorized invariant audit keeps
O(broadcasts) numpy state, ~75 B per broadcast).

Long runs heartbeat progress every ``--heartbeat-events`` (events/s,
VmSize, spilled bytes) by slicing the run into resumable
``sim.run(max_events=...)`` calls -- event-for-event identical to one
uninterrupted run. ``--telemetry-out PATH`` attaches a
:class:`~repro.macsim.telemetry.Telemetry` and writes its snapshot;
on ``SpillBudgetError`` a partial snapshot (marked ``aborted``) is
still flushed, which is the post-mortem artifact CI uploads.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import tempfile
import time

from repro.analysis import collect_metrics, save_trace
from repro.macsim import (ColumnarSink, Process, SpillBudgetError,
                          SpillSink, Telemetry, build_simulation,
                          check_model_invariants)
# Imported at module level so numpy (pulled in by the columnar fast
# paths) is resident *before* the VmSize baseline is measured.
from repro.macsim.columnar import have_numpy
from repro.macsim.schedulers import SynchronousScheduler
from repro.topology import clique


class _FloodProcess(Process):
    """Broadcasts ``rounds`` messages back-to-back, then decides."""

    def __init__(self, uid, rounds: int):
        super().__init__(uid=uid, initial_value=uid % 2)
        self.rounds = rounds
        self.sent = 0

    def on_start(self):
        self._next()

    def on_ack(self):
        self._next()

    def _next(self):
        if self.sent < self.rounds:
            self.sent += 1
            self.broadcast(("m", self.uid, self.sent))
        elif not self.decided:
            # Not a real consensus protocol -- every node "decides" 0
            # so the smoke can assert agreement/termination checking
            # works over the spilled trace.
            self.decide(0)


def _vm_size_mb() -> float:
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                return int(line.split()[1]) / 1024.0
    raise RuntimeError("VmSize not found")  # pragma: no cover


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.spill_smoke",
        description="Spill-sink bounded-memory smoke (hard RSS "
                    "ceiling, loud disk budget).")
    parser.add_argument("--events", type=int, default=1_000_000,
                        help="minimum events to process (default 1M)")
    parser.add_argument("--nodes", type=int, default=24,
                        help="clique size (default 24)")
    parser.add_argument("--format", default="jsonl",
                        choices=("jsonl", "columnar"),
                        help="spill format: chunked JSONL (SpillSink) "
                             "or binary columnar chunks (ColumnarSink)")
    parser.add_argument("--headroom-mb", type=int, default=256,
                        help="address-space ceiling above the current "
                             "footprint (default 256 MB); an in-RAM "
                             "full trace of the same run needs far "
                             "more. Columnar 10^8-event runs need "
                             "~1024 (O(broadcasts) audit state)")
    parser.add_argument("--disk-budget-mb", type=int, default=None,
                        help="hard spill-bytes budget; exceeding it "
                             "mid-run FAILS the smoke loudly "
                             "(SpillBudgetError) instead of silently "
                             "truncating the trace")
    parser.add_argument("--chunk-records", type=int, default=50_000)
    parser.add_argument("--heartbeat-events", type=int,
                        default=1_000_000, metavar="N",
                        help="print a progress heartbeat (events/s, "
                             "VmSize, spilled bytes) every N events "
                             "(default 1M; 0 disables). The run is "
                             "sliced into resumable sim.run() calls, "
                             "which is event-for-event identical to "
                             "one uninterrupted run")
    parser.add_argument("--telemetry-out", default=None, metavar="PATH",
                        help="attach a Telemetry to the run and write "
                             "its snapshot to PATH; on SpillBudgetError "
                             "a *partial* snapshot (marked aborted) is "
                             "still flushed for the post-mortem")
    parser.add_argument("--json-out", default=None, metavar="PATH",
                        help="also write the summary JSON to PATH "
                             "(perf_report --attach-smoke embeds it)")
    parser.add_argument("--skip-rlimit", action="store_true",
                        help="measure without enforcing the ceiling "
                             "(non-Linux debugging)")
    args = parser.parse_args(argv)

    n = args.nodes
    # Per full round: n broadcasts x (n-1 deliveries + 1 ack) events.
    per_round = n * n
    rounds = args.events // per_round + 1
    columnar = args.format == "columnar"
    sink_cls = ColumnarSink if columnar else SpillSink
    max_bytes = (None if args.disk_budget_mb is None
                 else args.disk_budget_mb * 1_000_000)

    baseline_mb = _vm_size_mb()
    if not args.skip_rlimit:
        limit = int((baseline_mb + args.headroom_mb) * 1024 * 1024)
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        print(f"address-space ceiling: {limit / 1e6:,.0f} MB "
              f"(baseline {baseline_mb:,.0f} MB "
              f"+ {args.headroom_mb} MB headroom)")
    print(f"format: {args.format} "
          f"(numpy fast paths: {'on' if have_numpy() else 'off'})")

    graph = clique(n)
    values = {v: v % 2 for v in graph.nodes}
    summary = None
    with tempfile.TemporaryDirectory(prefix="spill-smoke-") as spill_dir:
        chunk_dir = os.path.join(spill_dir, "chunks")
        sink = sink_cls(chunk_dir, chunk_records=args.chunk_records,
                        max_bytes=max_bytes)
        telemetry = None
        if args.telemetry_out:
            # out_path makes record_abort() flush a partial snapshot
            # to disk even when the budget blows mid-run.
            telemetry = Telemetry(
                label=f"spill-smoke-{args.format}-clique{n}",
                out_path=args.telemetry_out)
        sim = build_simulation(
            graph, lambda v: _FloodProcess(v, rounds),
            SynchronousScheduler(1.0), trace_sink=sink,
            # Validated plans let the engine free each broadcast's
            # book-keeping at its ack (O(n) records in RAM).
            validate_plans=True, telemetry=telemetry)
        # Each flood round completes in one f_ack (= 1.0); leave slack
        # for the final decision wave rather than inheriting the
        # engine's default time ceiling.
        event_budget = args.events * 2
        deadline = float(rounds) + 10.0
        heartbeat = max(0, args.heartbeat_events)
        run_start = time.perf_counter()
        events_total = 0
        try:
            # The engine resumes exactly where a max_events stop left
            # off, so slicing the run for heartbeats is pure
            # observation: the event sequence (and the spilled trace)
            # is identical to one uninterrupted run.
            while True:
                step = (event_budget - events_total if not heartbeat
                        else min(heartbeat, event_budget - events_total))
                result = sim.run(max_events=step, max_time=deadline)
                events_total += result.events_processed
                if (result.stop_reason != "max_events"
                        or events_total >= event_budget):
                    break
                elapsed = time.perf_counter() - run_start
                print(f"heartbeat: {events_total:,} events, "
                      f"{events_total / elapsed:,.0f} ev/s, "
                      f"vmsize {_vm_size_mb():,.0f} MB, "
                      f"spilled {sink.spilled_bytes() / 1e6:,.1f} MB "
                      f"({len(sink.chunk_paths())} chunks)",
                      flush=True)
            sink.close()
        except SpillBudgetError as exc:
            if telemetry is not None:
                # sim.run's abort path already flushed if the error
                # surfaced mid-loop; re-recording is idempotent and
                # also covers a budget blown at sink.close().
                telemetry.record_abort(sim, exc)
                print(f"telemetry (partial, aborted): "
                      f"{args.telemetry_out}")
            print(f"FAIL: disk budget exceeded mid-run -- {exc}")
            print("(the trace was NOT silently truncated; raise "
                  "--disk-budget-mb or lower --events)")
            return 1
        run_seconds = time.perf_counter() - run_start
        spilled_bytes = sink.spilled_bytes()
        bytes_per_event = spilled_bytes / max(events_total, 1)
        bytes_per_record = spilled_bytes / max(len(sink), 1)
        print(f"run: {events_total:,} events, "
              f"{len(sink):,} records, "
              f"{len(sink.chunk_paths())} chunks, "
              f"stop={result.stop_reason}, "
              f"{events_total / run_seconds:,.0f} ev/s")
        print(f"spill: {spilled_bytes / 1e6:,.1f} MB on disk -> "
              f"{bytes_per_event:.1f} B/event, "
              f"{bytes_per_record:.1f} B/record ({args.format})")
        if events_total < args.events:
            print(f"FAIL: processed fewer than {args.events:,} events")
            return 1
        if telemetry is not None:
            telemetry.write(args.telemetry_out)
            spans = telemetry.counters["broadcasts_acked"]
            print(f"telemetry: {args.telemetry_out} "
                  f"({spans:,} spans closed, "
                  f"{telemetry.events_processed:,} events counted)")

        replay_start = time.perf_counter()
        report = check_model_invariants(graph, sink, 1.0)
        replay_seconds = time.perf_counter() - replay_start
        if not report.ok:
            print(f"FAIL: invariants violated: {report.violations[:3]}")
            return 1
        print(f"invariants: ok "
              f"({'vectorized' if columnar and have_numpy() else 'streamed'}"
              f" replay, {len(sink) / replay_seconds:,.0f} rec/s)")

        metrics = collect_metrics(
            algorithm="flood", topology=f"clique({n})", graph=graph,
            scheduler=sim.scheduler, result=result,
            initial_values=values, diameter=1)
        print(f"metrics: broadcasts={metrics.broadcasts:,} "
              f"deliveries={metrics.deliveries:,} "
              f"termination={metrics.termination}")
        if not (metrics.agreement and metrics.termination):
            print("FAIL: consensus checks failed on the smoke workload")
            return 1

        if columnar:
            # Disk-replay verification: reopen the spill directory and
            # re-derive every counter and the metrics from the columns
            # (the vectorized ColumnarSink.load path).
            reopened = ColumnarSink.load(chunk_dir)
            if (len(reopened) != len(sink)
                    or reopened.broadcast_count() != sink.broadcast_count()
                    or reopened.delivery_count() != sink.delivery_count()
                    or reopened.decision_times() != sink.decision_times()):
                print("FAIL: reopened columnar sink disagrees with the "
                      "live one")
                return 1
            replay_metrics = collect_metrics(
                algorithm="flood", topology=f"clique({n})", graph=graph,
                scheduler=sim.scheduler, trace=reopened,
                initial_values=values, diameter=1)
            if not (replay_metrics.agreement
                    and replay_metrics.termination
                    and replay_metrics.broadcasts == metrics.broadcasts):
                print("FAIL: replay metrics diverged from the live run")
                return 1
            print(f"reopen: ColumnarSink.load verified "
                  f"({len(reopened):,} records, metrics match)")

        export_path = os.path.join(spill_dir, "export.trace")
        save_trace(sink, export_path,
                   metadata={"smoke": True, "events": args.events})
        export_mb = os.path.getsize(export_path) / 1e6
        print(f"export: {export_mb:,.1f} MB (streamed, schema v6, "
              f"{'columnar' if columnar else 'jsonl'} chunks)")

        peak_mb = (resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                   / 1024)
        summary = {
            "format": args.format,
            "numpy": have_numpy(),
            "nodes": n,
            "events": events_total,
            "records": len(sink),
            "chunks": len(sink.chunk_paths()),
            "spilled_bytes": spilled_bytes,
            "bytes_per_event": round(bytes_per_event, 2),
            "bytes_per_record": round(bytes_per_record, 2),
            "export_mb": round(export_mb, 1),
            "run_seconds": round(run_seconds, 2),
            "events_per_sec": round(events_total / run_seconds, 1),
            "replay_seconds": round(replay_seconds, 2),
            "replay_records_per_sec": round(
                len(sink) / replay_seconds, 1),
            "headroom_mb": args.headroom_mb,
            "rlimit_enforced": not args.skip_rlimit,
            "ru_maxrss_mb": round(peak_mb, 1),
            "baseline_vmsize_mb": round(baseline_mb, 1),
            "disk_budget_mb": args.disk_budget_mb,
            "telemetry_out": args.telemetry_out,
            "telemetry_spans": (None if telemetry is None
                                else len(telemetry.f_ack)),
        }

    print(json.dumps(summary))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(f"summary written: {args.json_out}")
    print("spill smoke ok: full-level trace replayed, checked and "
          "exported under the memory ceiling")
    return 0


if __name__ == "__main__":
    sys.exit(main())
