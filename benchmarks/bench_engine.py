"""Engine microbenchmarks: event throughput, fan-out, trace queries.

Unlike the per-experiment benchmarks (bench_e1..e11), these isolate the
discrete-event substrate itself -- the layer PR 1's fast path targets:

* ``run_event_queue`` -- raw push/pop throughput of the heap;
* ``run_broadcast_fanout`` -- a clique echo flood, stressing
  ``mac_broadcast`` scheduling and delivery dispatch;
* ``run_trace_queries`` -- repeated metric queries over a large trace
  (O(full scan) in the seed engine, O(answer) with indexes);
* ``run_wpaxos_clique`` -- the acceptance workload: a full wPAXOS
  consensus execution on a clique, reported as events/second.

Each ``run_*`` function executes one measured unit and returns the
work count, so :mod:`benchmarks.perf_report` can time them without
pytest. The ``test_*`` wrappers expose the same workloads under
pytest-benchmark (``pytest benchmarks/ --benchmark-only``).

The module runs against both the current engine and the seed engine
(``perf_report --seed-tree``): everything newer than the seed API is
imported defensively.
"""

from __future__ import annotations

import os

from repro.macsim import Process, build_simulation
from repro.macsim.events import DELIVER_PRIORITY, EventQueue
from repro.macsim.schedulers import SynchronousScheduler
from repro.macsim.trace import Trace
from repro.topology import clique

try:  # engine >= PR 1
    from repro.macsim.trace import TraceLevel
except ImportError:  # seed engine
    TraceLevel = None

try:  # engine >= PR 3
    from repro.macsim.trace import SpillSink
except ImportError:  # earlier engines
    SpillSink = None

try:  # engine >= PR 5
    from repro.macsim.dynamics import EdgeChurn
except ImportError:  # earlier engines
    EdgeChurn = None

try:  # engine >= PR 6
    from repro.macsim.columnar import ColumnarSink, have_numpy
except ImportError:  # earlier engines
    ColumnarSink = None

    def have_numpy() -> bool:
        return False

try:  # engine >= PR 7
    from repro.macsim.telemetry import Telemetry
except ImportError:  # earlier engines
    Telemetry = None

try:  # analysis >= PR 1
    from repro.analysis import parallel_sweep
except ImportError:  # seed engine
    parallel_sweep = None
from repro.analysis import sweep

try:  # analysis >= PR 8 (work-stealing executor)
    from repro.analysis import saturating_workers
    HAVE_SWEEP_EXECUTORS = True
except ImportError:  # earlier trees: parallel_sweep has no executor arg
    saturating_workers = None
    HAVE_SWEEP_EXECUTORS = False

try:  # engine >= PR 9 (consensus-as-a-service runtime)
    from repro.macsim.service import run_service
    HAVE_SERVICE = True
except ImportError:  # earlier engines
    run_service = None
    HAVE_SERVICE = False

try:  # service >= PR 10 (request tracing + metrics registry)
    from repro.macsim.service import RequestTracer  # noqa: F401
    HAVE_TRACING = HAVE_SERVICE
except ImportError:  # earlier service layers
    HAVE_TRACING = False

try:
    from repro.core.wpaxos import WPaxosConfig, WPaxosNode
except ImportError:  # pragma: no cover - wpaxos is part of the seed
    WPaxosConfig = WPaxosNode = None


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def run_event_queue(n: int = 100_000) -> int:
    """Push ``n`` events, pop them all; returns ops performed (2n)."""
    queue = EventQueue()
    push = queue.push
    for i in range(n):
        push(float(i % 97), DELIVER_PRIORITY, "deliver", node=i)
    pop = queue.pop
    while pop() is not None:
        pass
    return 2 * n


class _EchoProcess(Process):
    """Broadcasts ``count`` messages back-to-back (ack-driven)."""

    def __init__(self, uid, count: int = 5):
        super().__init__(uid=uid, initial_value=0)
        self.count = count
        self.sent = 0

    def on_start(self):
        self._next()

    def on_ack(self):
        self._next()

    def _next(self):
        if self.sent < self.count:
            self.sent += 1
            self.broadcast(("m", self.uid, self.sent))


def run_broadcast_fanout(n_nodes: int = 48, rounds: int = 5) -> int:
    """Echo flood on a clique; returns events processed."""
    graph = clique(n_nodes)
    sim = build_simulation(graph, lambda v: _EchoProcess(v, rounds),
                           SynchronousScheduler(1.0))
    return sim.run().events_processed


def run_dense_fanout(n_nodes: int = 96, rounds: int = 3) -> int:
    """The batched-scheduling showcase: an echo flood on a dense
    clique under the synchronous scheduler, where every broadcast's
    fan-out shares one timestamp -- one ``bdeliver`` heap entry per
    broadcast on PR 3+, one entry per neighbor before. Returns events
    processed (identical across engines)."""
    return run_broadcast_fanout(n_nodes, rounds)


def run_spill_clique(n: int = 24, rounds: int = 40,
                     chunk_records: int = 20_000,
                     telemetry: bool = False) -> int:
    """Full-level SpillSink throughput: an echo flood whose complete
    trace streams to chunked JSONL on disk. Returns events processed;
    the sink's temp directory is removed before returning.
    ``telemetry=True`` runs the identical workload with a live
    Telemetry attached (the PR 7 overhead-gate counterpart)."""
    graph = clique(n)
    sink = SpillSink(chunk_records=chunk_records)
    try:
        sim = build_simulation(graph, lambda v: _EchoProcess(v, rounds),
                               SynchronousScheduler(1.0),
                               trace_sink=sink,
                               **({"telemetry": Telemetry()}
                                  if telemetry else {}))
        result = sim.run()
        sink.close()
        assert len(sink) > 0
        if telemetry:
            assert sim.telemetry.counters["deliveries"] > 0
        return result.events_processed
    finally:
        sink.cleanup()


def run_spill_clique_tel(n: int = 24, rounds: int = 40) -> int:
    """``run_spill_clique`` with telemetry on (overhead measurement)."""
    return run_spill_clique(n, rounds, telemetry=True)


def run_columnar_clique(n: int = 24, rounds: int = 40,
                        chunk_records: int = 20_000) -> int:
    """Full-level ColumnarSink throughput: the spill_clique24 workload
    writing binary struct-packed column chunks instead of JSONL.
    Returns events processed; the temp directory is removed before
    returning."""
    graph = clique(n)
    sink = ColumnarSink(chunk_records=chunk_records)
    try:
        sim = build_simulation(graph, lambda v: _EchoProcess(v, rounds),
                               SynchronousScheduler(1.0),
                               trace_sink=sink)
        result = sim.run()
        sink.close()
        assert len(sink) > 0
        return result.events_processed
    finally:
        sink.cleanup()


def build_replay_corpus(n: int = 24, rounds: int = 40,
                        chunk_records: int = 20_000,
                        columnar: bool = True):
    """One spill_clique24-shaped execution persisted to disk for the
    replay benchmarks: ``(graph, sink)``, with the sink closed and its
    chunks on disk. Keep the sink referenced -- its temp directory is
    removed when it is garbage collected."""
    graph = clique(n)
    cls = ColumnarSink if columnar else SpillSink
    sink = cls(chunk_records=chunk_records)
    sim = build_simulation(graph, lambda v: _EchoProcess(v, rounds),
                           SynchronousScheduler(1.0), trace_sink=sink)
    sim.run()
    sink.close()
    return graph, sink


def run_columnar_replay(graph, directory: str, f_ack: float = 1.0) -> int:
    """Vectorized disk replay: reopen a columnar spill directory
    (numpy index rebuild -- the metrics path) and run the
    whole-chunk invariant audit over it. Returns records verified."""
    from repro.macsim import check_model_invariants

    sink = ColumnarSink.load(directory)
    report = check_model_invariants(graph, sink, f_ack)
    assert report.ok, report.violations[:3]
    assert sink.broadcast_count() > 0 and sink.decisions() is not None
    return len(sink)


class _ReferenceReplayView:
    """Presents a disk sink to ``check_model_invariants`` without its
    ``columnar`` capability flag, pinning the per-record reference
    replay path (the pre-PR 6 cost of the same audit)."""

    def __init__(self, sink):
        self._sink = sink

    def of_kind(self, kind):
        return self._sink.of_kind(kind)

    def __iter__(self):
        return self._sink.iter_records()


def run_reference_replay(graph, sink, f_ack: float = 1.0) -> int:
    """Record-iterator disk replay baseline: the same invariant audit
    driven record by record off ``sink``'s chunk iterator. Returns
    records verified."""
    from repro.macsim import check_model_invariants

    report = check_model_invariants(graph, _ReferenceReplayView(sink),
                                    f_ack)
    assert report.ok, report.violations[:3]
    return len(sink)


def build_query_trace(records: int = 50_000) -> Trace:
    """A synthetic mixed-kind trace for the query benchmark."""
    trace = Trace()
    kinds = ("broadcast", "deliver", "deliver", "ack", "decide")
    for i in range(records):
        trace.record(float(i), kinds[i % 5], i % 64,
                     broadcast_id=i // 5, payload=i % 2)
    return trace


def run_trace_queries(trace: Trace, iterations: int = 100) -> int:
    """Metric-style query sweeps over ``trace``; returns query count."""
    for _ in range(iterations):
        trace.decisions()
        trace.decision_times()
        trace.of_kind("deliver")
        trace.broadcast_count()
        trace.delivery_count()
    return 5 * iterations


def run_wpaxos_clique(n: int = 32, trace_level=None,
                      telemetry: bool = False) -> int:
    """Full wPAXOS consensus on clique(n); returns events processed.

    ``trace_level`` is forwarded when the engine supports it (PR 1+);
    ``None`` means the engine default (full trace) everywhere.
    ``telemetry=True`` attaches a live Telemetry (PR 7+) so
    perf_report can price the observability layer against the same
    run with it off.
    """
    graph = clique(n)
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    kwargs = {}
    if trace_level is not None:
        kwargs["trace_level"] = trace_level
    if telemetry:
        kwargs["telemetry"] = Telemetry()
    sim = build_simulation(
        graph,
        lambda v: WPaxosNode(uid[v], graph.index_of(v) % 2, graph.n,
                             WPaxosConfig()),
        SynchronousScheduler(1.0), **kwargs)
    result = sim.run()
    assert result.stop_reason in ("all_decided", "quiescent_all_decided")
    if telemetry:
        assert sim.telemetry.counters["events_processed"] \
            == result.events_processed
    return result.events_processed


def run_wpaxos_clique_tel(n: int = 32) -> int:
    """``run_wpaxos_clique`` with telemetry on (overhead measurement)."""
    return run_wpaxos_clique(n, telemetry=True)


def run_churn_clique(n: int = 24, rounds: int = 40,
                     rate: float = 0.1) -> int:
    """The E13-shaped dynamic-topology workload: an echo flood on a
    clique under per-epoch edge churn (spanning-tree floor). Measures
    the cost of epoch application -- per-epoch graph rebuild, neighbor
    recomputation, plan-pool invalidation, topo trace records -- on
    top of the normal delivery path. Returns events processed."""
    graph = clique(n)
    sim = build_simulation(
        graph, lambda v: _EchoProcess(v, rounds),
        SynchronousScheduler(1.0),
        dynamics=EdgeChurn(rate=rate, seed=7))
    return sim.run().events_processed


SWEEP_SIZES = (16, 24, 32, 40)


def _sweep_point_build(n):
    graph = clique(int(n))
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    return dict(
        graph=graph, scheduler=SynchronousScheduler(1.0),
        factory=lambda v, val: WPaxosNode(uid[v], val, graph.n,
                                          WPaxosConfig()),
        topology=f"clique({int(n)})")


def run_sweep_sequential(sizes=SWEEP_SIZES) -> int:
    """An E2-style wPAXOS clique sweep, sequentially (works on seed)."""
    result = sweep("bench-sweep", sizes, _sweep_point_build)
    assert result.all_correct()
    return len(result.points)


def run_sweep_parallel(sizes=SWEEP_SIZES) -> int:
    """The same sweep through parallel_sweep + decisions-level traces."""
    result = parallel_sweep("bench-sweep", sizes, _sweep_point_build,
                            trace_level=TraceLevel.DECISIONS)
    assert result.all_correct()
    return len(result.points)


# --- uneven-grid sweep: the work-stealing acceptance workload ----------
#
# A grid where every 4th cell does UNEVEN_SLOW_FACTOR x the echo rounds
# of the others. The PR 7 pool executor hands tasks out dynamically
# too, but at half the cores and one IPC round-trip per point; the
# work-stealing executor saturates every available core and amortizes
# the handout over guided-size chunks, so the mixed fast/straggler grid
# is where the gap shows. Cell sizes are chosen so one fast cell costs
# ~15-20 ms -- heavy enough that scheduling, not fork/IPC overhead,
# decides the comparison. Keys carry the round count, making each
# cell's cost explicit and deterministic.

UNEVEN_POINTS = 24
UNEVEN_N = 16
UNEVEN_FAST_ROUNDS = 24
UNEVEN_SLOW_FACTOR = 4


def uneven_keys(points: int = UNEVEN_POINTS,
                fast_rounds: int = UNEVEN_FAST_ROUNDS,
                slow_factor: int = UNEVEN_SLOW_FACTOR):
    """``points`` echo-round counts, every 4th one ``slow_factor``x."""
    return tuple(
        fast_rounds * (slow_factor if i % 4 == 3 else 1)
        for i in range(points))


def _uneven_build(rounds):
    graph = clique(UNEVEN_N)
    return dict(
        graph=graph, scheduler=SynchronousScheduler(1.0),
        factory=lambda v, val: _EchoProcess(v, int(rounds)),
        initial_values={v: 0 for v in graph.nodes},
        topology=f"clique({UNEVEN_N})x{int(rounds)}")


def run_sweep_uneven(executor: str = "steal", points: int = UNEVEN_POINTS,
                     workers=None) -> int:
    """The uneven grid through one of the parallel executors.

    ``executor="pool"`` is the PR 7 one-task-per-point baseline at its
    own defaults (half the cores); ``"steal"`` is the PR 8
    work-stealing pool at its defaults (every available core, chunked
    claims). Identical work either way -- only the scheduling
    differs."""
    xs = uneven_keys(points)
    result = parallel_sweep("bench-uneven", xs, _uneven_build,
                            trace_level=TraceLevel.DECISIONS,
                            workers=workers, executor=executor,
                            progress=False)
    assert len(result.points) == len(xs)
    return len(result.points)


# --- consensus-as-a-service workloads (PR 9) --------------------------
#
# End-to-end request throughput of the multi-group serve loop: the
# closed-loop workload, frontend batching, slot derivation and the
# multiplexed GroupRuntime all sit on the measured path, so this prices
# the whole service stack, not just the engine underneath. Sized so one
# run costs ~0.5 s: heavy enough to dominate per-call setup, light
# enough for interleaved repeats.

SERVE_GROUPS = 8
SERVE_CLIENTS = 96
SERVE_REQUESTS_PER_CLIENT = 3


def _serve_base():
    from repro.scenario import (AlgorithmSpec, Scenario, SchedulerSpec,
                                TopologySpec)
    return Scenario(algorithm=AlgorithmSpec("wpaxos"),
                    topology=TopologySpec("clique", n=5),
                    scheduler=SchedulerSpec("synchronous", f_ack=1.0),
                    seed=0)


def run_serve_multigroup(groups: int = SERVE_GROUPS,
                         clients: int = SERVE_CLIENTS,
                         shards: int = 1) -> int:
    """Serve a full closed-loop session; returns committed requests."""
    report = run_service(
        _serve_base(), groups=groups, clients=clients, shards=shards,
        requests_per_client=SERVE_REQUESTS_PER_CLIENT)
    assert report.failed == 0
    return report.requests


def run_serve_sharded(shards=None) -> int:
    """The same session across forked shards (auto = one per core)."""
    return run_serve_multigroup(shards=shards)


def run_serve_traced(groups: int = SERVE_GROUPS,
                     clients: int = SERVE_CLIENTS,
                     shards: int = 1) -> int:
    """``run_serve_multigroup`` with request tracing and the windowed
    metrics registry attached -- the tracing-overhead gate's "on"
    side. Returns committed requests (same unit as the off side)."""
    report = serve_traced_report(groups=groups, clients=clients,
                                 shards=shards)
    return report.requests


def serve_traced_report(groups: int = SERVE_GROUPS,
                        clients: int = SERVE_CLIENTS,
                        shards: int = 1):
    """The full traced-serve report (spans + metrics + scheduler
    profile), for sections that read the overhead fraction."""
    report = run_service(
        _serve_base(), groups=groups, clients=clients, shards=shards,
        requests_per_client=SERVE_REQUESTS_PER_CLIENT,
        trace_requests=True, metrics_window=50.0)
    assert report.failed == 0
    return report


def run_spill_probe(n: int = 24, rounds: int = 120,
                    chunk_records: int = 20_000) -> dict:
    """RSS/throughput probe for the spill pipeline.

    Runs a full-level SpillSink execution, replays it through
    ``check_model_invariants`` (the chunk-iterating query API), and
    reports throughput plus the peak *Python-heap* footprint of the
    whole run+replay (``tracemalloc``, deterministic) and the process
    ``ru_maxrss`` for context. The point being probed: peak memory is
    O(n + chunk), not O(records).
    """
    import resource
    import time
    import tracemalloc

    from repro.macsim import check_model_invariants

    graph = clique(n)
    sink = SpillSink(chunk_records=chunk_records)
    try:
        tracemalloc.start()
        start = time.perf_counter()
        sim = build_simulation(graph, lambda v: _EchoProcess(v, rounds),
                               SynchronousScheduler(1.0),
                               trace_sink=sink)
        result = sim.run()
        sink.close()
        run_seconds = time.perf_counter() - start
        start = time.perf_counter()
        report = check_model_invariants(graph, sink, 1.0)
        replay_seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert report.ok, report.violations[:3]
        spilled_bytes = sum(os.path.getsize(p)
                            for p in sink.chunk_paths())
        return {
            "events": result.events_processed,
            "records": len(sink),
            "chunks": len(sink.chunk_paths()),
            "spilled_mb": round(spilled_bytes / 1e6, 2),
            "run_seconds": round(run_seconds, 4),
            "replay_seconds": round(replay_seconds, 4),
            "events_per_sec": round(
                result.events_processed / run_seconds, 1),
            "replay_records_per_sec": round(
                len(sink) / replay_seconds, 1),
            "py_heap_peak_mb": round(peak / 1e6, 2),
            "ru_maxrss_mb": round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                / 1024, 1),
        }
    finally:
        sink.cleanup()


# ----------------------------------------------------------------------
# pytest-benchmark wrappers
# ----------------------------------------------------------------------
def test_event_queue_throughput(benchmark):
    assert benchmark(run_event_queue, 20_000) == 40_000


def test_broadcast_fanout(benchmark):
    events = benchmark(run_broadcast_fanout, 24, 5)
    assert events > 0


def test_trace_queries(benchmark):
    trace = build_query_trace(10_000)
    assert benchmark(run_trace_queries, trace, 20) == 100


def test_wpaxos_clique32_events(benchmark):
    events = benchmark(run_wpaxos_clique, 32)
    assert events > 0


def test_wpaxos_clique32_events_decisions_level(benchmark):
    if TraceLevel is None:
        import pytest
        pytest.skip("engine predates TraceLevel")
    events = benchmark(run_wpaxos_clique, 32, TraceLevel.DECISIONS)
    assert events > 0


def test_parallel_sweep_e2_style(benchmark):
    if parallel_sweep is None:
        import pytest
        pytest.skip("engine predates parallel_sweep")
    assert benchmark(run_sweep_parallel, (8, 12)) == 2


def test_dense_fanout_batched(benchmark):
    events = benchmark(run_dense_fanout, 48, 2)
    assert events > 0


def test_spill_clique_throughput(benchmark):
    if SpillSink is None:
        import pytest
        pytest.skip("engine predates SpillSink")
    events = benchmark(run_spill_clique, 16, 10)
    assert events > 0


def test_columnar_clique_throughput(benchmark):
    if ColumnarSink is None:
        import pytest
        pytest.skip("engine predates ColumnarSink")
    events = benchmark(run_columnar_clique, 16, 10)
    assert events > 0


def test_wpaxos_clique32_events_telemetry(benchmark):
    if Telemetry is None:
        import pytest
        pytest.skip("engine predates Telemetry")
    events = benchmark(run_wpaxos_clique_tel, 32)
    assert events > 0


def test_columnar_replay_throughput(benchmark):
    if ColumnarSink is None:
        import pytest
        pytest.skip("engine predates ColumnarSink")
    graph, sink = build_replay_corpus(16, 10)
    records = benchmark(run_columnar_replay, graph, sink.directory)
    assert records == len(sink)
