"""Engine microbenchmarks: event throughput, fan-out, trace queries.

Unlike the per-experiment benchmarks (bench_e1..e11), these isolate the
discrete-event substrate itself -- the layer PR 1's fast path targets:

* ``run_event_queue`` -- raw push/pop throughput of the heap;
* ``run_broadcast_fanout`` -- a clique echo flood, stressing
  ``mac_broadcast`` scheduling and delivery dispatch;
* ``run_trace_queries`` -- repeated metric queries over a large trace
  (O(full scan) in the seed engine, O(answer) with indexes);
* ``run_wpaxos_clique`` -- the acceptance workload: a full wPAXOS
  consensus execution on a clique, reported as events/second.

Each ``run_*`` function executes one measured unit and returns the
work count, so :mod:`benchmarks.perf_report` can time them without
pytest. The ``test_*`` wrappers expose the same workloads under
pytest-benchmark (``pytest benchmarks/ --benchmark-only``).

The module runs against both the current engine and the seed engine
(``perf_report --seed-tree``): everything newer than the seed API is
imported defensively.
"""

from __future__ import annotations

from repro.macsim import Process, build_simulation
from repro.macsim.events import DELIVER_PRIORITY, EventQueue
from repro.macsim.schedulers import SynchronousScheduler
from repro.macsim.trace import Trace
from repro.topology import clique

try:  # engine >= PR 1
    from repro.macsim.trace import TraceLevel
except ImportError:  # seed engine
    TraceLevel = None

try:  # analysis >= PR 1
    from repro.analysis import parallel_sweep
except ImportError:  # seed engine
    parallel_sweep = None
from repro.analysis import sweep

try:
    from repro.core.wpaxos import WPaxosConfig, WPaxosNode
except ImportError:  # pragma: no cover - wpaxos is part of the seed
    WPaxosConfig = WPaxosNode = None


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def run_event_queue(n: int = 100_000) -> int:
    """Push ``n`` events, pop them all; returns ops performed (2n)."""
    queue = EventQueue()
    push = queue.push
    for i in range(n):
        push(float(i % 97), DELIVER_PRIORITY, "deliver", node=i)
    pop = queue.pop
    while pop() is not None:
        pass
    return 2 * n


class _EchoProcess(Process):
    """Broadcasts ``count`` messages back-to-back (ack-driven)."""

    def __init__(self, uid, count: int = 5):
        super().__init__(uid=uid, initial_value=0)
        self.count = count
        self.sent = 0

    def on_start(self):
        self._next()

    def on_ack(self):
        self._next()

    def _next(self):
        if self.sent < self.count:
            self.sent += 1
            self.broadcast(("m", self.uid, self.sent))


def run_broadcast_fanout(n_nodes: int = 48, rounds: int = 5) -> int:
    """Echo flood on a clique; returns events processed."""
    graph = clique(n_nodes)
    sim = build_simulation(graph, lambda v: _EchoProcess(v, rounds),
                           SynchronousScheduler(1.0))
    return sim.run().events_processed


def build_query_trace(records: int = 50_000) -> Trace:
    """A synthetic mixed-kind trace for the query benchmark."""
    trace = Trace()
    kinds = ("broadcast", "deliver", "deliver", "ack", "decide")
    for i in range(records):
        trace.record(float(i), kinds[i % 5], i % 64,
                     broadcast_id=i // 5, payload=i % 2)
    return trace


def run_trace_queries(trace: Trace, iterations: int = 100) -> int:
    """Metric-style query sweeps over ``trace``; returns query count."""
    for _ in range(iterations):
        trace.decisions()
        trace.decision_times()
        trace.of_kind("deliver")
        trace.broadcast_count()
        trace.delivery_count()
    return 5 * iterations


def run_wpaxos_clique(n: int = 32, trace_level=None) -> int:
    """Full wPAXOS consensus on clique(n); returns events processed.

    ``trace_level`` is forwarded when the engine supports it (PR 1+);
    ``None`` means the engine default (full trace) everywhere.
    """
    graph = clique(n)
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    kwargs = {}
    if trace_level is not None:
        kwargs["trace_level"] = trace_level
    sim = build_simulation(
        graph,
        lambda v: WPaxosNode(uid[v], graph.index_of(v) % 2, graph.n,
                             WPaxosConfig()),
        SynchronousScheduler(1.0), **kwargs)
    result = sim.run()
    assert result.stop_reason in ("all_decided", "quiescent_all_decided")
    return result.events_processed


SWEEP_SIZES = (16, 24, 32, 40)


def _sweep_point_build(n):
    graph = clique(int(n))
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    return dict(
        graph=graph, scheduler=SynchronousScheduler(1.0),
        factory=lambda v, val: WPaxosNode(uid[v], val, graph.n,
                                          WPaxosConfig()),
        topology=f"clique({int(n)})")


def run_sweep_sequential(sizes=SWEEP_SIZES) -> int:
    """An E2-style wPAXOS clique sweep, sequentially (works on seed)."""
    result = sweep("bench-sweep", sizes, _sweep_point_build)
    assert result.all_correct()
    return len(result.points)


def run_sweep_parallel(sizes=SWEEP_SIZES) -> int:
    """The same sweep through parallel_sweep + decisions-level traces."""
    result = parallel_sweep("bench-sweep", sizes, _sweep_point_build,
                            trace_level=TraceLevel.DECISIONS)
    assert result.all_correct()
    return len(result.points)


# ----------------------------------------------------------------------
# pytest-benchmark wrappers
# ----------------------------------------------------------------------
def test_event_queue_throughput(benchmark):
    assert benchmark(run_event_queue, 20_000) == 40_000


def test_broadcast_fanout(benchmark):
    events = benchmark(run_broadcast_fanout, 24, 5)
    assert events > 0


def test_trace_queries(benchmark):
    trace = build_query_trace(10_000)
    assert benchmark(run_trace_queries, trace, 20) == 100


def test_wpaxos_clique32_events(benchmark):
    events = benchmark(run_wpaxos_clique, 32)
    assert events > 0


def test_wpaxos_clique32_events_decisions_level(benchmark):
    if TraceLevel is None:
        import pytest
        pytest.skip("engine predates TraceLevel")
    events = benchmark(run_wpaxos_clique, 32, TraceLevel.DECISIONS)
    assert events > 0


def test_parallel_sweep_e2_style(benchmark):
    if parallel_sweep is None:
        import pytest
        pytest.skip("engine predates parallel_sweep")
    assert benchmark(run_sweep_parallel, (8, 12)) == 2
