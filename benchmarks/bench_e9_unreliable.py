"""E9 benchmarks -- wPAXOS over the dual-graph (unreliable links) model."""

import pytest

from repro.core.wpaxos import WPaxosConfig, WPaxosNode
from repro.macsim import build_simulation, check_consensus
from repro.macsim.schedulers import (BernoulliUnreliableScheduler,
                                     SynchronousScheduler)
from repro.topology import line
from repro.topology.standard import unreliable_overlay


def _run(prob, seed):
    graph = line(12)
    overlay = unreliable_overlay(graph, 0.15, seed=3)
    values = {v: v % 2 for v in graph.nodes}
    scheduler = BernoulliUnreliableScheduler(
        SynchronousScheduler(1.0), prob, seed=seed)
    sim = build_simulation(
        graph,
        lambda v: WPaxosNode(v + 1, values[v], graph.n,
                             WPaxosConfig()),
        scheduler, unreliable_graph=overlay)
    result = sim.run(max_events=5_000_000, max_time=2_000.0)
    return check_consensus(result.trace, values)


@pytest.mark.parametrize("prob", [0.0, 0.5, 1.0])
def test_unreliable_links_safety_sweep(benchmark, prob):
    seeds = iter(range(10 ** 9))

    def run():
        report = _run(prob, next(seeds))
        # Safety is unconditional (the E9 finding).
        assert report.agreement and report.validity
        return report

    benchmark(run)
