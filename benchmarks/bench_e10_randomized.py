"""E10 benchmarks -- Ben-Or randomized consensus under crashes."""

import pytest

from repro.core.randomized import BenOrConsensus
from repro.macsim import build_simulation, check_consensus, crash_plan
from repro.macsim.schedulers import RandomDelayScheduler
from repro.topology import clique


@pytest.mark.parametrize("n,f", [(5, 2), (9, 4)])
def test_benor_with_crash(benchmark, n, f):
    seeds = iter(range(10 ** 9))

    def run():
        seed = next(seeds)
        graph = clique(n)
        values = {v: v % 2 for v in graph.nodes}
        sim = build_simulation(
            graph,
            lambda v: BenOrConsensus(v + 1, values[v], n, f,
                                     seed=seed * 13 + v),
            RandomDelayScheduler(1.0, seed=seed),
            crashes=[crash_plan(0, 1.5,
                                still_delivered=frozenset({1}))])
        result = sim.run(max_events=3_000_000, max_time=5_000.0)
        report = check_consensus(result.trace, values)
        assert report.agreement and report.validity
        assert report.termination
        return result

    benchmark(run)


def test_benor_no_crash_baseline(benchmark):
    seeds = iter(range(10 ** 9))

    def run():
        seed = next(seeds)
        n, f = 7, 3
        graph = clique(n)
        values = {v: v % 2 for v in graph.nodes}
        sim = build_simulation(
            graph,
            lambda v: BenOrConsensus(v + 1, values[v], n, f,
                                     seed=seed * 13 + v),
            RandomDelayScheduler(1.0, seed=seed))
        result = sim.run(max_events=3_000_000, max_time=5_000.0)
        assert check_consensus(result.trace, values).ok
        return result

    benchmark(run)
