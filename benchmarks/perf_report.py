"""Before/after perf harness: ``python -m benchmarks.perf_report``.

Runs the engine microbenchmarks (:mod:`benchmarks.bench_engine`) and
writes a JSON report -- ``BENCH_PR10.json`` by default -- containing the
median wall-clock time and rate (events/ops/queries per second) of
each workload, alongside "before" numbers so every PR from PR 1 onward
has a perf trajectory to regress against. The ``--check`` gate keeps
comparing against the committed ``BENCH_PR1.json`` rates, so new
reports regress against the PR 1 trajectory.

PR 3 additions: a dense-clique scenario showcasing batched delivery
scheduling (``fanout_clique96_dense``), a full-level ``SpillSink``
throughput workload (``spill_clique24``), and a one-shot
``spill_probe`` section recording the spill pipeline's peak Python-heap
footprint during a run + invariant replay (the bounded-memory claim,
in numbers).

PR 5 addition: ``e13_churn``, the dynamic-topology workload -- an echo
flood under per-epoch edge churn, measuring the cost of topology-epoch
application on top of the delivery path (no seed counterpart; gated
against its own trajectory from this report onward).

PR 6 additions: ``columnar_clique24`` (the spill_clique24 workload
writing binary columnar chunks), ``columnar_replay24`` /
``spill_replay24`` (disk replay of the same trace, vectorized vs the
record-iterator reference), and a ``columnar`` report section
recording the on-disk bytes-per-record of each format and the replay
speedup -- with the PR's acceptance gates (columnar <= 1/4 of the
JSONL bytes, vectorized replay >= 3x) evaluated inline. ``--attach-
smoke`` embeds a :mod:`benchmarks.spill_smoke` JSON summary (the
gated 10^8-event run) under ``columnar_smoke``.

PR 7 additions: ``wpaxos_clique32_tel`` / ``spill_clique24_tel`` --
the identical workloads with a live
:class:`~repro.macsim.telemetry.Telemetry` attached -- and a
``telemetry`` report section pricing the observability layer: the
gate fails when telemetry-on throughput drops more than
:data:`TELEMETRY_OVERHEAD_MAX` below telemetry-off on either
workload.

PR 9 additions: ``serve_groups8`` -- the consensus-as-a-service stack
end to end (closed-loop clients, frontend batching, slot derivation,
multiplexed engines), in committed requests/second -- and a
``service`` report section with the p50/p99-latency-vs-offered-load
curve over a (groups, shards) x clients grid and the PR's acceptance
gates: 1-group slot-0 byte-identity, zero failed slots, and an
end-to-end wall request-throughput floor on every cell.

PR 10 additions: ``serve_groups8_traced`` -- the serve workload with
request tracing (span trees + scheduler profile) and the windowed
metrics registry attached -- and a ``tracing`` report section pricing
request-level observability with the telemetry-gate protocol
(interleaved off/on repeats, min-of-N, overhead <= 5%) and recording
the measured cross-group scheduling overhead fraction of
``GroupRuntime.advance``.

"Before" numbers come from, in order of preference:

1. ``--seed-tree PATH`` -- a checkout of the seed commit (e.g. a
   ``git worktree``). The same workloads are re-measured in a
   subprocess with ``PYTHONPATH`` pointing at that tree, giving a
   same-machine, same-session comparison.
2. ``--baseline FILE`` (default ``benchmarks/seed_baseline.json``) --
   numbers recorded when this harness was introduced.

Usage::

    python -m benchmarks.perf_report                 # full run
    python -m benchmarks.perf_report --smoke         # quick CI signal
    python -m benchmarks.perf_report --seed-tree /tmp/seedtree
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from benchmarks import bench_engine

#: Workload registry: name -> (callable() -> work_units, unit label).
#: Workload sizes must stay in sync with benchmarks/seed_baseline.json
#: so rate comparisons are apples-to-apples.
def _workloads() -> Dict[str, Tuple[Callable[[], int], str]]:
    query_trace = bench_engine.build_query_trace(50_000)
    workloads: Dict[str, Tuple[Callable[[], int], str]] = {
        "wpaxos_clique32": (
            lambda: bench_engine.run_wpaxos_clique(32), "events"),
        "event_queue_100k": (
            lambda: bench_engine.run_event_queue(100_000), "ops"),
        "fanout_clique48": (
            lambda: bench_engine.run_broadcast_fanout(48, 5), "events"),
        "trace_queries_50k": (
            lambda: bench_engine.run_trace_queries(query_trace, 100),
            "queries"),
    }
    workloads["sweep_wpaxos_seq"] = (
        lambda: bench_engine.run_sweep_sequential(), "points")
    if bench_engine.TraceLevel is not None:
        level = bench_engine.TraceLevel.DECISIONS
        workloads["wpaxos_clique32_fast"] = (
            lambda: bench_engine.run_wpaxos_clique(32, level), "events")
    if bench_engine.parallel_sweep is not None:
        workloads["sweep_wpaxos_par"] = (
            lambda: bench_engine.run_sweep_parallel(), "points")
    # Dense-clique batched-scheduling scenario: runs on every engine
    # (PR 3 batches the per-broadcast fan-out into one heap entry).
    workloads["fanout_clique96_dense"] = (
        lambda: bench_engine.run_dense_fanout(96, 3), "events")
    if bench_engine.SpillSink is not None:
        workloads["spill_clique24"] = (
            lambda: bench_engine.run_spill_clique(24, 40), "events")
    if bench_engine.Telemetry is not None:
        workloads["wpaxos_clique32_tel"] = (
            lambda: bench_engine.run_wpaxos_clique_tel(32), "events")
        if bench_engine.SpillSink is not None:
            workloads["spill_clique24_tel"] = (
                lambda: bench_engine.run_spill_clique_tel(24, 40),
                "events")
    if bench_engine.EdgeChurn is not None:
        workloads["e13_churn"] = (
            lambda: bench_engine.run_churn_clique(24, 40, 0.1),
            "events")
    if bench_engine.HAVE_SWEEP_EXECUTORS:
        workloads["sweep_uneven_steal"] = (
            lambda: bench_engine.run_sweep_uneven("steal"), "points")
        workloads["sweep_uneven_pool"] = (
            lambda: bench_engine.run_sweep_uneven("pool"), "points")
    if bench_engine.HAVE_SERVICE:
        workloads["serve_groups8"] = (
            lambda: bench_engine.run_serve_multigroup(), "requests")
    if getattr(bench_engine, "HAVE_TRACING", False):
        workloads["serve_groups8_traced"] = (
            lambda: bench_engine.run_serve_traced(), "requests")
    if bench_engine.ColumnarSink is not None:
        workloads["columnar_clique24"] = (
            lambda: bench_engine.run_columnar_clique(24, 40), "events")
        # Replay corpora are built once, outside the timed region
        # (like query_trace above): the replay workloads measure the
        # read side only. The sink objects must stay referenced --
        # the closures below keep them (and their temp dirs) alive.
        col_graph, col_sink = bench_engine.build_replay_corpus(
            24, 40, columnar=True)
        _, jsonl_sink = bench_engine.build_replay_corpus(
            24, 40, columnar=False)
        workloads["columnar_replay24"] = (
            lambda: bench_engine.run_columnar_replay(
                col_graph, col_sink.directory), "records")
        workloads["spill_replay24"] = (
            lambda: bench_engine.run_reference_replay(
                col_graph, jsonl_sink), "records")
    return workloads


def measure(repeats: int) -> Dict[str, dict]:
    """Measure every workload ``repeats`` times.

    Rates are computed from the *best* timing: on a shared/noisy box
    the minimum is the least-biased estimator of the true cost (any
    interference only ever adds time). The median is reported too so
    the spread stays visible.
    """
    results: Dict[str, dict] = {}
    for name, (fn, unit) in _workloads().items():
        fn()  # warm-up (imports, allocator, caches)
        times = []
        units = 0
        for _ in range(repeats):
            start = time.perf_counter()
            units = fn()
            times.append(time.perf_counter() - start)
        best = min(times)
        results[name] = {
            unit: units,
            "seconds": round(best, 6),
            "seconds_median": round(statistics.median(times), 6),
            f"{unit}_per_sec": round(units / best, 1),
        }
    return results


def _rate(entry: dict) -> Optional[float]:
    for key, value in entry.items():
        if key.endswith("_per_sec"):
            return value
    return None


#: The PR 6 acceptance gates on the columnar section.
COLUMNAR_BYTES_RATIO_MAX = 0.25
COLUMNAR_REPLAY_SPEEDUP_MIN = 3.0

#: The PR 7 acceptance gate: telemetry-on may cost at most this
#: fraction of telemetry-off throughput on each gated workload pair.
TELEMETRY_OVERHEAD_MAX = 0.05

#: (off, on) workload pairs the telemetry gate compares.
TELEMETRY_PAIRS = (
    ("wpaxos_clique32", "wpaxos_clique32_tel"),
    ("spill_clique24", "spill_clique24_tel"),
)


def telemetry_report(repeats: int) -> Optional[dict]:
    """The telemetry-overhead section: for each (off, on) workload
    pair, freshly measured rates and the fractional overhead
    ``rate_off / rate_on - 1``, with the <= 5% gate evaluated inline.

    The pairs are re-measured here with *interleaved* repeats (off,
    on, off, on, ...) rather than read from the global results:
    workloads in the main sweep run minutes apart, and allocator/GC
    drift from the heavyweight spill workloads in between dwarfs the
    few-percent effect this gate prices. Interleaving exposes both
    sides of each pair to the same environment; min-of-N then cancels
    the remaining noise. ``None`` when the engine predates telemetry.
    """
    if bench_engine.Telemetry is None:
        return None
    workloads = _workloads()
    # The pairs are cheap (~0.3 s per interleaved repeat), so floor
    # the repeat count: smoke mode's 3 repeats are too noisy for a
    # 5% gate; the paired median needs a deep sample on shared
    # runners.
    repeats = max(repeats, 15)
    pairs = {}
    ok = True
    for off_name, on_name in TELEMETRY_PAIRS:
        if off_name not in workloads or on_name not in workloads:
            continue
        off_fn, _ = workloads[off_name]
        on_fn, _ = workloads[on_name]
        off_fn()
        on_fn()  # warm-up both sides
        off_times: list = []
        on_times: list = []
        units = 0
        # gc.collect before each timed side + paired ratio
        # estimators: see tracing_report -- same protocol, same
        # reasons (generational-GC alignment and noisy-neighbor
        # bursts read as phantom overhead through min-of-N rates).
        for _ in range(repeats):
            gc.collect()
            start = time.perf_counter()
            units = off_fn()
            off_times.append(time.perf_counter() - start)
            gc.collect()
            start = time.perf_counter()
            on_fn()
            on_times.append(time.perf_counter() - start)
        rate_off = round(units / min(off_times), 1)
        rate_on = round(units / min(on_times), 1)
        ratios = sorted(on / off
                        for off, on in zip(off_times, on_times))
        median_ratio = ratios[len(ratios) // 2]
        sum_ratio = sum(on_times) / sum(off_times)
        overhead = min(median_ratio, sum_ratio) - 1.0
        pairs[on_name] = {
            "baseline": off_name,
            "rate_off": rate_off,
            "rate_on": rate_on,
            "overhead": round(overhead, 4),
        }
        ok = ok and overhead <= TELEMETRY_OVERHEAD_MAX
    if not pairs:
        return None
    return {
        "pairs": pairs,
        "gates": {"overhead_max": TELEMETRY_OVERHEAD_MAX, "ok": ok},
    }


#: The PR 10 acceptance gate: request tracing + the metrics registry
#: may cost at most this fraction of untraced serve throughput.
TRACING_OVERHEAD_MAX = 0.05


def tracing_report(repeats: int) -> Optional[dict]:
    """The request-tracing overhead section: the serve workload with
    tracing + metrics off vs on, interleaved repeats (the
    :func:`telemetry_report` protocol -- min-of-N over off/on/off/on
    so allocator drift cannot masquerade as tracing cost), with the
    <= 5% gate evaluated inline. Also runs one traced session to
    read the scheduler profile -- the measured fraction of
    ``GroupRuntime.advance`` wall time spent *between* engine slices
    (cross-group scheduling overhead, the ROADMAP number).
    ``None`` when the service predates request tracing.
    """
    if not getattr(bench_engine, "HAVE_TRACING", False):
        return None
    repeats = max(repeats, 15)
    bench_engine.run_serve_multigroup()
    bench_engine.run_serve_traced()  # warm-up both sides
    off_times: list = []
    on_times: list = []
    units = 0
    # Collect before every timed run: the traced side allocates more
    # (span records, metric windows), so with the collector free-
    # running, generational collections align against whichever side
    # crosses the threshold -- measured as a phantom 5-10% "overhead"
    # that a fixed pre-run collection point eliminates.
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        units = bench_engine.run_serve_multigroup()
        off_times.append(time.perf_counter() - start)
        gc.collect()
        start = time.perf_counter()
        bench_engine.run_serve_traced()
        on_times.append(time.perf_counter() - start)
    rate_off = round(units / min(off_times), 1)
    rate_on = round(units / min(on_times), 1)
    # Paired estimators: the serve runs are short (~0.15 s), so a
    # noisy-neighbor burst during one side's min repeat can fake a
    # double-digit "overhead" out of min-of-N rates. Each repeat
    # times off and on back to back, so per-repeat ratios cancel
    # sustained drift; the median discards burst repeats, and the
    # ratio of total times averages them out. The gate takes the
    # smaller of the two: a one-sided burst only inflates one
    # estimator, while a genuine >= 5% regression moves both.
    ratios = sorted(on / off for off, on in zip(off_times, on_times))
    median_ratio = ratios[len(ratios) // 2]
    sum_ratio = sum(on_times) / sum(off_times)
    overhead = min(median_ratio, sum_ratio) - 1.0
    traced = bench_engine.serve_traced_report()
    totals = ((traced.tracing or {}).get("scheduler") or {}).get(
        "totals") or {}
    scheduler = {key: totals.get(key)
                 for key in ("advance_calls", "advance_seconds",
                             "engine_seconds", "overhead_seconds",
                             "overhead_fraction")}
    return {
        "baseline": "serve_groups8",
        "traced": "serve_groups8_traced",
        "rate_off": rate_off,
        "rate_on": rate_on,
        "overhead": round(overhead, 4),
        "scheduler": scheduler,
        "gates": {"overhead_max": TRACING_OVERHEAD_MAX,
                  "ok": overhead <= TRACING_OVERHEAD_MAX},
    }


#: The PR 8 acceptance gate: on the uneven grid, the work-stealing
#: executor must beat the one-task-per-point pool by this factor...
SWEEP_FABRIC_SPEEDUP_MIN = 1.5
#: ...but only on machines with enough cores for scheduling to matter.
#: Below this, both executors serialize and the ratio measures noise.
SWEEP_FABRIC_MIN_CORES = 4


def _cache_roundtrip() -> dict:
    """The result-cache subgate: one small scenario grid run twice
    against the same fresh cache directory. The second pass must be
    100% cache hits and reproduce byte-identical points."""
    import shutil
    import tempfile
    from dataclasses import asdict

    from repro.analysis.cache import ResultCache
    from repro.scenario import (AlgorithmSpec, Scenario, SchedulerSpec,
                                TopologySpec)

    base = Scenario(
        algorithm=AlgorithmSpec("wpaxos"),
        topology=TopologySpec("clique", n=4),
        scheduler=SchedulerSpec("synchronous", f_ack=1.0))
    grid = base.grid({"topology.n": [4, 6, 8]})
    tmp = tempfile.mkdtemp(prefix="macsim-bench-cache-")
    try:
        first = grid.run(name="bench-cache", cache=ResultCache(tmp),
                         parallel=False)
        second_cache = ResultCache(tmp)
        second = grid.run(name="bench-cache", cache=second_cache,
                          parallel=False)
        identical = (
            json.dumps([asdict(p) for p in first.points])
            == json.dumps([asdict(p) for p in second.points]))
        return {
            "points": len(first.points),
            "second_pass_hits": second_cache.hits,
            "second_pass_misses": second_cache.misses,
            "second_pass_hit_ratio": round(second_cache.hit_ratio, 4),
            "identical": identical,
            "ok": (second_cache.misses == 0
                   and second_cache.hits == len(first.points)
                   and identical),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def sweep_fabric_report(repeats: int) -> Optional[dict]:
    """The PR 8 sweep-fabric section: work-stealing vs pool executor
    on the uneven grid, plus the cache round-trip subgate.

    The two executors are re-measured here with *interleaved* repeats
    (pool, steal, pool, steal, ...) for the same reason the telemetry
    gate does it: the comparison is a ratio of two multi-second sweeps
    and must see the same machine state on both sides; min-of-N then
    cancels the remaining noise.

    The speedup gate needs real parallelism to be meaningful: with
    fewer than :data:`SWEEP_FABRIC_MIN_CORES` available cores both
    executors degenerate to (near-)serial execution and the uneven
    grid's straggler cells block everyone equally. On such machines
    the gate records the core count and passes as skipped; CI runners
    enforce it. ``None`` when the tree predates the executors.
    """
    if not bench_engine.HAVE_SWEEP_EXECUTORS:
        return None
    cores = bench_engine.saturating_workers()
    repeats = max(min(repeats, 5), 3)
    bench_engine.run_sweep_uneven("pool")
    bench_engine.run_sweep_uneven("steal")  # warm-up both sides
    pool_times: list = []
    steal_times: list = []
    points = 0
    for _ in range(repeats):
        start = time.perf_counter()
        points = bench_engine.run_sweep_uneven("pool")
        pool_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        bench_engine.run_sweep_uneven("steal")
        steal_times.append(time.perf_counter() - start)
    speedup = round(min(pool_times) / min(steal_times), 2)
    cache = _cache_roundtrip()
    gates: dict = {
        "speedup_min": SWEEP_FABRIC_SPEEDUP_MIN,
        "min_cores": SWEEP_FABRIC_MIN_CORES,
    }
    if cores < SWEEP_FABRIC_MIN_CORES:
        gates["speedup_skipped"] = (
            f"only {cores} core(s) available; the straggler gate "
            f"needs >= {SWEEP_FABRIC_MIN_CORES}")
        ok = True
    else:
        ok = speedup >= SWEEP_FABRIC_SPEEDUP_MIN
    ok = ok and cache["ok"]
    gates["ok"] = ok
    return {
        "workload": f"uneven grid: {bench_engine.UNEVEN_POINTS} echo "
                    f"cells on clique({bench_engine.UNEVEN_N}), every "
                    f"4th cell {bench_engine.UNEVEN_SLOW_FACTOR}x "
                    f"rounds",
        "points": points,
        "cores": cores,
        "pool_seconds": round(min(pool_times), 4),
        "steal_seconds": round(min(steal_times), 4),
        "speedup_steal_vs_pool": speedup,
        "cache_roundtrip": cache,
        "gates": gates,
    }


#: The PR 9 acceptance gates on the service section: the serve loop
#: must commit every request (no failed slots), the 1-group service's
#: first slot must stay byte-identical to the base scenario's own run,
#: and every grid cell must sustain at least this end-to-end wall-clock
#: request throughput (conservative: a single core does ~1000 req/s).
SERVICE_MIN_WALL_RPS = 50.0

#: (groups, shards) x clients grid the latency curve sweeps.
SERVICE_GRID = ((1, 1), (4, 1), (8, 2))
SERVICE_LOADS = (32, 96)


def service_report() -> Optional[dict]:
    """The PR 9 consensus-as-a-service section: p50/p99 latency and
    throughput vs offered load over a (groups, shards) x clients grid,
    with the byte-identity and request-throughput gates inline.

    Latencies are in virtual time (multiples of F_ack) and exactly
    reproducible; ``wall_req_per_sec`` is the end-to-end wall-clock
    rate of the whole serve loop (workload draws, batching, slot
    derivation, multiplexed engines) that the throughput gate floors.
    ``None`` when the tree predates the service runtime.
    """
    if not bench_engine.HAVE_SERVICE:
        return None
    from repro.analysis.export import trace_to_json
    from repro.macsim.service import ConsensusService, WorkloadGenerator

    base = bench_engine._serve_base()
    workload = WorkloadGenerator(groups=1, clients=8, seed=0,
                                 requests_per_client=2)
    probe = ConsensusService(base, workload, capture_first_slot=True)
    probe.run()
    identical = (trace_to_json(probe.first_slot_trace)
                 == trace_to_json(base.simulate().trace))

    curve = []
    failed = 0
    for groups, shards in SERVICE_GRID:
        for clients in SERVICE_LOADS:
            start = time.perf_counter()
            rep = bench_engine.run_service(
                base, groups=groups, clients=clients, shards=shards,
                requests_per_client=2)
            wall = time.perf_counter() - start
            failed += rep.failed
            latency = rep.latency
            curve.append({
                "groups": groups,
                "shards": shards,
                "clients": clients,
                "requests": rep.requests,
                "slots": rep.slots,
                "p50": round(latency.get("p50", 0.0), 2),
                "p99": round(latency.get("p99", 0.0), 2),
                "virtual_req_per_time": round(rep.throughput, 4),
                "wall_req_per_sec": round(rep.requests / wall, 1),
            })
    min_rps = min(row["wall_req_per_sec"] for row in curve)
    gates = {
        "byte_identity": identical,
        "failed_slots": failed,
        "wall_rps_min": SERVICE_MIN_WALL_RPS,
        "wall_rps_measured_min": min_rps,
        "ok": (identical and failed == 0
               and min_rps >= SERVICE_MIN_WALL_RPS),
    }
    return {
        "workload": "closed-loop Zipf/lognormal clients over wpaxos "
                    "clique(5) slots, (groups, shards) x clients grid",
        "curve": curve,
        "gates": gates,
    }


def columnar_report(results: Dict[str, dict]) -> Optional[dict]:
    """The columnar-format section: on-disk bytes per record for both
    spill formats on the same workload, plus the replay speedup taken
    from the measured ``columnar_replay24`` / ``spill_replay24``
    rates, with the PR 6 acceptance gates evaluated inline."""
    if bench_engine.ColumnarSink is None or bench_engine.SpillSink is None:
        return None
    _, col_sink = bench_engine.build_replay_corpus(24, 40, columnar=True)
    _, jsonl_sink = bench_engine.build_replay_corpus(24, 40,
                                                     columnar=False)
    try:
        records = len(col_sink)
        col_bytes = col_sink.spilled_bytes()
        jsonl_bytes = jsonl_sink.spilled_bytes()
        section = {
            "workload": "spill_clique24 (echo flood, clique n=24, "
                        "40 rounds, full-level trace)",
            "records": records,
            "jsonl_bytes": jsonl_bytes,
            "columnar_bytes": col_bytes,
            "jsonl_bytes_per_record": round(jsonl_bytes / records, 2),
            "columnar_bytes_per_record": round(col_bytes / records, 2),
            "bytes_ratio_columnar_vs_jsonl": round(
                col_bytes / jsonl_bytes, 4),
            "numpy": bench_engine.have_numpy(),
        }
        vec = results.get("columnar_replay24")
        ref = results.get("spill_replay24")
        if vec and ref:
            section["replay_speedup_vectorized_vs_iterator"] = round(
                _rate(vec) / _rate(ref), 2)
        gates = {
            "bytes_ratio_max": COLUMNAR_BYTES_RATIO_MAX,
            "replay_speedup_min": COLUMNAR_REPLAY_SPEEDUP_MIN,
        }
        ok = (section["bytes_ratio_columnar_vs_jsonl"]
              <= COLUMNAR_BYTES_RATIO_MAX)
        speedup = section.get("replay_speedup_vectorized_vs_iterator")
        if bench_engine.have_numpy():
            ok = ok and (speedup is not None
                         and speedup >= COLUMNAR_REPLAY_SPEEDUP_MIN)
        else:
            gates["replay_speedup_skipped"] = "numpy unavailable"
        gates["ok"] = ok
        section["gates"] = gates
        return section
    finally:
        col_sink.cleanup()
        jsonl_sink.cleanup()


def _measure_seed_tree(seed_tree: str, repeats: int) -> dict:
    """Re-measure the workloads against a seed checkout, in-session."""
    src = os.path.join(seed_tree, "src")
    if not os.path.isdir(src):
        raise SystemExit(
            f"--seed-tree: no src/ under {seed_tree!r} (expected a "
            f"checkout of the seed commit, e.g. `git worktree add`)")
    env = dict(os.environ)
    env["PYTHONPATH"] = src
    output = subprocess.run(
        [sys.executable, "-m", "benchmarks.perf_report",
         "--emit-raw", "--repeats", str(repeats)],
        env=env, capture_output=True, text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if output.returncode != 0:
        raise SystemExit(
            "--seed-tree measurement failed:\n" + output.stderr[-2000:])
    return json.loads(output.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf_report",
        description="Engine microbenchmark report (before/after).")
    parser.add_argument("--out", default="BENCH_PR10.json",
                        help="output path (default: BENCH_PR10.json)")
    parser.add_argument("--attach-smoke", default=None, metavar="JSON",
                        help="embed a benchmarks.spill_smoke --json-out "
                             "summary (the gated 10^8-event columnar "
                             "run) under the report's 'columnar_smoke' "
                             "key")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timings per workload (default 7; 3 smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick mode: fewer repeats, same workloads")
    parser.add_argument("--baseline",
                        default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)),
                            "seed_baseline.json"),
                        help="recorded 'before' numbers (JSON)")
    parser.add_argument("--seed-tree", default=None,
                        help="seed checkout to re-measure 'before' "
                             "numbers against (overrides --baseline)")
    parser.add_argument("--emit-raw", action="store_true",
                        help="measure and print raw results JSON to "
                             "stdout (internal; used for --seed-tree)")
    parser.add_argument("--check", action="store_true",
                        help="regression gate: fail if any workload's "
                             "rate drops more than --check-threshold "
                             "below the committed report "
                             "(--check-against). Absolute rates are "
                             "machine-specific -- use this gate on "
                             "the machine that produced the report; "
                             "CI uses --check-speedup instead")
    parser.add_argument("--check-speedup", type=float, default=None,
                        metavar="FLOOR",
                        help="same-machine regression gate: fail if "
                             "any workload's speedup vs the 'before' "
                             "numbers (ideally --seed-tree, measured "
                             "in-session) falls below FLOOR")
    parser.add_argument("--check-against",
                        default=os.path.join(
                            os.path.dirname(os.path.dirname(
                                os.path.abspath(__file__))),
                            "BENCH_PR1.json"),
                        help="committed perf report to gate against "
                             "(its 'after' numbers)")
    parser.add_argument("--check-threshold", type=float, default=0.20,
                        help="allowed fractional rate regression "
                             "(default 0.20)")
    args = parser.parse_args(argv)

    repeats = args.repeats or (3 if args.smoke else 7)
    results = measure(repeats)

    if args.emit_raw:
        json.dump(results, sys.stdout, indent=2)
        return 0

    before: Optional[dict] = None
    before_source = None
    if args.seed_tree:
        before = _measure_seed_tree(args.seed_tree, repeats)
        before_source = f"seed-tree:{args.seed_tree}"
    elif os.path.exists(args.baseline):
        with open(args.baseline, encoding="utf-8") as handle:
            before = json.load(handle).get("results")
        before_source = args.baseline

    speedups = {}
    if before:
        for name, entry in results.items():
            # New fast-path workloads compare against what the seed
            # engine offered for the same job: the full-trace run for
            # the decisions-level run, the sequential sweep for the
            # parallel one. (spill_clique24 has no seed counterpart:
            # the seed could not produce a disk-backed full trace.)
            fallback = {"wpaxos_clique32_fast": "wpaxos_clique32",
                        "sweep_wpaxos_par": "sweep_wpaxos_seq"}
            base = before.get(name) or before.get(
                fallback.get(name, ""))
            if not base:
                continue
            after_rate, before_rate = _rate(entry), _rate(base)
            if after_rate and before_rate:
                speedups[name] = round(after_rate / before_rate, 2)

    spill_probe = None
    if bench_engine.SpillSink is not None:
        probe_rounds = 40 if args.smoke else 120
        spill_probe = bench_engine.run_spill_probe(24, probe_rounds)

    columnar = columnar_report(results)
    telemetry = telemetry_report(repeats)
    tracing = tracing_report(repeats)
    sweep_fabric = sweep_fabric_report(repeats)
    service = service_report()
    columnar_smoke = None
    if args.attach_smoke:
        with open(args.attach_smoke, encoding="utf-8") as handle:
            columnar_smoke = json.load(handle)

    report = {
        "pr": 10,
        "notes": {
            "wpaxos_clique32": "full-trace engine vs full-trace seed "
                               "(like-for-like; trace byte-identical)",
            "wpaxos_clique32_fast": "TraceLevel.DECISIONS engine vs "
                                    "full-trace seed: what a sweep/"
                                    "benchmark run pays now vs what it "
                                    "had to pay on the seed (same "
                                    "events, decisions and counters; "
                                    "MAC-level records not "
                                    "materialized)",
            "sweep_wpaxos_par": "parallel_sweep + DECISIONS level vs "
                                "the seed's sequential full-trace "
                                "sweep (same comparison basis)",
            "fanout_clique96_dense": "dense-clique echo flood under "
                                     "the synchronous scheduler: the "
                                     "batched delivery-scheduling "
                                     "showcase (one bdeliver heap "
                                     "entry per broadcast on PR 3+, "
                                     "one per neighbor before)",
            "spill_clique24": "the same engine writing its complete "
                              "full-level trace to chunked JSONL via "
                              "SpillSink (disk-backed replayable "
                              "trace; no seed counterpart)",
            "spill_probe": "one-shot RSS/throughput probe: SpillSink "
                           "run + streaming invariant replay under "
                           "tracemalloc; py_heap_peak_mb is the "
                           "bounded-memory claim in numbers",
            "e13_churn": "the dense echo flood under per-epoch edge "
                         "churn (spanning-tree floor): epoch "
                         "application cost -- graph rebuild, neighbor "
                         "recompute, plan-pool invalidation, topo "
                         "records -- on top of the delivery path (no "
                         "seed counterpart)",
            "columnar_clique24": "the spill_clique24 workload writing "
                                 "binary struct-packed column chunks "
                                 "(ColumnarSink) instead of JSONL; "
                                 "compare against spill_clique24 for "
                                 "the write-side cost of the format",
            "columnar_replay24": "disk replay of the columnar corpus: "
                                 "ColumnarSink.load (vectorized index "
                                 "rebuild = the metrics path) + the "
                                 "whole-chunk numpy invariant audit",
            "spill_replay24": "the same audit driven record by record "
                              "off a chunked-JSONL SpillSink -- the "
                              "pre-PR 6 replay cost; "
                              "columnar_replay24 / spill_replay24 is "
                              "the replay speedup gate",
            "columnar": "on-disk bytes per record for both spill "
                        "formats on the same trace, with the PR 6 "
                        "acceptance gates (columnar <= 1/4 of JSONL, "
                        "vectorized replay >= 3x) evaluated inline",
            "wpaxos_clique32_tel": "the wpaxos_clique32 workload with "
                                   "a live Telemetry attached (engine "
                                   "counters, F_ack/F_prog span "
                                   "tracking, phase profiler); "
                                   "compare against wpaxos_clique32 "
                                   "for the observability overhead",
            "spill_clique24_tel": "spill_clique24 with telemetry on "
                                  "(disk-backed sink + span tracking "
                                  "-- the worst-case counter surface)",
            "telemetry": "telemetry-on vs telemetry-off overhead per "
                         "gated pair, re-measured with interleaved "
                         "repeats so allocator/GC drift between the "
                         "main sweep's workloads cannot masquerade "
                         "as observability cost; the PR 7 acceptance "
                         "gate (overhead <= 5%) evaluated inline",
            "sweep_uneven_steal": "the uneven grid (24 echo cells, "
                                  "every 4th cell 4x rounds) through "
                                  "the PR 8 work-stealing executor: "
                                  "persistent forked workers pulling "
                                  "guided-size chunks off a shared "
                                  "counter",
            "sweep_uneven_pool": "the identical uneven grid through "
                                 "the PR 7 one-task-per-point "
                                 "multiprocessing.Pool baseline",
            "sweep_fabric": "steal vs pool on the uneven grid with "
                            "interleaved repeats, plus the result-"
                            "cache round-trip subgate (second pass "
                            "100% hits, byte-identical points); the "
                            "PR 8 acceptance gate (steal >= 1.5x "
                            "pool) evaluated inline, skipped below "
                            "4 cores where both executors serialize",
            "serve_groups8": "the whole consensus-as-a-service stack "
                             "end to end: 8 multiplexed groups, 96 "
                             "closed-loop Zipf/lognormal clients, 3 "
                             "requests each, batched into wpaxos "
                             "clique(5) slots on one engine shard; "
                             "the unit is committed client requests",
            "serve_groups8_traced": "the serve_groups8 workload with "
                                    "request tracing (span trees, "
                                    "scheduler profile) and the "
                                    "windowed metrics registry "
                                    "attached; compare against "
                                    "serve_groups8 for the request-"
                                    "observability overhead",
            "tracing": "tracing-on vs tracing-off serve throughput "
                       "re-measured with interleaved repeats (the "
                       "telemetry-gate protocol), the PR 10 "
                       "acceptance gate (overhead <= 5%) evaluated "
                       "inline, plus the measured cross-group "
                       "scheduling overhead: the fraction of "
                       "GroupRuntime.advance wall time spent between "
                       "engine slices (heap pops, wakeups, batching) "
                       "rather than inside them",
            "service": "p50/p99 request latency (virtual time) and "
                       "throughput vs offered load over a (groups, "
                       "shards) x clients grid, with the PR 9 "
                       "acceptance gates evaluated inline: 1-group "
                       "slot-0 trace byte-identical to the base "
                       "scenario's own run, zero failed slots, and "
                       "every cell above the end-to-end wall request-"
                       "throughput floor",
        },
        "mode": "smoke" if args.smoke else "full",
        "repeats": repeats,
        "python": sys.version.split()[0],
        "before_source": before_source,
        "before": before,
        "after": results,
        "speedup": speedups,
        "spill_probe": spill_probe,
        "columnar": columnar,
        "telemetry": telemetry,
        "tracing": tracing,
        "sweep_fabric": sweep_fabric,
        "service": service,
        "columnar_smoke": columnar_smoke,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"wrote {args.out}")
    for name, entry in results.items():
        rate = _rate(entry)
        note = f"  ({speedups[name]}x vs seed)" if name in speedups else ""
        print(f"  {name:24s} {rate:>12,.0f}/s{note}")
    if spill_probe is not None:
        print(f"  {'spill_probe':24s} "
              f"{spill_probe['records']:,} records -> "
              f"{spill_probe['chunks']} chunks "
              f"({spill_probe['spilled_mb']} MB), "
              f"py heap peak {spill_probe['py_heap_peak_mb']} MB, "
              f"replay {spill_probe['replay_records_per_sec']:,.0f} "
              f"rec/s")
    if columnar is not None:
        ratio = columnar["bytes_ratio_columnar_vs_jsonl"]
        speedup = columnar.get("replay_speedup_vectorized_vs_iterator")
        print(f"  {'columnar':24s} "
              f"{columnar['columnar_bytes_per_record']} B/rec vs "
              f"{columnar['jsonl_bytes_per_record']} B/rec jsonl "
              f"(ratio {ratio}), replay speedup "
              f"{speedup if speedup is not None else 'n/a'}x, "
              f"gates {'ok' if columnar['gates']['ok'] else 'FAILED'}")
        if not columnar["gates"]["ok"]:
            print(f"COLUMNAR GATES FAILED: {columnar['gates']}")
            if args.check or args.check_speedup is not None:
                return 2
    if telemetry is not None:
        worst = max(entry["overhead"]
                    for entry in telemetry["pairs"].values())
        print(f"  {'telemetry':24s} overhead "
              + ", ".join(
                  f"{entry['overhead']:+.1%} ({name})"
                  for name, entry in telemetry["pairs"].items())
              + f", gate {'ok' if telemetry['gates']['ok'] else 'FAILED'}"
              f" (max {worst:+.1%} <= {TELEMETRY_OVERHEAD_MAX:.0%})")
        if not telemetry["gates"]["ok"]:
            print(f"TELEMETRY OVERHEAD GATE FAILED: {telemetry}")
            if args.check or args.check_speedup is not None:
                return 2
    if tracing is not None:
        sched = tracing["scheduler"]
        frac = sched.get("overhead_fraction")
        print(f"  {'tracing':24s} overhead {tracing['overhead']:+.1%} "
              f"(serve {tracing['rate_off']:,.0f} off vs "
              f"{tracing['rate_on']:,.0f} on req/s), scheduler "
              f"overhead "
              f"{frac:.1%} of advance"
              f", gate {'ok' if tracing['gates']['ok'] else 'FAILED'}"
              f" (<= {TRACING_OVERHEAD_MAX:.0%})")
        if not tracing["gates"]["ok"]:
            print(f"TRACING OVERHEAD GATE FAILED: {tracing}")
            if args.check or args.check_speedup is not None:
                return 2
    if sweep_fabric is not None:
        cache = sweep_fabric["cache_roundtrip"]
        skipped = "speedup_skipped" in sweep_fabric["gates"]
        print(f"  {'sweep_fabric':24s} steal "
              f"{sweep_fabric['steal_seconds']}s vs pool "
              f"{sweep_fabric['pool_seconds']}s "
              f"({sweep_fabric['speedup_steal_vs_pool']}x"
              f"{', gate skipped: ' + str(sweep_fabric['cores']) + ' core(s)' if skipped else ''}), "
              f"cache 2nd pass {cache['second_pass_hits']}/"
              f"{cache['points']} hits, gates "
              f"{'ok' if sweep_fabric['gates']['ok'] else 'FAILED'}")
        if not sweep_fabric["gates"]["ok"]:
            print(f"SWEEP FABRIC GATES FAILED: {sweep_fabric['gates']}")
            if args.check or args.check_speedup is not None:
                return 2

    if service is not None:
        worst = min(row["wall_req_per_sec"] for row in service["curve"])
        hot = max(service["curve"], key=lambda row: row["p99"])
        print(f"  {'service':24s} "
              f"{len(service['curve'])} cells, slowest "
              f"{worst:,.0f} req/s wall (floor "
              f"{SERVICE_MIN_WALL_RPS:,.0f}), hottest cell p99 "
              f"{hot['p99']} vt ({hot['groups']}g x {hot['shards']}s "
              f"@ {hot['clients']} clients), byte-identity "
              f"{'ok' if service['gates']['byte_identity'] else 'FAILED'}, "
              f"gates {'ok' if service['gates']['ok'] else 'FAILED'}")
        if not service["gates"]["ok"]:
            print(f"SERVICE GATES FAILED: {service['gates']}")
            if args.check or args.check_speedup is not None:
                return 2

    if args.check_speedup is not None:
        slow = {name: ratio for name, ratio in speedups.items()
                if ratio < args.check_speedup}
        if not speedups:
            print("--check-speedup: no 'before' numbers available; "
                  "skipping gate")
        elif slow:
            print(f"PERF REGRESSION (speedup < {args.check_speedup} "
                  f"vs {before_source}): {slow}")
            return 2
        else:
            print(f"perf speedup check ok (all >= "
                  f"{args.check_speedup}x vs {before_source})")
    if args.check:
        return check_regressions(results, args.check_against,
                                 args.check_threshold)
    return 0


def check_regressions(results: Dict[str, dict], reference_path: str,
                      threshold: float) -> int:
    """Gate fresh measurements against a committed report's rates.

    Compares each shared workload's rate with the reference report's
    ``after`` numbers and fails (exit 2) on any fractional drop beyond
    ``threshold``. Cross-machine comparisons are inherently noisy --
    the threshold should stay generous (CI uses the default 20%).
    """
    if not os.path.exists(reference_path):
        print(f"--check: no reference report at {reference_path}; "
              f"skipping gate")
        return 0
    with open(reference_path, encoding="utf-8") as handle:
        reference = json.load(handle).get("after", {})
    regressions = []
    for name, entry in results.items():
        base = reference.get(name)
        if not base:
            continue
        after_rate, base_rate = _rate(entry), _rate(base)
        if not (after_rate and base_rate):
            continue
        drop = 1.0 - after_rate / base_rate
        if drop > threshold:
            regressions.append((name, base_rate, after_rate, drop))
    if regressions:
        print(f"PERF REGRESSION (> {threshold:.0%} vs "
              f"{reference_path}):")
        for name, base_rate, after_rate, drop in regressions:
            print(f"  {name:24s} {base_rate:>12,.0f}/s -> "
                  f"{after_rate:>12,.0f}/s  ({drop:.1%} slower)")
        return 2
    print(f"perf check ok (no workload regressed > {threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
