"""E7 benchmarks -- Theorem 3.2: valency exploration + crash deadlock."""

from repro.lowerbounds.flp import (StepTwoPhase,
                                   build_witness_deadlock_execution)
from repro.lowerbounds.steps import StepSystem
from repro.lowerbounds.valency import (ValencyAnalyzer,
                                       find_crash_termination_violation)
from repro.macsim import check_consensus
from repro.topology import clique


def test_exhaustive_valency_exploration(benchmark):
    def run():
        system = StepSystem(clique(2), StepTwoPhase(), crash_budget=1)
        result = ValencyAnalyzer(system).explore(
            system.initial_configuration((0, 1)))
        assert result.is_bivalent(result.initial)
        assert not result.truncated
        return result.config_count

    benchmark(run)


def test_crash_violation_search(benchmark):
    system = StepSystem(clique(2), StepTwoPhase(), crash_budget=1)
    result = ValencyAnalyzer(system).explore(
        system.initial_configuration((0, 1)))

    def run():
        violation = find_crash_termination_violation(result)
        assert violation is not None
        return violation

    benchmark(run)


def test_witness_deadlock_execution(benchmark):
    def run():
        sim = build_witness_deadlock_execution()
        res = sim.run(max_time=300.0)
        report = check_consensus(res.trace, {0: 0, 1: 1, 2: 1})
        assert not report.termination and report.agreement
        return res

    benchmark(run)
