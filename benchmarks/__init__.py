"""Benchmark suite (pytest-benchmark tests + the perf_report harness)."""
