"""E5 benchmarks -- Theorem 3.3: the Figure 1 anonymity pipeline.

Times the full pipeline (construction checks + two B-executions +
the A-execution + lock-step comparison), re-asserting the theorem's
chain on every measured run.
"""

import pytest

from repro.lowerbounds.anonymity import run_anonymity_demo
from repro.topology.gadgets import verify_figure1


@pytest.mark.parametrize("d,k", [(2, 0), (3, 0)])
def test_anonymity_pipeline(benchmark, d, k):
    def run():
        demo = run_anonymity_demo(d=d, k=k)
        assert demo.theorem_holds
        return demo

    benchmark(run)


def test_construction_verification(benchmark):
    def run():
        for d in (2, 3, 4, 5):
            assert verify_figure1(d, 1).ok

    benchmark(run)
