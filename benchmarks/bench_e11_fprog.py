"""E11 benchmarks -- the F_prog refinement sweep."""

import pytest

from benchmarks._helpers import run_consensus_once
from repro.core.baselines import GatherAllConsensus
from repro.core.twophase import TwoPhaseConsensus
from repro.macsim.schedulers.fprog import EagerDeliveryScheduler
from repro.topology import clique, line


@pytest.mark.parametrize("f_prog", [8.0, 1.0])
def test_two_phase_fprog_insensitivity(benchmark, f_prog):
    graph = clique(8)
    seeds = iter(range(10 ** 9))

    def run():
        sched = EagerDeliveryScheduler(f_prog, 8.0, seed=next(seeds))
        t = run_consensus_once(
            graph, lambda v, val: TwoPhaseConsensus(v + 1, val), sched)
        assert t == pytest.approx(16.0)  # ack-bound: 2 x F_ack
        return t

    benchmark(run)


@pytest.mark.parametrize("f_prog", [8.0, 1.0])
def test_gatherall_fprog_sensitivity(benchmark, f_prog):
    graph = line(10)
    seeds = iter(range(10 ** 9))

    def run():
        sched = EagerDeliveryScheduler(f_prog, 8.0, seed=next(seeds))
        return run_consensus_once(
            graph,
            lambda v, val: GatherAllConsensus(v + 1, val, graph.n),
            sched)

    benchmark(run)
