"""E4 benchmarks -- Theorem 3.10: the floor(D/2) * F_ack bound.

Measures worst-case (max-delay) executions on split-input lines,
re-asserting inside every run that no correct algorithm decides
before the bound, and that the eager strawman violates agreement.
"""

import pytest

from repro.core.baselines import GatherAllConsensus
from repro.core.wpaxos import WPaxosConfig, WPaxosNode
from repro.lowerbounds.partition import (eager_violation_demo,
                                         measure_decision_time)

FACTORIES = {
    "wpaxos": lambda v, val, n: WPaxosNode(v + 1, val, n,
                                           WPaxosConfig()),
    "gatherall": lambda v, val, n: GatherAllConsensus(v + 1, val, n),
}


@pytest.mark.parametrize("algorithm", ["wpaxos", "gatherall"])
@pytest.mark.parametrize("diameter", [8, 16])
def test_bound_respected_worst_case(benchmark, algorithm, diameter):
    factory = FACTORIES[algorithm]

    def run():
        timing = measure_decision_time(factory, algorithm, diameter,
                                       f_ack=2.0)
        assert timing.correct and timing.respects_bound
        return timing.first_decision

    benchmark(run)


@pytest.mark.parametrize("diameter", [8, 16])
def test_eager_strawman_violation(benchmark, diameter):
    def run():
        outcome = eager_violation_demo(diameter)
        assert outcome.agreement_violated
        return outcome

    benchmark(run)
