"""E6 benchmarks -- Theorem 3.9: the K_D pipeline."""

import pytest

from repro.lowerbounds.partition import (isolated_line_success,
                                         kd_violation_demo)


@pytest.mark.parametrize("diameter", [3, 5])
def test_kd_violation_pipeline(benchmark, diameter):
    def run():
        demo = kd_violation_demo(diameter)
        assert demo.agreement_violated
        assert demo.line1_decisions == {0}
        assert demo.line2_decisions == {1}
        return demo

    benchmark(run)


@pytest.mark.parametrize("diameter", [5])
def test_isolated_line_control(benchmark, diameter):
    def run():
        assert isolated_line_success(diameter)

    benchmark(run)
