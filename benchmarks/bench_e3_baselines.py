"""E3 benchmarks -- Section 4.2: wPAXOS vs flooding baselines.

Fixed-diameter bottleneck (star of cliques) with growing n: wPAXOS's
simulated decision time stays flat while both baselines grow with n.
The benchmark rows expose all three at two sizes.
"""

import pytest

from benchmarks._helpers import run_consensus_once
from repro.core.baselines import GatherAllConsensus, PaxosFloodNode
from repro.core.wpaxos import WPaxosConfig, WPaxosNode
from repro.macsim.schedulers import SynchronousScheduler
from repro.topology import star_of_cliques

SHAPES = {"small": (4, 6), "large": (8, 12)}


def _graph(shape):
    arms, size = SHAPES[shape]
    return star_of_cliques(arms, size)


def _factories(graph):
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    n = graph.n
    return {
        "wpaxos": lambda v, val: WPaxosNode(uid[v], val, n,
                                            WPaxosConfig()),
        "flood-paxos": lambda v, val: PaxosFloodNode(uid[v], val, n),
        "gatherall": lambda v, val: GatherAllConsensus(uid[v], val, n),
    }


@pytest.mark.parametrize("shape", ["small", "large"])
@pytest.mark.parametrize("algorithm",
                         ["wpaxos", "flood-paxos", "gatherall"])
def test_bottleneck_comparison(benchmark, shape, algorithm):
    graph = _graph(shape)
    factory = _factories(graph)[algorithm]

    def run():
        return run_consensus_once(graph, factory,
                                  SynchronousScheduler(1.0))

    simulated_time = benchmark(run)
    if algorithm == "wpaxos":
        assert simulated_time <= 40.0  # flat regardless of shape
