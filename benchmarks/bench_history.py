"""Bench trajectory report: ``python -m benchmarks.bench_history``.

Every PR commits a ``BENCH_PR<N>.json`` snapshot
(:mod:`benchmarks.perf_report`), but each snapshot only compares
itself against the PR 1 baseline -- drift *across* PRs is invisible
without opening seven files. This module merges every committed
``BENCH_PR*.json`` in the repository root into one per-workload
trajectory table: one row per workload, one column per PR, cells in
the workload's native rate unit (``events_per_sec`` /
``ops_per_sec`` / ... -- whichever ``*_per_sec`` key the snapshot's
``after`` section carries).

Workloads appear and disappear across PRs (spill workloads start at
PR 3, serve at PR 9); missing cells render as ``-``. The final two
columns put the trajectory in context: the best rate any PR achieved,
and the latest rate as a fraction of that best. A latest rate more
than :data:`REGRESSION_THRESHOLD` below the best is flagged
``** regressed`` -- and ``--check`` turns those flags into a non-zero
exit for CI.

``--markdown`` emits a GitHub-flavoured table instead of aligned
ASCII. ``--dir`` points at a different snapshot directory (tests).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.analysis.tables import format_markdown_table, format_table

#: Latest rate below this fraction of the best-ever rate flags the
#: workload as regressed (matches perf_report's PR-1 gate threshold).
REGRESSION_THRESHOLD = 0.20

_BENCH_RE = re.compile(r"BENCH_PR(\d+)\.json$")


def find_reports(directory: str) -> List[Tuple[int, str]]:
    """``(pr, path)`` for every ``BENCH_PR<N>.json``, PR-ascending."""
    found = []
    for path in glob.glob(os.path.join(directory, "BENCH_PR*.json")):
        match = _BENCH_RE.search(os.path.basename(path))
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def _rate(entry: Any) -> Optional[Tuple[str, float]]:
    """The ``(unit, value)`` of an ``after`` entry's rate key."""
    if not isinstance(entry, dict):
        return None
    for key, value in entry.items():
        if key.endswith("_per_sec") and isinstance(value, (int, float)):
            return key, float(value)
    return None


def build_history(directory: str = ".") -> Dict[str, Any]:
    """Merge every snapshot into a per-workload trajectory dict.

    Returns ``{"prs": [1, 3, ...], "workloads": {name: {"unit": ...,
    "rates": {pr: rate}, "best": ..., "best_pr": ..., "latest": ...,
    "latest_pr": ..., "ratio": latest/best, "regressed": bool}}}``.
    Workloads keep first-seen order (the order PRs introduced them).
    """
    reports = find_reports(directory)
    if not reports:
        raise FileNotFoundError(
            f"no BENCH_PR*.json snapshots under {directory!r}")
    prs = [pr for pr, _ in reports]
    workloads: Dict[str, Dict[str, Any]] = {}
    for pr, path in reports:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        for name, entry in doc.get("after", {}).items():
            rate = _rate(entry)
            if rate is None:
                continue
            unit, value = rate
            record = workloads.setdefault(
                name, {"unit": unit, "rates": {}})
            record["rates"][pr] = value
    for record in workloads.values():
        rates = record["rates"]
        best_pr = max(rates, key=lambda pr: rates[pr])
        latest_pr = max(rates)
        record["best"] = rates[best_pr]
        record["best_pr"] = best_pr
        record["latest"] = rates[latest_pr]
        record["latest_pr"] = latest_pr
        record["ratio"] = (rates[latest_pr] / rates[best_pr]
                           if rates[best_pr] > 0 else 0.0)
        record["regressed"] = (
            record["ratio"] < 1.0 - REGRESSION_THRESHOLD)
    return {"prs": prs, "workloads": workloads}


def history_table(history: Dict[str, Any]) -> Tuple[List[str],
                                                    List[list]]:
    """``(headers, rows)`` of the trajectory table."""
    prs = history["prs"]
    headers = (["workload", "unit"] + [f"PR{pr}" for pr in prs]
               + ["best", "latest/best"])
    rows = []
    for name, record in history["workloads"].items():
        cells: List[Any] = [name,
                            record["unit"].replace("_per_sec", "/s")]
        for pr in prs:
            value = record["rates"].get(pr)
            cells.append("-" if value is None else f"{value:,.0f}")
        flag = "  ** regressed" if record["regressed"] else ""
        cells.append(f"{record['best']:,.0f} (PR{record['best_pr']})")
        cells.append(f"{record['ratio']:.0%}{flag}")
        rows.append(cells)
    return headers, rows


def render_history(history: Dict[str, Any],
                   markdown: bool = False) -> str:
    headers, rows = history_table(history)
    if markdown:
        return format_markdown_table(headers, rows)
    return format_table(
        headers, rows,
        title=f"bench trajectory ({len(history['prs'])} snapshots)")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.bench_history",
        description="Merge BENCH_PR*.json into a per-workload "
                    "rate-trajectory table.")
    parser.add_argument("--dir", default=".",
                        help="directory holding BENCH_PR*.json "
                             "(default: current directory)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit a GitHub-flavoured markdown table")
    parser.add_argument("--check", action="store_true",
                        help="exit 2 when any workload's latest rate "
                             "regressed more than "
                             f"{REGRESSION_THRESHOLD:.0%} below its "
                             "best")
    args = parser.parse_args(argv)
    try:
        history = build_history(args.dir)
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from None
    regressed = [name for name, record in history["workloads"].items()
                 if record["regressed"]]
    try:
        print(render_history(history, markdown=args.markdown))
        if regressed:
            print(f"\nregressed (> {REGRESSION_THRESHOLD:.0%} below "
                  f"best): {', '.join(regressed)}")
    except BrokenPipeError:  # downstream pager/grep closed early
        sys.stderr.close()
    if regressed and args.check:
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
