"""E8 benchmarks -- wPAXOS design-choice ablations."""

import pytest

from benchmarks._helpers import run_consensus_once
from repro.core.wpaxos import WPaxosConfig, WPaxosNode
from repro.macsim.schedulers import SynchronousScheduler
from repro.topology import line, star_of_cliques


def make_factory(graph, config):
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    return lambda v, val: WPaxosNode(uid[v], val, graph.n, config)


@pytest.mark.parametrize("aggregation", [True, False],
                         ids=["agg-on", "agg-off"])
def test_aggregation_ablation(benchmark, aggregation):
    graph = star_of_cliques(6, 10)
    factory = make_factory(graph, WPaxosConfig(aggregation=aggregation))

    def run():
        return run_consensus_once(graph, factory,
                                  SynchronousScheduler(1.0))

    simulated = benchmark(run)
    if aggregation:
        assert simulated <= 40.0
    else:
        assert simulated >= 60.0  # Theta(n) responses at the hub


@pytest.mark.parametrize("priority", [True, False],
                         ids=["prio-on", "prio-off"])
def test_tree_priority_ablation(benchmark, priority):
    graph = line(40)
    factory = make_factory(graph,
                           WPaxosConfig(tree_priority=priority))

    def run():
        return run_consensus_once(graph, factory,
                                  SynchronousScheduler(1.0))

    benchmark(run)


@pytest.mark.parametrize("policy", ["paper", "learned"])
def test_retry_policy_ablation(benchmark, policy):
    graph = line(20)
    factory = make_factory(graph, WPaxosConfig(retry_policy=policy))

    def run():
        return run_consensus_once(graph, factory,
                                  SynchronousScheduler(1.0))

    benchmark(run)
