"""Shared benchmark helpers.

Each benchmark file regenerates one experiment's workload (E1-E8,
see DESIGN.md's per-experiment index) under pytest-benchmark, so the
paper's series can be re-measured with
``pytest benchmarks/ --benchmark-only``.

Benchmarks assert correctness on every measured run: a benchmark that
silently measured a broken execution would be meaningless.
"""

from __future__ import annotations

from repro.analysis.runner import alternating_values
from repro.macsim import build_simulation, check_consensus


def run_consensus_once(graph, factory, scheduler, *,
                       initial_values=None, expect_correct=True,
                       max_events=20_000_000):
    """One complete consensus execution; returns last decision time."""
    values = initial_values or alternating_values(graph)
    sim = build_simulation(graph, lambda v: factory(v, values[v]),
                           scheduler)
    result = sim.run(max_events=max_events)
    if expect_correct:
        report = check_consensus(result.trace, values)
        assert report.ok, f"consensus violated: {report.decisions}"
    return result.trace.last_decision_time()
