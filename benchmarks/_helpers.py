"""Shared benchmark helpers.

Each benchmark file regenerates one experiment's workload (E1-E8,
see DESIGN.md's per-experiment index) under pytest-benchmark, so the
paper's series can be re-measured with
``pytest benchmarks/ --benchmark-only``.

Benchmarks assert correctness on every measured run: a benchmark that
silently measured a broken execution would be meaningless.
"""

from __future__ import annotations

from repro.analysis.runner import alternating_values
from repro.macsim import build_simulation, check_consensus
from repro.macsim.trace import TraceLevel


def run_consensus_once(graph, factory, scheduler, *,
                       initial_values=None, expect_correct=True,
                       max_events=20_000_000,
                       trace_level=TraceLevel.FULL):
    """One complete consensus execution; returns last decision time.

    ``trace_level=TraceLevel.DECISIONS`` runs the engine's counts-only
    fast path; correctness is still asserted (consensus checking needs
    only decide/crash records, which every level materializes).
    """
    values = initial_values or alternating_values(graph)
    sim = build_simulation(graph, lambda v: factory(v, values[v]),
                           scheduler, trace_level=trace_level)
    result = sim.run(max_events=max_events)
    if expect_correct:
        report = check_consensus(result.trace, values)
        assert report.ok, f"consensus violated: {report.decisions}"
    return result.trace.last_decision_time()
