"""Byzantine-tolerant consensus over the abstract MAC layer.

The protocol follows the *value-grading + amplification* shape of the
abstract-MAC Byzantine line (Tseng & Sardina 2023), instantiated with
Ben-Or's classic Byzantine thresholds. Each phase has two steps, both
riding the MAC layer's ack/progress guarantees (a node's broadcast
reaches every neighbor before its ack; ``F_ack`` bounds completion but
is unknown to nodes):

* **Grade step.** Broadcast ``(GRADE, r, v)`` and collect grade
  messages for phase ``r`` from ``n - f`` distinct origins (waiting on
  quorums, never on named nodes -- a silent Byzantine node must not be
  able to block progress). If some value ``w`` holds *strictly more
  than* ``(n + f) / 2`` of the collected votes, the node grades ``w``
  (it is now sure a majority of correct nodes reported ``w``);
  otherwise it carries the plain majority value ungraded.
* **Amplify step.** Broadcast ``(AMP, r, w, graded)`` and again
  collect ``n - f``. If strictly more than ``(n + f) / 2`` collected
  amplifications are *graded* for the same ``w``: **decide** ``w``.
  Else if at least ``f + 1`` are graded for ``w`` (at least one
  correct grader): adopt ``w``. Else: flip a local coin for the next
  phase's value.

With ``n > 5f`` these thresholds give, even against *equivocating*
Byzantine nodes (which plain local broadcast actually forbids --
see :mod:`repro.macsim.faults.byzantine`):

* per phase, at most one value can acquire any correct grader;
* two correct nodes can never decide differently in the same phase;
* once a correct node decides ``w``, every correct node adopts ``w``
  and decides it in the following phase (so deciders participate for
  exactly one more phase, then halt -- the run drains).

Validity: with unanimous correct input ``v``, every correct node
grades and decides ``v`` in phase 1. Termination is probabilistic via
the local coins (deterministic Byzantine consensus with guaranteed
termination is impossible here -- the model's Theorem 3.2 obstruction
applies to crashes already), which mirrors the randomized fallback the
papers use.

Multi-hop networks (``relay=True``): messages are flooded inside
:class:`Relay` envelopes, each node re-broadcasting every distinct
protocol message once. The relay layer is *content-authenticated*
(the signed-messages analogue of Tseng-Sardina's non-equivocation
assumption): a Byzantine node freely corrupts, equivocates or
suppresses traffic it *originates* -- and may silently drop what it
should forward -- but cannot forge the content of another origin's
message in transit (:meth:`Relay.forge` corrupts only self-originated
payloads). Liveness then needs the graph minus the Byzantine nodes to
stay connected. Unauthenticated multi-hop relaying (Dolev-style
disjoint-path certification) is left as future work. Identity forgery
(Sybil) is likewise out of scope, matching the papers' known-ids
oral-messages model.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple, Union

from .base import ConsensusProcess

#: Step tags inside one phase.
GRADE = "grade"
AMP = "amp"


@dataclass(frozen=True)
class GradeMessage:
    """``(GRADE, phase, origin, value)`` -- the phase-r report."""

    origin: int
    phase: int
    value: int

    def forge(self, value: Any) -> "GradeMessage":
        """Adversary interface: same origin/phase, forged value."""
        return GradeMessage(self.origin, self.phase, value)

    def id_footprint(self) -> int:
        return 1


@dataclass(frozen=True)
class AmpMessage:
    """``(AMP, phase, origin, value, graded)`` -- the amplification.

    ``graded`` asserts the origin saw a ``> (n + f) / 2`` majority for
    ``value`` in this phase's grade step. A forged amplification
    always claims the grade -- the strongest lie available.
    """

    origin: int
    phase: int
    value: Optional[int]
    graded: bool

    def forge(self, value: Any) -> "AmpMessage":
        return AmpMessage(self.origin, self.phase, value, True)

    def id_footprint(self) -> int:
        return 1


@dataclass(frozen=True)
class Relay:
    """Flooding envelope for multi-hop runs: who re-broadcast what."""

    relayer: int
    inner: Union[GradeMessage, AmpMessage]

    def forge(self, value: Any) -> "Relay":
        """Adversary interface, honouring relay authentication.

        A Byzantine node corrupts what it *originates*; content it
        merely forwards is authenticated by the origin and passes
        through unmodified (see the module docstring).
        """
        if self.inner.origin == self.relayer:
            return Relay(self.relayer, self.inner.forge(value))
        return self

    def id_footprint(self) -> int:
        return 1 + self.inner.id_footprint()


def max_tolerance(n: int) -> int:
    """The largest ``f`` with ``n > 5f`` (the protocol's bound)."""
    return max(0, (n - 1) // 5)


class ByzantineConsensus(ConsensusProcess):
    """Grading + amplification Byzantine binary consensus.

    Parameters
    ----------
    uid:
        Unique node id (the protocol embeds it in every message).
    initial_value:
        Binary consensus input.
    n:
        Number of participants (known, as in Tseng-Sardina).
    f:
        Assumed bound on Byzantine identities. Safety against
        equivocating adversaries needs ``n > 5f``; the constructor
        does *not* enforce that so experiments can run the protocol
        past its bound and exhibit the violation.
    seed:
        Seed for the local coin (termination randomness).
    relay:
        Flood messages for multi-hop networks (see module docstring).
    max_phases:
        Hard stop: a node that reaches this phase without deciding
        halts undecided (keeps adversarial runs finite).
    """

    def __init__(self, uid: int, initial_value: int, n: int, f: int, *,
                 seed: int = 0, relay: bool = False,
                 max_phases: int = 64) -> None:
        super().__init__(uid=uid, initial_value=initial_value)
        if uid is None:
            raise ValueError("ByzantineConsensus requires a unique id")
        if f < 0 or n < 1:
            raise ValueError("need n >= 1 and f >= 0")
        self.n = n
        self.f = f
        self.relay = relay
        self.max_phases = max_phases
        self.rng = random.Random(seed)

        self.quorum = n - f
        #: Strictly-more-than-(n+f)/2 as an integer floor+1.
        self.super_threshold = (n + f) // 2 + 1
        self.adopt_threshold = f + 1

        self.phase = 1
        self.step = GRADE
        self.value = int(initial_value)
        self.halt_after: Optional[int] = None
        self.halted = False

        #: phase -> origin -> reported value (first accepted wins).
        self.grade_msgs: Dict[int, Dict[int, int]] = {}
        #: phase -> origin -> (value, graded).
        self.amp_msgs: Dict[int, Dict[int, Tuple[Optional[int], bool]]] = {}
        #: Relay mode: protocol messages already re-broadcast.
        self._relayed: Set[Any] = set()
        self._outbox: deque = deque()

    # ------------------------------------------------------------------
    # MAC handlers
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        first = GradeMessage(self.uid, 1, self.value)
        self._accept(first)
        self._emit(first)

    def on_ack(self) -> None:
        self._pump()

    def on_receive(self, message: Any) -> None:
        if self.relay:
            if not isinstance(message, Relay):
                return
            inner = message.inner
            if not isinstance(inner, (GradeMessage, AmpMessage)):
                return
            if inner not in self._relayed and not self.halted:
                self._relayed.add(inner)
                self._enqueue(Relay(self.uid, inner))
            self._accept(inner)
        else:
            if isinstance(message, (GradeMessage, AmpMessage)):
                self._accept(message)
        self._advance()

    # ------------------------------------------------------------------
    # Outbox (one in-flight broadcast at a time)
    # ------------------------------------------------------------------
    def _emit(self, message: Any) -> None:
        if self.relay:
            self._relayed.add(message)
            message = Relay(self.uid, message)
        self._enqueue(message)

    def _enqueue(self, message: Any) -> None:
        self._outbox.append(message)
        self._pump()

    def _pump(self) -> None:
        while self._outbox and not self.ack_pending and not self.crashed:
            if not self.broadcast(self._outbox.popleft()):
                break

    # ------------------------------------------------------------------
    # Protocol state machine
    # ------------------------------------------------------------------
    def _accept(self, msg: Union[GradeMessage, AmpMessage]) -> None:
        """First-accepted-wins buffering per (phase, step, origin).

        Under equivocation different nodes may accept different values
        for the same Byzantine origin; the thresholds are chosen to
        tolerate exactly that.
        """
        if isinstance(msg, GradeMessage):
            if msg.value in (0, 1):
                bucket = self.grade_msgs.setdefault(msg.phase, {})
                bucket.setdefault(msg.origin, msg.value)
        else:
            value = msg.value if msg.value in (0, 1) else None
            graded = bool(msg.graded) and value is not None
            bucket = self.amp_msgs.setdefault(msg.phase, {})
            bucket.setdefault(msg.origin, (value, graded))

    def _advance(self) -> None:
        while not self.halted:
            if self.step == GRADE:
                bucket = self.grade_msgs.get(self.phase, {})
                if len(bucket) < self.quorum:
                    return
                ones = sum(bucket.values())
                zeros = len(bucket) - ones
                if zeros >= self.super_threshold:
                    candidate, graded = 0, True
                elif ones >= self.super_threshold:
                    candidate, graded = 1, True
                else:
                    candidate, graded = (0 if zeros >= ones else 1), False
                self.step = AMP
                msg = AmpMessage(self.uid, self.phase, candidate, graded)
                self._accept(msg)
                self._emit(msg)
            else:
                bucket = self.amp_msgs.get(self.phase, {})
                if len(bucket) < self.quorum:
                    return
                g0 = sum(1 for value, graded in bucket.values()
                         if graded and value == 0)
                g1 = sum(1 for value, graded in bucket.values()
                         if graded and value == 1)
                if g0 >= self.super_threshold:
                    self._decide_once(0)
                elif g1 >= self.super_threshold:
                    self._decide_once(1)
                if self.decided:
                    self.value = self.decision
                elif g0 >= self.adopt_threshold and g0 > g1:
                    self.value = 0
                elif g1 >= self.adopt_threshold and g1 > g0:
                    self.value = 1
                else:
                    self.value = self.rng.randint(0, 1)
                if self.decided and self.halt_after is None:
                    # Help laggards for exactly one more phase.
                    self.halt_after = self.phase + 1
                if (self.halt_after is not None
                        and self.phase >= self.halt_after) \
                        or self.phase >= self.max_phases:
                    self.halted = True
                    return
                self.phase += 1
                self.step = GRADE
                msg = GradeMessage(self.uid, self.phase, self.value)
                self._accept(msg)
                self._emit(msg)

    def _decide_once(self, value: int) -> None:
        # Within the tolerance bound the protocol never reaches a
        # conflicting second decision; past the bound (the E12
        # violation runs) the irrevocability guard must not crash the
        # node -- the first decision simply stands.
        if not self.decided:
            self.decide(value)

    # ------------------------------------------------------------------
    def state_fingerprint(self) -> Any:
        return (self.phase, self.step, self.value, self.decided,
                self.decision, self.halted)
