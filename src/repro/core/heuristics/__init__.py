"""Heuristic algorithms used to exhibit the paper's impossibilities."""

from .stability import (AnonymousMinFlood, KnownSetMessage,
                        NoSizeMinIdFlood, ValueSetMessage)

__all__ = [
    "AnonymousMinFlood",
    "NoSizeMinIdFlood",
    "ValueSetMessage",
    "KnownSetMessage",
]
