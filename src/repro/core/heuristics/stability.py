"""Stability-heuristic consensus algorithms used by the lower bounds.

The impossibility theorems (3.3 and 3.9) say *no* algorithm of a given
knowledge class can solve consensus. An executable reproduction needs
concrete members of those classes to exhibit the violation on the
paper's adversarial constructions -- and, for contrast, to show the
same algorithms succeeding on benign networks. This module provides
two natural "stability" algorithms of the kind a practitioner might
write:

* :class:`AnonymousMinFlood` -- fully anonymous (no ids anywhere in its
  messages or logic), knows ``n`` and ``D``: flood the set of values
  seen; once the set has been stable for ``n + D + 1`` of the node's
  acks, decide the minimum. Correct on lines/grids/cliques under the
  synchronous scheduler; *violates agreement* on Figure 1's network A
  (Theorem 3.3 / experiment E5).
* :class:`NoSizeMinIdFlood` -- has unique ids and knows ``D`` but *not*
  ``n``: flood ``(id, value)`` pairs; once the known set has been
  stable for ``stability_factor * D + 1`` acks, decide the minimum
  id's value. Correct on isolated lines under the synchronous
  scheduler; *violates agreement* on Figure 2's ``K_D`` under the
  semi-synchronous scheduler (Theorem 3.9 / experiment E6).

Both are deliberately scheduler-sensitive: the theorems guarantee that
every algorithm in these knowledge classes has *some* adversarial
execution that breaks it, and these are the executions the experiments
construct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Tuple

from ..base import ConsensusProcess


@dataclass(frozen=True)
class ValueSetMessage:
    """Anonymous flood payload: just a set of values (no ids)."""

    values: FrozenSet[int]

    def id_footprint(self) -> int:
        return 0


class AnonymousMinFlood(ConsensusProcess):
    """Anonymous consensus heuristic (knows ``n`` and ``D``).

    Maintains ``V``, the set of values seen, broadcasting it every MAC
    cycle. After every ack, if ``V`` did not grow since the previous
    ack, a stability counter increments; at ``n + D + 1`` stable acks
    the node decides ``min(V)``. Under the synchronous scheduler on a
    connected graph this is correct whenever every value reaches every
    node within ``n + D`` rounds -- true for ordinary topologies, and
    *provably not guaranteeable* in general (Theorem 3.3).
    """

    def __init__(self, uid: Any, initial_value: int, n: int,
                 diameter: int, decide_rule: str = "min") -> None:
        # uid is accepted for simulator bookkeeping but never used by
        # the algorithm: messages and decisions are id-free.
        super().__init__(uid=None, initial_value=initial_value)
        if n < 1 or diameter < 0:
            raise ValueError("need n >= 1 and diameter >= 0")
        if decide_rule not in ("min", "max"):
            raise ValueError("decide_rule must be 'min' or 'max'")
        self.n = n
        self.diameter = diameter
        self.decide_rule = decide_rule
        self.threshold = n + diameter + 1
        self.values: FrozenSet[int] = frozenset([initial_value])
        self.stable_acks = 0
        self._values_at_last_ack = self.values

    def on_start(self) -> None:
        self.broadcast(ValueSetMessage(values=self.values))

    def on_receive(self, message: Any) -> None:
        if isinstance(message, ValueSetMessage):
            self.values = self.values | message.values

    def on_ack(self) -> None:
        if self.values == self._values_at_last_ack:
            self.stable_acks += 1
        else:
            self.stable_acks = 0
            self._values_at_last_ack = self.values
        if not self.decided and self.stable_acks >= self.threshold:
            rule = min if self.decide_rule == "min" else max
            self.decide(rule(self.values))
        if not self.decided:
            self.broadcast(ValueSetMessage(values=self.values))

    def state_fingerprint(self) -> Tuple:
        return (self.values, self.stable_acks, self.decided, self.decision)


@dataclass(frozen=True)
class KnownSetMessage:
    """Flood payload carrying one (id, value) pair per message."""

    node_id: int
    value: int

    def id_footprint(self) -> int:
        return 1


class NoSizeMinIdFlood(ConsensusProcess):
    """Id-using consensus heuristic that knows ``D`` but not ``n``.

    Floods ``(id, value)`` pairs one per message; decides the minimum
    id's value once the known set has been stable for
    ``stability_factor * D + 1`` consecutive acks. Without ``n`` there
    is no way to detect completion, so stability is the natural proxy
    -- and exactly what Theorem 3.9's semi-synchronous scheduler
    exploits in ``K_D``.
    """

    def __init__(self, uid: int, initial_value: int, diameter: int,
                 stability_factor: int = 3) -> None:
        super().__init__(uid=uid, initial_value=initial_value)
        if diameter < 0 or stability_factor < 1:
            raise ValueError("bad diameter or stability factor")
        self.diameter = diameter
        self.threshold = stability_factor * diameter + 1
        self.known: Dict[int, int] = {uid: initial_value}
        self.outbox = [KnownSetMessage(node_id=uid, value=initial_value)]
        self.stable_acks = 0
        self._size_at_last_ack = 1

    def on_start(self) -> None:
        self._pump()

    def on_receive(self, message: Any) -> None:
        if not isinstance(message, KnownSetMessage):
            return
        if message.node_id not in self.known:
            self.known[message.node_id] = message.value
            self.outbox.append(message)

    def on_ack(self) -> None:
        if len(self.known) == self._size_at_last_ack:
            self.stable_acks += 1
        else:
            self.stable_acks = 0
            self._size_at_last_ack = len(self.known)
        if not self.decided and self.stable_acks >= self.threshold:
            self.decide(self.known[min(self.known)])
        self._pump()

    def _pump(self) -> None:
        if self.decided or self.crashed:
            return
        if self.outbox:
            self.broadcast(self.outbox.pop(0))
        else:
            # Keep the MAC cycle (and the stability clock) running.
            self.broadcast(KnownSetMessage(node_id=self.uid,
                                           value=self.initial_value))

    def state_fingerprint(self) -> Tuple:
        return (frozenset(self.known.items()), self.stable_acks,
                self.decided, self.decision)
