"""Consensus algorithms: the paper's contributions and baselines.

* :mod:`repro.core.twophase` -- Algorithm 1 (single hop, Theorem 4.1).
* :mod:`repro.core.wpaxos` -- wPAXOS (multihop, Theorem 4.6).
* :mod:`repro.core.baselines` -- GatherAll and flooding-PAXOS, the
  ``O(n * F_ack)`` comparison points of Section 4.2.
* :mod:`repro.core.heuristics` -- stability heuristics used to exhibit
  the Section 3 impossibility results.
* :mod:`repro.core.byzantine` -- Byzantine-tolerant grading +
  amplification consensus (the Tseng-Sardina direction), paired with
  the :mod:`repro.macsim.faults` adversary subsystem.
"""

from .base import ConsensusProcess, VALUES
from .twophase import Phase1Message, Phase2Message, TwoPhaseConsensus
from .wpaxos import SafetyMonitor, WPaxosConfig, WPaxosNode
from .baselines import GatherAllConsensus, PaxosFloodNode
from .heuristics import AnonymousMinFlood, NoSizeMinIdFlood
from .randomized import BenOrConsensus
from .byzantine import ByzantineConsensus, max_tolerance

__all__ = [
    "ConsensusProcess",
    "VALUES",
    "ByzantineConsensus",
    "max_tolerance",
    "TwoPhaseConsensus",
    "Phase1Message",
    "Phase2Message",
    "WPaxosNode",
    "WPaxosConfig",
    "SafetyMonitor",
    "GatherAllConsensus",
    "PaxosFloodNode",
    "AnonymousMinFlood",
    "NoSizeMinIdFlood",
    "BenOrConsensus",
]
