"""Consensus algorithms: the paper's contributions and baselines.

* :mod:`repro.core.twophase` -- Algorithm 1 (single hop, Theorem 4.1).
* :mod:`repro.core.wpaxos` -- wPAXOS (multihop, Theorem 4.6).
* :mod:`repro.core.baselines` -- GatherAll and flooding-PAXOS, the
  ``O(n * F_ack)`` comparison points of Section 4.2.
* :mod:`repro.core.heuristics` -- stability heuristics used to exhibit
  the Section 3 impossibility results.
"""

from .base import ConsensusProcess, VALUES
from .twophase import Phase1Message, Phase2Message, TwoPhaseConsensus
from .wpaxos import SafetyMonitor, WPaxosConfig, WPaxosNode
from .baselines import GatherAllConsensus, PaxosFloodNode
from .heuristics import AnonymousMinFlood, NoSizeMinIdFlood
from .randomized import BenOrConsensus

__all__ = [
    "ConsensusProcess",
    "VALUES",
    "TwoPhaseConsensus",
    "Phase1Message",
    "Phase2Message",
    "WPaxosNode",
    "WPaxosConfig",
    "SafetyMonitor",
    "GatherAllConsensus",
    "PaxosFloodNode",
    "AnonymousMinFlood",
    "NoSizeMinIdFlood",
    "BenOrConsensus",
]
