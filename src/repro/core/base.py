"""Shared base class for consensus algorithms.

All algorithms in :mod:`repro.core` implement *binary consensus* as
defined in Section 2 of the paper: each node starts with an initial
value in ``{0, 1}``, may perform one irrevocable ``decide``, and a
correct algorithm guarantees agreement, validity and termination.
"""

from __future__ import annotations

from typing import Any, Optional

from ..macsim.process import Process

#: The binary consensus value domain.
VALUES = (0, 1)


class ConsensusProcess(Process):
    """A process participating in binary consensus.

    Subclasses implement the algorithm via the :class:`Process` handler
    hooks. The constructor validates the initial value, keeping the
    experiments honest about the binary problem statement the paper's
    lower bounds rely on.
    """

    def __init__(self, uid: Optional[int] = None,
                 initial_value: Any = None, *,
                 allow_arbitrary_values: bool = False) -> None:
        if not allow_arbitrary_values and initial_value not in VALUES:
            raise ValueError(
                f"binary consensus input must be 0 or 1, got "
                f"{initial_value!r}")
        super().__init__(uid=uid, initial_value=initial_value)
