"""The wPAXOS node: services + PAXOS roles + broadcast multiplexer.

:class:`WPaxosNode` assembles the pieces of Section 4.2.1:

* the three support services (leader election, change, tree building);
* the proposer and acceptor roles every node plays;
* the proposer-message flooding layer with its queue invariant (only
  the current leader's messages, only its largest proposal number);
* the acceptor response queue with tree-routed, aggregated unicast;
* the broadcast service (Algorithm 5): whenever the MAC layer is idle
  and any queue is non-empty, dequeue at most one part per queue,
  combine them into one :class:`~repro.core.wpaxos.messages.WMessage`,
  and broadcast -- keeping every physical message at O(1) ids.

A *change* notification fires whenever the node's ``(leader,
dist-to-leader)`` pair moves (see ``services.py`` for why this is the
right reading of the paper's "Omega_u or dist_u updated").

Requires unique ids and knowledge of ``n`` (for majorities), exactly
the knowledge the Section 3 lower bounds prove necessary.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..base import ConsensusProcess
from .acceptor import AcceptorState, ResponseQueue
from .config import WPaxosConfig
from .messages import (ChangePart, DecidePart, LeaderPart, PREPARE,
                       ProposerPart, ResponsePart, SearchPart, WMessage,
                       proposition_key)
from .proposer import Proposer
from .services import ChangeService, LeaderElectionService, TreeService


class WPaxosNode(ConsensusProcess):
    """One wPAXOS participant (proposer + acceptor + services).

    Parameters
    ----------
    uid:
        Unique node id (ints; leader election takes the maximum).
    initial_value:
        Binary consensus input (or any hashable value with
        ``allow_arbitrary_values=True``: the paper poses efficient
        *multivalued* consensus as an open generalization, but PAXOS
        is value-agnostic, so wPAXOS solves it directly -- values
        just ride the propose messages).
    n:
        Network size -- the knowledge Theorem 3.9 proves necessary.
        Only used to recognize majorities (footnote 1 of the paper).
    config:
        Design-choice toggles; see :class:`WPaxosConfig`.
    """

    def __init__(self, uid: int, initial_value: int, n: int,
                 config: Optional[WPaxosConfig] = None, *,
                 allow_arbitrary_values: bool = False) -> None:
        super().__init__(uid=uid, initial_value=initial_value,
                         allow_arbitrary_values=allow_arbitrary_values)
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self.config = config or WPaxosConfig()

        self.leader_svc = LeaderElectionService(
            uid, on_leader_change=self._on_leader_change)
        self.tree_svc = TreeService(
            uid, current_leader=lambda: self.leader_svc.leader,
            on_tree_change=self._on_tree_change,
            prioritize_leader=self.config.tree_priority)
        self.change_svc = ChangeService(
            uid, clock=self.now,
            is_leader=lambda: self.leader_svc.leader == uid,
            generate_proposal=self._generate_proposal)
        self.acceptor = AcceptorState(uid)
        self.response_queue = ResponseQueue(
            aggregation=self.config.aggregation)
        self.proposer = Proposer(
            uid, initial_value, n, self.config,
            is_leader=lambda: self.leader_svc.leader == uid,
            flood=self._handle_proposer_part,
            on_chosen=self._on_chosen)

        self.proposer_queue: List[ProposerPart] = []
        self.decide_queue: List[DecidePart] = []
        self._seen_proposer_parts: set = set()
        self._largest_from_leader = None
        self._last_change_state = None
        self._decide_flooded = False

        # Exact-type dispatch for the receive hot path; unknown or
        # subclassed parts fall back to the isinstance chain.
        self._part_handlers = {
            LeaderPart: self.leader_svc.on_receive,
            ChangePart: self.change_svc.on_receive,
            SearchPart: self.tree_svc.on_receive,
            ProposerPart: self._handle_proposer_part,
            ResponsePart: self._handle_response_part,
            DecidePart: self._handle_decide_part,
        }

    # ------------------------------------------------------------------
    # Process handlers
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        # Initialization counts as a change: Omega_u was just set to
        # id_u and dist[id_u] to 0. This bootstraps proposal generation
        # (and makes the degenerate n=1 network decide).
        self._note_possible_change(force=True)
        self._pump()

    def on_receive(self, message: Any) -> None:
        if (message.__class__ is not WMessage
                and not isinstance(message, WMessage)):
            return
        handlers = self._part_handlers
        for part in message.parts:
            handler = handlers.get(part.__class__)
            if handler is not None:
                handler(part)
            else:
                self._handle_part_fallback(part)
        # Inlined body of _note_possible_change (receive hot path);
        # keep in sync with that method.
        leader = self.leader_svc.leader
        state = (leader, self.tree_svc.dist.get(leader))
        if state != self._last_change_state:
            self._last_change_state = state
            self.change_svc.on_local_change()
        self._pump()

    def _handle_part_fallback(self, part: Any) -> None:
        """isinstance-based dispatch for subclassed message parts."""
        if isinstance(part, LeaderPart):
            self.leader_svc.on_receive(part)
        elif isinstance(part, ChangePart):
            self.change_svc.on_receive(part)
        elif isinstance(part, SearchPart):
            self.tree_svc.on_receive(part)
        elif isinstance(part, ProposerPart):
            self._handle_proposer_part(part)
        elif isinstance(part, ResponsePart):
            self._handle_response_part(part)
        elif isinstance(part, DecidePart):
            self._handle_decide_part(part)

    def on_ack(self) -> None:
        self._pump()

    # ------------------------------------------------------------------
    # Service callbacks
    # ------------------------------------------------------------------
    def _on_leader_change(self, old: int, new: int) -> None:
        if old == self.uid:
            self.proposer.abdicate()
        self._largest_from_leader = None
        self.proposer_queue.clear()
        self.response_queue.enforce_invariant(new, None)
        self._note_possible_change()

    def _on_tree_change(self, root: int) -> None:
        self._note_possible_change()

    def _note_possible_change(self, force: bool = False) -> None:
        """Fire the change service when (leader, dist-to-leader) moves.

        The ``force=False`` body is duplicated inline at the end of
        :meth:`on_receive` (the hot path); keep the two in sync.
        """
        leader = self.leader_svc.leader
        state = (leader, self.tree_svc.dist.get(leader))
        if force or state != self._last_change_state:
            self._last_change_state = state
            self.change_svc.on_local_change()

    def _generate_proposal(self) -> None:
        if not self.decided:
            self.proposer.generate_new_proposal()

    def _on_chosen(self, value: int) -> None:
        """A proposal of ours was accepted by a majority: decide."""
        self.decide(value)
        self._flood_decision(value)

    # ------------------------------------------------------------------
    # Proposer message flooding (with the paper's queue invariant)
    # ------------------------------------------------------------------
    def _handle_proposer_part(self, part: ProposerPart) -> None:
        key = (part.kind, part.number)
        if key in self._seen_proposer_parts:
            return
        self._seen_proposer_parts.add(key)
        self.proposer.observe_number(part.number)

        proposer_id = part.number[1]
        # Queue invariant: rebroadcast only the current leader's
        # messages, and only those for its largest proposal number.
        if proposer_id == self.leader_svc.leader:
            if (self._largest_from_leader is None
                    or part.number > self._largest_from_leader):
                self._largest_from_leader = part.number
                self.proposer_queue = [
                    p for p in self.proposer_queue
                    if p.number >= self._largest_from_leader]
                self.response_queue.enforce_invariant(
                    proposer_id, self._largest_from_leader)
            if part.number >= self._largest_from_leader:
                self.proposer_queue.append(part)

        # Acceptor role: respond to every proposition we see.
        if part.kind == PREPARE:
            seed = self.acceptor.on_prepare(part.number, proposer_id)
        else:
            seed = self.acceptor.on_propose(part.number, part.value,
                                            proposer_id)
        monitor = self.config.monitor
        if monitor is not None and seed.affirmative:
            monitor.note_generated(
                proposition_key(proposer_id, seed.kind, seed.number))
        if proposer_id == self.uid:
            # Self-response skips the queue (Section 4.2.1).
            response = ResponsePart(dest=self.uid, proposer=self.uid,
                                    kind=seed.kind, number=seed.number,
                                    count=1, prior=seed.prior,
                                    committed=seed.committed)
            self._deliver_to_proposer(response)
        else:
            self.response_queue.add_seed(seed)
            self.response_queue.enforce_invariant(
                self.leader_svc.leader, self._largest_from_leader)

    # ------------------------------------------------------------------
    # Response routing
    # ------------------------------------------------------------------
    def _handle_response_part(self, part: ResponsePart) -> None:
        if part.dest != self.uid:
            return  # overheard unicast; not for us
        if part.proposer == self.uid:
            self._deliver_to_proposer(part)
        else:
            self.response_queue.add_part(part)
            self.response_queue.enforce_invariant(
                self.leader_svc.leader, self._largest_from_leader)

    def _deliver_to_proposer(self, part: ResponsePart) -> None:
        counted = self.proposer.on_response(part)
        monitor = self.config.monitor
        if counted and monitor is not None:
            monitor.note_counted(
                proposition_key(part.proposer, part.kind, part.number),
                counted)

    def _parent_of(self, proposer: int) -> Optional[int]:
        parent = self.tree_svc.parent.get(proposer)
        if parent == self.uid:
            return None  # would loop back to ourselves; not routable
        return parent

    # ------------------------------------------------------------------
    # Decision flooding
    # ------------------------------------------------------------------
    def _handle_decide_part(self, part: DecidePart) -> None:
        if not self.decided:
            self.decide(part.value)
        self._flood_decision(part.value)

    def _flood_decision(self, value: int) -> None:
        if not self._decide_flooded:
            self._decide_flooded = True
            self.decide_queue.append(DecidePart(value=value))

    # ------------------------------------------------------------------
    # Broadcast service (Algorithm 5)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        # _mac_pending is the engine-maintained mirror behind the
        # ack_pending property; read it directly in this hot path.
        if self.crashed or self._mac_pending:
            return
        parts: List[object] = []
        if self.decide_queue:
            parts.append(self.decide_queue.pop(0))
        if not self.decided:
            lead = self.leader_svc.pop()
            if lead is not None:
                parts.append(lead)
            change = self.change_svc.pop()
            if change is not None:
                parts.append(change)
            search = self.tree_svc.pop()
            if search is not None:
                parts.append(search)
            if self.proposer_queue:
                parts.append(self.proposer_queue.pop(0))
            response = self.response_queue.pop_route(self._parent_of)
            if response is not None:
                parts.append(response)
        if parts:
            self.broadcast(WMessage(parts=tuple(parts)))

    # ------------------------------------------------------------------
    def state_fingerprint(self) -> Any:
        return (self.leader_svc.leader, self.tree_svc.dist.get(
            self.leader_svc.leader), self.decided, self.decision)
