"""PAXOS acceptor state and the aggregating response queue.

:class:`AcceptorState` is the textbook single-decree acceptor ("Paxos
Made Simple", which the paper builds on): it promises to the highest
prepare it has seen and accepts proposals not older than its promise,
reporting its previously accepted proposal in promises and its current
commitment in rejections.

:class:`ResponseQueue` implements Section 4.2.1's response plumbing:
responses are unicast-over-broadcast to ``parent[proposer]`` and
*aggregated* -- multiple responses of the same type to the same
proposition merge into a single counted message, keeping only the
highest-numbered prior proposal (footnote 6) and the largest committed
number among rejections. The queue maintains the paper's invariant:
only responses to the current leader's largest-known proposition are
retained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .messages import (ACCEPTED, PROMISE, PROPOSE, PREPARE,
                       REJECT_PREPARE, REJECT_PROPOSE, ProposalNumber,
                       ResponsePart, proposition_key)


@dataclass
class ResponseSeed:
    """A single acceptor response before queueing/aggregation."""

    proposer: int
    kind: str
    number: ProposalNumber
    prior: Optional[Tuple[ProposalNumber, int]] = None
    committed: Optional[ProposalNumber] = None

    @property
    def affirmative(self) -> bool:
        return self.kind in (PROMISE, ACCEPTED)


class AcceptorState:
    """Single-decree PAXOS acceptor."""

    def __init__(self, uid: int) -> None:
        self.uid = uid
        self.promised: Optional[ProposalNumber] = None
        self.accepted: Optional[Tuple[ProposalNumber, int]] = None

    def on_prepare(self, number: ProposalNumber,
                   proposer: int) -> ResponseSeed:
        """Handle a prepare; promise or reject with our commitment."""
        if self.promised is None or number > self.promised:
            self.promised = number
            return ResponseSeed(proposer=proposer, kind=PROMISE,
                                number=number, prior=self.accepted)
        return ResponseSeed(proposer=proposer, kind=REJECT_PREPARE,
                            number=number, committed=self.promised)

    def on_propose(self, number: ProposalNumber, value: int,
                   proposer: int) -> ResponseSeed:
        """Handle a propose; accept unless committed to a higher number."""
        if self.promised is None or number >= self.promised:
            self.promised = number
            self.accepted = (number, value)
            return ResponseSeed(proposer=proposer, kind=ACCEPTED,
                                number=number)
        return ResponseSeed(proposer=proposer, kind=REJECT_PROPOSE,
                            number=number, committed=self.promised)


@dataclass
class _Entry:
    """One (possibly aggregated) queued response."""

    proposer: int
    kind: str
    number: ProposalNumber
    count: int
    prior: Optional[Tuple[ProposalNumber, int]] = None
    committed: Optional[ProposalNumber] = None


class ResponseQueue:
    """Aggregating, invariant-maintaining acceptor response queue.

    Parameters
    ----------
    aggregation:
        When false (E8 ablation), responses are queued individually and
        only their transport (the routing tree) is shared -- message
        *counts* then scale with n instead of D.
    """

    def __init__(self, aggregation: bool = True) -> None:
        self.aggregation = aggregation
        self._entries: List[_Entry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def has_pending(self) -> bool:
        return bool(self._entries)

    # ------------------------------------------------------------------
    def add(self, proposer: int, kind: str, number: ProposalNumber,
            count: int,
            prior: Optional[Tuple[ProposalNumber, int]] = None,
            committed: Optional[ProposalNumber] = None) -> None:
        """Queue a response (merging with a same-proposition entry)."""
        if self.aggregation:
            for entry in self._entries:
                if (entry.proposer == proposer and entry.kind == kind
                        and entry.number == number):
                    entry.count += count
                    entry.prior = _max_prior(entry.prior, prior)
                    entry.committed = _max_number(entry.committed,
                                                  committed)
                    return
        self._entries.append(_Entry(proposer=proposer, kind=kind,
                                    number=number, count=count,
                                    prior=prior, committed=committed))

    def add_seed(self, seed: ResponseSeed) -> None:
        self.add(seed.proposer, seed.kind, seed.number, 1,
                 prior=seed.prior, committed=seed.committed)

    def add_part(self, part: ResponsePart) -> None:
        """Queue a forwarded response received from a tree child."""
        self.add(part.proposer, part.kind, part.number, part.count,
                 prior=part.prior, committed=part.committed)

    # ------------------------------------------------------------------
    def enforce_invariant(self, leader: int,
                          largest: Optional[ProposalNumber]) -> None:
        """Drop responses not for the leader's largest proposition.

        The paper's queue invariant (Section 4.2.1): the queue only
        holds responses to the current leader's propositions, and only
        for the largest proposal number seen so far from that leader.
        Dropping responses never threatens safety (Lemma 4.2 is an
        upper bound on counts); it prevents stale traffic from
        delaying fresh propositions.
        """
        self._entries = [
            e for e in self._entries
            if e.proposer == leader
            and (largest is None or e.number >= largest)
        ]

    # ------------------------------------------------------------------
    def pop_route(self, parent_of: Callable[[int], Optional[int]]
                  ) -> Optional[ResponsePart]:
        """Dequeue the first routable entry as a :class:`ResponsePart`.

        ``parent_of(proposer)`` resolves the next hop at *send* time
        (the tree may have changed since the response was queued);
        entries whose proposer has no known parent yet stay queued.
        """
        for i, entry in enumerate(self._entries):
            dest = parent_of(entry.proposer)
            if dest is None:
                continue
            del self._entries[i]
            return ResponsePart(dest=dest, proposer=entry.proposer,
                                kind=entry.kind, number=entry.number,
                                count=entry.count, prior=entry.prior,
                                committed=entry.committed)
        return None

    def total_count(self, proposer: int, kind: str,
                    number: ProposalNumber) -> int:
        """Aggregate count queued for one proposition/kind (testing)."""
        return sum(e.count for e in self._entries
                   if (e.proposer, e.kind, e.number)
                   == (proposer, kind, number))


def _max_prior(a: Optional[Tuple[ProposalNumber, int]],
               b: Optional[Tuple[ProposalNumber, int]]
               ) -> Optional[Tuple[ProposalNumber, int]]:
    """Keep the previously-accepted proposal with the larger number."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a[0] >= b[0] else b


def _max_number(a: Optional[ProposalNumber],
                b: Optional[ProposalNumber]) -> Optional[ProposalNumber]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)
