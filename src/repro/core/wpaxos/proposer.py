"""PAXOS proposer logic adapted to the wPAXOS services.

The proposer follows Section 4.2.1's description:

* A fresh proposal is generated when the change service calls
  ``generate_new_proposal`` (and only while this node believes itself
  the leader). Its tag is one larger than any tag seen or used.
* When a *majority* of (aggregated) promise counts arrive, the proposer
  issues a propose message carrying either the value of the
  highest-numbered prior proposal learned from the promises or its own
  initial value.
* When a majority of accepted counts arrive, the proposer decides.
* On a majority of rejections the proposer may retry with a larger tag:
  under the paper policy at most ``attempts_per_change`` numbers per
  change notification; under the "learned" policy whenever the
  rejection revealed a strictly larger committed number (see
  ``config.py`` for why both exist).

The proposer never parses individual acceptor identities -- only
counts -- which is exactly what makes the tree aggregation scheme
(and its Lemma 4.2 conservation invariant) sufficient.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .config import RETRY_LEARNED, RETRY_PAPER, WPaxosConfig
from .messages import (ACCEPTED, PREPARE, PROMISE, PROPOSE,
                       REJECT_PREPARE, REJECT_PROPOSE, ProposalNumber,
                       ProposerPart, ResponsePart, proposition_key)


class Proposer:
    """The proposer role of one wPAXOS node.

    Collaborators are injected as callables so the proposer is unit
    testable without a simulator:

    * ``is_leader()`` -- whether this node currently believes it leads;
    * ``flood(part)`` -- hand a proposer message to the flooding layer;
    * ``on_chosen(value)`` -- called when a proposal is chosen (majority
      accepted); the node decides and floods the decision.
    """

    def __init__(self, uid: int, initial_value: int, n: int,
                 config: WPaxosConfig, *,
                 is_leader: Callable[[], bool],
                 flood: Callable[[ProposerPart], None],
                 on_chosen: Callable[[int], None]) -> None:
        self.uid = uid
        self.initial_value = initial_value
        self.majority = n // 2 + 1
        self.config = config
        self._is_leader = is_leader
        self._flood = flood
        self._on_chosen = on_chosen

        self.max_tag_seen = 0
        self.active_number: Optional[ProposalNumber] = None
        self.stage: Optional[str] = None  # PREPARE or PROPOSE
        self.proposal_value: Optional[int] = None
        self.chosen = False

        self._promise_count = 0
        self._accept_count = 0
        self._reject_count = 0
        self._best_prior: Optional[Tuple[ProposalNumber, int]] = None
        self._attempts_left = 0
        self._learned_higher = False
        #: Number of proposal numbers this proposer used (Lemma 4.4 data).
        self.proposals_generated = 0

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe_number(self, number: Optional[ProposalNumber]) -> None:
        """Track the largest tag seen anywhere (floods, responses)."""
        if number is not None and number[0] > self.max_tag_seen:
            self.max_tag_seen = number[0]

    # ------------------------------------------------------------------
    # Proposal generation
    # ------------------------------------------------------------------
    def generate_new_proposal(self) -> None:
        """Change-service notification: start over with a fresh number."""
        if self.chosen or not self._is_leader():
            return
        self._attempts_left = self.config.attempts_per_change
        self._start_attempt()

    def _start_attempt(self) -> None:
        if self.chosen or not self._is_leader():
            self.stage = None
            return
        self._attempts_left -= 1
        tag = self.max_tag_seen + 1
        self.max_tag_seen = tag
        self.active_number = (tag, self.uid)
        self.stage = PREPARE
        self.proposal_value = None
        self._promise_count = 0
        self._accept_count = 0
        self._reject_count = 0
        self._best_prior = None
        self._learned_higher = False
        self.proposals_generated += 1
        self._flood(ProposerPart(kind=PREPARE, number=self.active_number))

    def abdicate(self) -> None:
        """Another node took leadership; stop proposing."""
        self.stage = None
        self.active_number = None

    # ------------------------------------------------------------------
    # Response handling
    # ------------------------------------------------------------------
    def on_response(self, part: ResponsePart) -> int:
        """Process an aggregated response addressed to this proposer.

        Returns the number of *affirmative* responses newly tallied for
        the active proposition (for the Lemma 4.2 monitor).
        """
        self.observe_number(part.number)
        self.observe_number(part.committed)
        if part.prior is not None:
            self.observe_number(part.prior[0])

        if self.chosen or part.number != self.active_number:
            return 0
        if self.stage == PREPARE and part.kind == PROMISE:
            self._promise_count += part.count
            self._best_prior = _max_prior(self._best_prior, part.prior)
            if self._promise_count >= self.majority:
                self._begin_propose()
            return part.count
        if self.stage == PREPARE and part.kind == REJECT_PREPARE:
            self._note_rejection(part)
            return 0
        if self.stage == PROPOSE and part.kind == ACCEPTED:
            self._accept_count += part.count
            if self._accept_count >= self.majority:
                self.chosen = True
                self.stage = None
                self._on_chosen(self.proposal_value)
            return part.count
        if self.stage == PROPOSE and part.kind == REJECT_PROPOSE:
            self._note_rejection(part)
            return 0
        return 0

    def _begin_propose(self) -> None:
        self.stage = PROPOSE
        self._reject_count = 0
        if self._best_prior is not None:
            self.proposal_value = self._best_prior[1]
        else:
            self.proposal_value = self.initial_value
        self._flood(ProposerPart(kind=PROPOSE, number=self.active_number,
                                 value=self.proposal_value))

    def _note_rejection(self, part: ResponsePart) -> None:
        self._reject_count += part.count
        if (part.committed is not None
                and part.committed > self.active_number):
            self._learned_higher = True
        if self._reject_count >= self.majority:
            self._maybe_retry()

    def _maybe_retry(self) -> None:
        """A majority rejected; retry per the configured policy."""
        if not self._learned_higher or not self._is_leader():
            self.stage = None
            return
        if self.config.retry_policy == RETRY_PAPER:
            if self._attempts_left > 0:
                self._start_attempt()
            else:
                self.stage = None  # wait for the change service
        elif self.config.retry_policy == RETRY_LEARNED:
            self._start_attempt()

    # ------------------------------------------------------------------
    def active_proposition(self) -> Optional[tuple]:
        """Key of the proposition currently awaiting responses."""
        if self.stage is None or self.active_number is None:
            return None
        return proposition_key(self.uid, self.stage, self.active_number)


def _max_prior(a: Optional[Tuple[ProposalNumber, int]],
               b: Optional[Tuple[ProposalNumber, int]]
               ) -> Optional[Tuple[ProposalNumber, int]]:
    if a is None:
        return b
    if b is None:
        return a
    return a if a[0] >= b[0] else b
