"""The wPAXOS support services (Algorithms 2, 3 and 4 of the paper).

Each service owns a message queue drained by the broadcast multiplexer
(Algorithm 5, implemented in ``node.py``): one part per non-empty queue
per physical broadcast. The services communicate with the node through
narrow callbacks so each can be unit-tested in isolation.

* :class:`LeaderElectionService` -- flood the maximum id; eventually
  every node agrees on the same leader (the max id in the network).
* :class:`ChangeService` -- flood totally-ordered change stamps; each
  fresher stamp processed at the current leader triggers proposal
  generation. A *change* is an update of the pair ``(Omega_u,
  dist[Omega_u])`` -- the node's leader and its distance to it -- which
  is what makes the paper's Lemma 4.5 "final change by GST" argument
  go through (see DESIGN.md).
* :class:`TreeService` -- Bellman-Ford shortest-path trees for every
  root, with the crucial optimization that the current leader's search
  messages jump to the front of the queue, so the leader's tree
  completes ``O(D * F_ack)`` after the election stabilizes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .messages import ChangePart, LeaderPart, SearchPart


class LeaderElectionService:
    """Algorithm 2: maintain ``Omega_u``, the largest id seen."""

    def __init__(self, uid: int,
                 on_leader_change: Callable[[int, int], None]) -> None:
        self.uid = uid
        self.leader = uid
        self._on_leader_change = on_leader_change
        self.queue: List[LeaderPart] = []
        self._update_queue(LeaderPart(leader=uid))

    def on_receive(self, part: LeaderPart) -> None:
        if part.leader > self.leader:
            old = self.leader
            self.leader = part.leader
            self._update_queue(part)
            self._on_leader_change(old, part.leader)

    def _update_queue(self, part: LeaderPart) -> None:
        # The queue never holds more than the freshest leader message.
        self.queue.clear()
        self.queue.append(part)

    def pop(self) -> Optional[LeaderPart]:
        if self.queue:
            return self.queue.pop(0)
        return None

    def has_pending(self) -> bool:
        return bool(self.queue)


class ChangeService:
    """Algorithm 3: flood change stamps; trigger proposals at the leader.

    ``stamp`` values are ``(timestamp, origin id)`` pairs compared
    lexicographically; the id component breaks ties between changes
    occurring at the same instant at different nodes.
    """

    def __init__(self, uid: int, clock: Callable[[], float],
                 is_leader: Callable[[], bool],
                 generate_proposal: Callable[[], None]) -> None:
        self.uid = uid
        self._clock = clock
        self._is_leader = is_leader
        self._generate_proposal = generate_proposal
        self.last_change: Optional[tuple] = None
        self.queue: List[ChangePart] = []

    def on_local_change(self) -> None:
        """``ONCHANGE``: this node's ``(leader, dist-to-leader)`` moved."""
        stamp = (self._clock(), self.uid)
        if self.last_change is None or stamp > self.last_change:
            self.last_change = stamp
            self._update_queue(ChangePart(stamp=stamp))

    def on_receive(self, part: ChangePart) -> None:
        if self.last_change is None or part.stamp > self.last_change:
            self.last_change = part.stamp
            self._update_queue(part)

    def _update_queue(self, part: ChangePart) -> None:
        self.queue.clear()
        self.queue.append(part)
        if self._is_leader():
            self._generate_proposal()

    def pop(self) -> Optional[ChangePart]:
        if self.queue:
            return self.queue.pop(0)
        return None

    def has_pending(self) -> bool:
        return bool(self.queue)


class TreeService:
    """Algorithm 4: eventually-stable shortest-path trees, all roots.

    ``dist[r]`` / ``parent[r]`` converge to the true hop distance and a
    shortest-path parent toward ``r``. Queue discipline: at most one
    queued search per root (the lowest hop count wins), and -- when
    ``prioritize_leader`` is set -- the current leader's search message
    is served first.
    """

    def __init__(self, uid: int, current_leader: Callable[[], int],
                 on_tree_change: Callable[[int], None],
                 prioritize_leader: bool = True) -> None:
        self.uid = uid
        self._current_leader = current_leader
        self._on_tree_change = on_tree_change
        self.prioritize_leader = prioritize_leader
        self.dist: Dict[int, int] = {uid: 0}
        self.parent: Dict[int, int] = {uid: uid}
        self._queued: Dict[int, SearchPart] = {}
        self._order: List[int] = []
        self._enqueue(SearchPart(root=uid, hops=1, sender=uid))

    # ------------------------------------------------------------------
    def on_receive(self, part: SearchPart) -> None:
        current = self.dist.get(part.root)
        if current is None or part.hops < current:
            self.dist[part.root] = part.hops
            self.parent[part.root] = part.sender
            self._enqueue(SearchPart(root=part.root, hops=part.hops + 1,
                                     sender=self.uid))
            self._on_tree_change(part.root)

    def _enqueue(self, part: SearchPart) -> None:
        queued = self._queued.get(part.root)
        if queued is not None and queued.hops <= part.hops:
            return  # a fresher (lower hop) message is already queued
        if queued is None:
            self._order.append(part.root)
        self._queued[part.root] = part

    def pop(self) -> Optional[SearchPart]:
        if not self._order:
            return None
        root = None
        if self.prioritize_leader:
            leader = self._current_leader()
            if leader in self._queued:
                root = leader
        if root is None:
            root = self._order[0]
        self._order.remove(root)
        return self._queued.pop(root)

    def has_pending(self) -> bool:
        return bool(self._order)

    def pending_roots(self) -> List[int]:
        """Roots with queued search messages (leader first if queued)."""
        return list(self._order)

    def distance_to(self, root: int) -> Optional[int]:
        """Best-known hop distance to ``root`` (None if unheard of)."""
        return self.dist.get(root)
