"""wPAXOS configuration and the Lemma 4.2 safety monitor.

:class:`WPaxosConfig` gathers the design choices the paper's Section
4.2 analysis calls out, so the E8 ablation experiments can toggle them:

* ``tree_priority`` -- Algorithm 4's optimization of moving the current
  leader's search messages to the front of the tree queue (what makes
  the leader's tree stabilize in ``O(D * F_ack)`` after election).
* ``aggregation`` -- combining same-type responses in acceptor queues
  (what reduces response collection from ``Theta(n)`` messages through
  a bottleneck to ``Theta(D)`` tree hops).
* ``retry_policy`` -- how many proposal numbers a proposer tries per
  change-service notification. ``"paper"`` is the literal "up to 2";
  ``"learned"`` retries as long as each rejection reveals a strictly
  larger committed proposal number (the reading that makes the Lemma
  4.5 liveness argument airtight when several stale high promises
  hide in different majorities; see DESIGN.md).

:class:`SafetyMonitor` implements Lemma 4.2's conservation check as a
runtime invariant: for every proposition ``p``, the count of
affirmative responses the proposer tallies (``c(p)``) never exceeds the
number of affirmative responses acceptors generated (``a(p)``) --
aggregation in dynamic trees must never duplicate a response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ...macsim.errors import ModelViolationError

#: Valid retry policies.
RETRY_PAPER = "paper"
RETRY_LEARNED = "learned"


class SafetyMonitor:
    """Cross-node bookkeeping asserting Lemma 4.2's ``c(p) <= a(p)``.

    The monitor is test/experiment infrastructure, not algorithm state:
    nodes report generation and counting events, and the monitor raises
    immediately if a proposer ever counts more affirmative responses
    than were generated for that proposition.
    """

    def __init__(self) -> None:
        self.generated: Dict[tuple, int] = {}
        self.counted: Dict[tuple, int] = {}

    def note_generated(self, proposition: tuple, count: int = 1) -> None:
        """An acceptor generated ``count`` affirmative responses."""
        self.generated[proposition] = (
            self.generated.get(proposition, 0) + count)

    def note_counted(self, proposition: tuple, count: int) -> None:
        """The proposer tallied ``count`` affirmative responses."""
        total = self.counted.get(proposition, 0) + count
        self.counted[proposition] = total
        available = self.generated.get(proposition, 0)
        if total > available:
            raise ModelViolationError(
                f"Lemma 4.2 violated for proposition {proposition!r}: "
                f"counted {total} > generated {available}")

    def conservation_holds(self) -> bool:
        """Whether ``c(p) <= a(p)`` held for every proposition."""
        return all(self.counted.get(p, 0) <= g
                   for p, g in self.generated.items())

    def max_slack(self) -> int:
        """Largest ``a(p) - c(p)`` observed (responses lost in transit)."""
        return max((g - self.counted.get(p, 0)
                    for p, g in self.generated.items()), default=0)


@dataclass
class WPaxosConfig:
    """Tunable design choices of the wPAXOS implementation."""

    tree_priority: bool = True
    aggregation: bool = True
    retry_policy: str = RETRY_PAPER
    #: Attempts per change notification under the "paper" policy.
    attempts_per_change: int = 2
    #: Optional Lemma 4.2 monitor shared by all nodes of a run.
    monitor: Optional[SafetyMonitor] = None

    def __post_init__(self) -> None:
        if self.retry_policy not in (RETRY_PAPER, RETRY_LEARNED):
            raise ValueError(
                f"unknown retry policy {self.retry_policy!r}")
        if self.attempts_per_change < 1:
            raise ValueError("attempts_per_change must be >= 1")
