"""wPAXOS: wireless PAXOS for multihop abstract MAC layer networks.

The paper's Section 4.2 algorithm: PAXOS logic connected to four
model-specific support services (leader election, change, tree
building, broadcast multiplexing), achieving consensus in
``O(D * F_ack)`` time with unique ids and knowledge of ``n``
(Theorem 4.6).
"""

from .config import (RETRY_LEARNED, RETRY_PAPER, SafetyMonitor,
                     WPaxosConfig)
from .messages import (ACCEPTED, ChangePart, DecidePart, LeaderPart,
                       PREPARE, PROMISE, PROPOSE, ProposalNumber,
                       ProposerPart, REJECT_PREPARE, REJECT_PROPOSE,
                       ResponsePart, SearchPart, WMessage,
                       proposition_key)
from .acceptor import AcceptorState, ResponseQueue, ResponseSeed
from .proposer import Proposer
from .services import ChangeService, LeaderElectionService, TreeService
from .node import WPaxosNode

__all__ = [
    "WPaxosNode",
    "WPaxosConfig",
    "SafetyMonitor",
    "RETRY_PAPER",
    "RETRY_LEARNED",
    "Proposer",
    "AcceptorState",
    "ResponseQueue",
    "ResponseSeed",
    "LeaderElectionService",
    "ChangeService",
    "TreeService",
    "WMessage",
    "LeaderPart",
    "ChangePart",
    "SearchPart",
    "ProposerPart",
    "ResponsePart",
    "DecidePart",
    "ProposalNumber",
    "proposition_key",
    "PREPARE",
    "PROPOSE",
    "PROMISE",
    "ACCEPTED",
    "REJECT_PREPARE",
    "REJECT_PROPOSE",
]
