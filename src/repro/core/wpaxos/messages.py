"""Message vocabulary of wPAXOS.

wPAXOS multiplexes several logical services over the single broadcast
primitive (Algorithm 5 of the paper): every physical broadcast carries a
:class:`WMessage` composed of at most one part per service. Each part
type reports its ``id_footprint`` -- the number of node ids it contains
-- and the engine's strict mode verifies the composite stays O(1),
enforcing the paper's bounded-message assumption (Section 2).

Proposal numbers are ``(tag, id)`` pairs compared lexicographically,
exactly as in Section 4.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: A PAXOS proposal number: (tag, proposer id), compared lexicographically.
ProposalNumber = Tuple[int, int]

#: Response kinds an acceptor can produce.
PROMISE = "promise"
REJECT_PREPARE = "reject_prepare"
ACCEPTED = "accepted"
REJECT_PROPOSE = "reject_propose"

#: Affirmative response kinds (the ones Lemma 4.2's conservation covers).
AFFIRMATIVE_KINDS = (PROMISE, ACCEPTED)

#: Proposer message kinds.
PREPARE = "prepare"
PROPOSE = "propose"


@dataclass(frozen=True)
class LeaderPart:
    """Leader-election flood: the largest id seen (Algorithm 2)."""

    leader: int

    def id_footprint(self) -> int:
        return 1


@dataclass(frozen=True)
class ChangePart:
    """Change-service flood (Algorithm 3).

    ``stamp`` is ``(timestamp, origin id)``; the id breaks timestamp
    ties so change events are totally ordered.
    """

    stamp: Tuple[float, int]

    def id_footprint(self) -> int:
        return 1


@dataclass(frozen=True)
class SearchPart:
    """Tree-building Bellman-Ford step (Algorithm 4).

    ``root`` identifies the tree; ``hops`` is the advertised distance;
    ``sender`` is the broadcasting node, which receivers adopt as their
    ``parent[root]`` when ``hops`` improves on their current distance.
    """

    root: int
    hops: int
    sender: int

    def id_footprint(self) -> int:
        return 2


@dataclass(frozen=True)
class ProposerPart:
    """A flooded proposer message: prepare or propose.

    ``value`` is carried only by propose messages.
    """

    kind: str  # PREPARE or PROPOSE
    number: ProposalNumber
    value: Optional[int] = None

    def id_footprint(self) -> int:
        return 1

    def __post_init__(self) -> None:
        if self.kind not in (PREPARE, PROPOSE):
            raise ValueError(f"bad proposer message kind {self.kind!r}")
        if self.kind == PROPOSE and self.value is None:
            raise ValueError("propose messages must carry a value")


@dataclass(frozen=True)
class ResponsePart:
    """An (aggregated) acceptor response routed up the proposer's tree.

    The broadcast is overheard by all neighbors but processed only by
    ``dest`` -- the sender's current ``parent[proposer]`` -- emulating
    unicast over the broadcast primitive as described in Section 4.2.1.

    ``count`` aggregates that many identical responses (positive or
    negative) to the proposition ``(proposer, kind-family, number)``.
    ``prior`` is the highest-numbered previously-accepted proposal
    among the aggregated promises (``(number, value)`` or ``None``);
    ``committed`` is the highest proposal number any aggregated
    rejection is committed to.
    """

    dest: int
    proposer: int
    kind: str
    number: ProposalNumber
    count: int
    prior: Optional[Tuple[ProposalNumber, int]] = None
    committed: Optional[ProposalNumber] = None

    def id_footprint(self) -> int:
        footprint = 3  # dest, proposer, number id
        if self.prior is not None:
            footprint += 1
        if self.committed is not None:
            footprint += 1
        return footprint

    def __post_init__(self) -> None:
        if self.kind not in (PROMISE, REJECT_PREPARE, ACCEPTED,
                             REJECT_PROPOSE):
            raise ValueError(f"bad response kind {self.kind!r}")
        if self.count < 1:
            raise ValueError("response count must be positive")


@dataclass(frozen=True)
class DecidePart:
    """Flooded decision announcement."""

    value: int

    def id_footprint(self) -> int:
        return 0


@dataclass(frozen=True)
class WMessage:
    """One physical broadcast: at most one part per service queue."""

    parts: Tuple[object, ...]

    def id_footprint(self) -> int:
        return sum(part.id_footprint() for part in self.parts)

    def __iter__(self):
        return iter(self.parts)


def proposition_key(proposer: int, kind: str,
                    number: ProposalNumber) -> tuple:
    """Canonical key for a *proposition* (Section 4.2.2).

    Responses to a prepare (promise / reject_prepare) share one
    proposition; responses to a propose (accepted / reject_propose)
    share another.
    """
    family = PREPARE if kind in (PROMISE, REJECT_PREPARE, PREPARE) \
        else PROPOSE
    return (proposer, family, number)
