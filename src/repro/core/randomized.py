"""Randomized consensus: circumventing Theorem 3.2 with coin flips.

The paper's Theorem 3.2 proves *deterministic* consensus impossible
with one crash failure and names randomization as the natural way out
(Section 5, future work #3). This module adapts Ben-Or's classic
randomized binary consensus to the abstract MAC layer, for single hop
networks with known ``n`` and up to ``f < n/2`` crash failures:

Round ``r`` (all messages ride the acknowledged broadcast primitive):

1. **Report.** Broadcast ``(report, r, v)``; wait until ``n - f``
   round-``r`` reports arrived (own included). If more than ``n/2``
   carry the same value ``w``, propose ``w``; else propose ``None``.
2. **Propose.** Broadcast ``(propose, r, w-or-None)``; wait for
   ``n - f`` round-``r`` proposals. If ``f + 1`` or more propose the
   same ``w``: *decide* ``w`` (some nodes may need one more round to
   catch up -- deciders announce with a decide flood). Else if at
   least one proposal carries ``w``: adopt ``v = w``. Else flip a
   fair coin for ``v``. Proceed to round ``r + 1``.

Agreement and validity are deterministic; termination holds with
probability 1 (expected exponential rounds in the worst adversarial
case, constant rounds against non-adaptive schedulers like the ones
simulated here). The E10 experiment pits this against Two-Phase
Consensus under the *same* crash schedules that deadlock the latter.

The coin is a seeded per-node PRNG, so whole executions stay
reproducible: simulator determinism is preserved for a fixed
``(scheduler seed, coin seed)`` pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from .base import ConsensusProcess

#: Message phases.
REPORT = "report"
PROPOSE = "propose"
DECIDE = "decide"


@dataclass(frozen=True)
class BenOrMessage:
    """One Ben-Or protocol message.

    ``value`` is 0/1 for reports, 0/1/None for proposals, and the
    decided value for decide announcements.
    """

    phase: str
    round_no: int
    sender: int
    value: Optional[int]

    def id_footprint(self) -> int:
        return 1


class BenOrConsensus(ConsensusProcess):
    """Ben-Or randomized binary consensus over the abstract MAC layer.

    Parameters
    ----------
    uid:
        Unique node id.
    initial_value:
        Binary input.
    n:
        Number of participants (single hop network assumed).
    f:
        Crash resilience; requires ``f < n / 2``. The node waits for
        ``n - f`` messages per phase, so more than ``f`` actual
        crashes may block it (as in the original protocol).
    seed:
        Coin seed; defaults to ``uid`` for reproducibility.
    max_rounds:
        Safety valve for simulations (raises no error; the node just
        keeps its last value and stops progressing). ``None`` means
        unbounded.
    """

    def __init__(self, uid: int, initial_value: int, n: int, f: int,
                 seed: Optional[int] = None,
                 max_rounds: Optional[int] = None) -> None:
        super().__init__(uid=uid, initial_value=initial_value)
        if n < 1:
            raise ValueError("n must be positive")
        if f < 0 or 2 * f >= n:
            raise ValueError("Ben-Or requires 0 <= f < n/2")
        self.n = n
        self.f = f
        self.quorum = n - f
        self.majority_threshold = n // 2 + 1
        self.decide_threshold = f + 1
        self.value = initial_value
        self.round_no = 1
        self.phase = REPORT
        self._rng = random.Random(uid if seed is None else seed)
        self.max_rounds = max_rounds

        # (phase, round) -> {sender: value}; retained across rounds so
        # late messages from slow nodes still count.
        self._inbox: Dict[Tuple[str, int], Dict[int, Optional[int]]] = {}
        self._outbox: list = []
        self._announced = False
        self.rounds_executed = 0

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._enter_report()
        # Degenerate quorums (n - f == 1) are satisfiable by the
        # node's own messages alone; check before any reception.
        self._check_progress()
        self._pump()

    def on_receive(self, message: Any) -> None:
        if not isinstance(message, BenOrMessage):
            return
        if message.phase == DECIDE:
            self._on_decide_announcement(message.value)
            return
        slot = self._inbox.setdefault(
            (message.phase, message.round_no), {})
        slot.setdefault(message.sender, message.value)
        self._check_progress()

    def on_ack(self) -> None:
        self._pump()

    # ------------------------------------------------------------------
    # Protocol phases
    # ------------------------------------------------------------------
    def _enter_report(self) -> None:
        self.phase = REPORT
        message = BenOrMessage(phase=REPORT, round_no=self.round_no,
                               sender=self.uid, value=self.value)
        self._record_own(message)
        self._outbox.append(message)

    def _enter_propose(self, proposal: Optional[int]) -> None:
        self.phase = PROPOSE
        message = BenOrMessage(phase=PROPOSE, round_no=self.round_no,
                               sender=self.uid, value=proposal)
        self._record_own(message)
        self._outbox.append(message)

    def _record_own(self, message: BenOrMessage) -> None:
        slot = self._inbox.setdefault(
            (message.phase, message.round_no), {})
        slot[self.uid] = message.value

    def _check_progress(self) -> None:
        if self.decided and self._announced:
            return
        advanced = True
        while advanced and not self.decided:
            advanced = False
            slot = self._inbox.get((self.phase, self.round_no), {})
            if len(slot) < self.quorum:
                break
            if self.phase == REPORT:
                proposal = self._evaluate_reports(slot)
                self._enter_propose(proposal)
                advanced = True
            else:
                advanced = self._evaluate_proposals(slot)
        self._pump()

    def _evaluate_reports(self, slot: Dict[int, Optional[int]]
                          ) -> Optional[int]:
        counts = self._tally(slot)
        for value, count in counts.items():
            if value is not None and count >= self.majority_threshold:
                return value
        return None

    def _evaluate_proposals(self, slot: Dict[int, Optional[int]]
                            ) -> bool:
        counts = self._tally(slot)
        best_value, best_count = None, 0
        for value, count in counts.items():
            if value is not None and count > best_count:
                best_value, best_count = value, count
        if best_value is not None and best_count >= self.decide_threshold:
            self._decide_and_announce(best_value)
            return False
        if best_value is not None:
            self.value = best_value
        else:
            self.value = self._rng.randint(0, 1)
        self.rounds_executed += 1
        if (self.max_rounds is not None
                and self.round_no >= self.max_rounds):
            return False
        self.round_no += 1
        self._enter_report()
        return True

    @staticmethod
    def _tally(slot: Dict[int, Optional[int]]
               ) -> Dict[Optional[int], int]:
        counts: Dict[Optional[int], int] = {}
        for value in slot.values():
            counts[value] = counts.get(value, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Decision announcement
    # ------------------------------------------------------------------
    def _decide_and_announce(self, value: int) -> None:
        if not self.decided:
            self.decide(value)
        if not self._announced:
            self._announced = True
            self._outbox.append(BenOrMessage(
                phase=DECIDE, round_no=self.round_no,
                sender=self.uid, value=value))

    def _on_decide_announcement(self, value: int) -> None:
        if not self.decided:
            self.decide(value)
        if not self._announced:
            self._announced = True
            self._outbox.append(BenOrMessage(
                phase=DECIDE, round_no=self.round_no,
                sender=self.uid, value=value))
        self._pump()

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self.crashed or self.ack_pending:
            return
        if self._outbox:
            self.broadcast(self._outbox.pop(0))

    def state_fingerprint(self) -> Tuple:
        return (self.round_no, self.phase, self.value, self.decided,
                self.decision)
