"""GatherAll: the paper's "simply gather all values" strawman.

Section 4.2 notes that with unique ids, knowledge of ``n`` and no crash
failures, one could "simply gather all values at all nodes". This
module implements that baseline: every node floods every ``(id, value)``
pair it knows, one pair per message (respecting the O(1)-ids bound),
and decides the value of the smallest id once it holds all ``n`` pairs.

Correct, but slow: at a bottleneck node, ``Theta(n)`` distinct pairs
must be forwarded one message at a time, giving ``Theta(n * F_ack)``
executions -- the comparison point for wPAXOS's ``O(D * F_ack)``
aggregation trees (experiment E3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..base import ConsensusProcess


@dataclass(frozen=True)
class PairMessage:
    """One flooded ``(id, value)`` pair."""

    node_id: int
    value: int

    def id_footprint(self) -> int:
        return 1


class GatherAllConsensus(ConsensusProcess):
    """Flood all pairs; decide the minimum id's value when complete.

    Requires unique ids and knowledge of ``n`` -- the same knowledge
    wPAXOS needs -- making the E3 comparison apples-to-apples.
    """

    def __init__(self, uid: int, initial_value: int, n: int, *,
                 allow_arbitrary_values: bool = False) -> None:
        super().__init__(uid=uid, initial_value=initial_value,
                         allow_arbitrary_values=allow_arbitrary_values)
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self.known: Dict[int, int] = {uid: initial_value}
        self.outbox: List[PairMessage] = [
            PairMessage(node_id=uid, value=initial_value)]

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._maybe_decide()
        self._pump()

    def on_receive(self, message: Any) -> None:
        if not isinstance(message, PairMessage):
            return
        if message.node_id not in self.known:
            self.known[message.node_id] = message.value
            self.outbox.append(message)
            self._maybe_decide()
            self._pump()

    def on_ack(self) -> None:
        self._pump()

    # ------------------------------------------------------------------
    def _maybe_decide(self) -> None:
        if not self.decided and len(self.known) == self.n:
            self.decide(self.known[min(self.known)])

    def _pump(self) -> None:
        # Keep forwarding after deciding: neighbors may still be
        # missing pairs that only route through us.
        if self.outbox and not self.ack_pending and not self.crashed:
            self.broadcast(self.outbox.pop(0))

    def state_fingerprint(self) -> Tuple:
        return (frozenset(self.known.items()), self.decided, self.decision)
