"""Baseline consensus algorithms the paper compares against."""

from .gatherall import GatherAllConsensus, PairMessage
from .paxos_flood import FloodedResponse, FloodMessage, PaxosFloodNode

__all__ = [
    "GatherAllConsensus",
    "PairMessage",
    "PaxosFloodNode",
    "FloodMessage",
    "FloodedResponse",
]
