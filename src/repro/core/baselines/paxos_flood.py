"""Flooding PAXOS: the ``O(n * F_ack)`` baseline of Section 4.2.

The paper motivates wPAXOS's tree aggregation by observing that PAXOS
logic combined with *basic flooding* costs ``O(n * F_ack)``: acceptor
responses carry acceptor identities, messages hold O(1) ids, so a
bottleneck node must forward ``Theta(n)`` individual responses.

This module implements exactly that combination: max-id leader
election (flooded), prepare/propose messages (flooded), and acceptor
responses flooded network-wide one per message, with the proposer
counting *distinct acceptor ids*. No trees, no aggregation, no change
service -- proposal generation is triggered by leadership beliefs only,
which suffices here because all initial proposals share tag 1 and the
maximum id wins every comparison (see the liveness note below).

Liveness note: every node initially believes itself leader and proposes
``(1, id)``; acceptors promise the lexicographically largest number
they have seen, so the true maximum id's proposal ``(1, max_id)``
dominates every competing ``(1, id)`` and is never rejected. The
eventual leader therefore decides without ever needing a retry, and
rejection handling (retry with a larger tag while still leader) exists
only as a safety net.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..base import ConsensusProcess
from ..wpaxos.acceptor import AcceptorState
from ..wpaxos.messages import (DecidePart, LeaderPart, PREPARE, PROPOSE,
                               ProposalNumber, ProposerPart)


@dataclass(frozen=True)
class FloodedResponse:
    """An individual acceptor response, flooded with its identity."""

    acceptor: int
    proposer: int
    kind: str  # "promise" | "reject_prepare" | "accepted" | "reject_propose"
    number: ProposalNumber
    prior: Optional[Tuple[ProposalNumber, int]] = None
    committed: Optional[ProposalNumber] = None

    def id_footprint(self) -> int:
        footprint = 3
        if self.prior is not None:
            footprint += 1
        if self.committed is not None:
            footprint += 1
        return footprint


@dataclass(frozen=True)
class FloodMessage:
    """One physical broadcast of the flooding baseline."""

    parts: Tuple[object, ...]

    def id_footprint(self) -> int:
        return sum(part.id_footprint() for part in self.parts)

    def __iter__(self):
        return iter(self.parts)


class PaxosFloodNode(ConsensusProcess):
    """PAXOS over naive flooding (the E3 baseline)."""

    def __init__(self, uid: int, initial_value: int, n: int) -> None:
        super().__init__(uid=uid, initial_value=initial_value)
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self.majority = n // 2 + 1

        self.leader = uid
        self.leader_queue: List[LeaderPart] = [LeaderPart(leader=uid)]
        self.acceptor = AcceptorState(uid)
        self.proposer_queue: List[ProposerPart] = []
        self.response_queue: List[FloodedResponse] = []
        self.decide_queue: List[DecidePart] = []
        self._seen_proposer: Set[tuple] = set()
        self._seen_responses: Set[tuple] = set()
        self._decide_flooded = False

        # Proposer bookkeeping (counts distinct acceptor ids).
        self.max_tag_seen = 0
        self.active_number: Optional[ProposalNumber] = None
        self.stage: Optional[str] = None
        self.proposal_value: Optional[int] = None
        self.promisers: Set[int] = set()
        self.rejecters: Set[int] = set()
        self.accepters: Set[int] = set()
        self.best_prior: Optional[Tuple[ProposalNumber, int]] = None
        self.proposals_generated = 0

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._generate_proposal()
        self._pump()

    def on_receive(self, message: Any) -> None:
        if not isinstance(message, FloodMessage):
            return
        for part in message:
            if isinstance(part, LeaderPart):
                self._handle_leader(part)
            elif isinstance(part, ProposerPart):
                self._handle_proposer_part(part)
            elif isinstance(part, FloodedResponse):
                self._handle_response(part)
            elif isinstance(part, DecidePart):
                self._handle_decide(part)
        self._pump()

    def on_ack(self) -> None:
        self._pump()

    # ------------------------------------------------------------------
    # Leader election (flooded max id)
    # ------------------------------------------------------------------
    def _handle_leader(self, part: LeaderPart) -> None:
        if part.leader > self.leader:
            self.leader = part.leader
            self.leader_queue = [part]
            if self.stage is not None:
                self.stage = None  # abdicate
            self.proposer_queue = [p for p in self.proposer_queue
                                   if p.number[1] == self.leader]
            self.response_queue = [r for r in self.response_queue
                                   if r.proposer == self.leader]

    # ------------------------------------------------------------------
    # Proposer-message flooding
    # ------------------------------------------------------------------
    def _handle_proposer_part(self, part: ProposerPart) -> None:
        key = (part.kind, part.number)
        if key in self._seen_proposer:
            return
        self._seen_proposer.add(key)
        self._observe(part.number)
        proposer_id = part.number[1]
        if proposer_id == self.leader:
            self.proposer_queue.append(part)
        if part.kind == PREPARE:
            seed = self.acceptor.on_prepare(part.number, proposer_id)
        else:
            seed = self.acceptor.on_propose(part.number, part.value,
                                            proposer_id)
        response = FloodedResponse(
            acceptor=self.uid, proposer=proposer_id, kind=seed.kind,
            number=seed.number, prior=seed.prior, committed=seed.committed)
        self._handle_response(response)

    # ------------------------------------------------------------------
    # Response flooding and counting
    # ------------------------------------------------------------------
    def _handle_response(self, part: FloodedResponse) -> None:
        key = (part.acceptor, part.kind, part.number)
        if key in self._seen_responses:
            return
        self._seen_responses.add(key)
        self._observe(part.number)
        self._observe(part.committed)
        if part.prior is not None:
            self._observe(part.prior[0])
        if part.proposer == self.uid:
            self._tally(part)
        elif part.proposer == self.leader:
            self.response_queue.append(part)

    def _tally(self, part: FloodedResponse) -> None:
        if self.decided or part.number != self.active_number:
            return
        if self.stage == PREPARE and part.kind == "promise":
            self.promisers.add(part.acceptor)
            if part.prior is not None and (
                    self.best_prior is None
                    or part.prior[0] > self.best_prior[0]):
                self.best_prior = part.prior
            if len(self.promisers) >= self.majority:
                self._begin_propose()
        elif self.stage == PREPARE and part.kind == "reject_prepare":
            self.rejecters.add(part.acceptor)
            if len(self.rejecters) >= self.majority:
                self._retry()
        elif self.stage == PROPOSE and part.kind == "accepted":
            self.accepters.add(part.acceptor)
            if len(self.accepters) >= self.majority:
                self.stage = None
                self.decide(self.proposal_value)
                self._flood_decision(self.proposal_value)
        elif self.stage == PROPOSE and part.kind == "reject_propose":
            self.rejecters.add(part.acceptor)
            if len(self.rejecters) >= self.majority:
                self._retry()

    # ------------------------------------------------------------------
    # Proposer control
    # ------------------------------------------------------------------
    def _generate_proposal(self) -> None:
        if self.decided or self.leader != self.uid:
            return
        tag = self.max_tag_seen + 1
        self.max_tag_seen = tag
        self.active_number = (tag, self.uid)
        self.stage = PREPARE
        self.proposal_value = None
        self.promisers = set()
        self.rejecters = set()
        self.accepters = set()
        self.best_prior = None
        self.proposals_generated += 1
        self._handle_proposer_part(
            ProposerPart(kind=PREPARE, number=self.active_number))

    def _begin_propose(self) -> None:
        self.stage = PROPOSE
        self.rejecters = set()
        if self.best_prior is not None:
            self.proposal_value = self.best_prior[1]
        else:
            self.proposal_value = self.initial_value
        self._handle_proposer_part(
            ProposerPart(kind=PROPOSE, number=self.active_number,
                         value=self.proposal_value))

    def _retry(self) -> None:
        if self.leader == self.uid and not self.decided:
            self._generate_proposal()
        else:
            self.stage = None

    def _observe(self, number: Optional[ProposalNumber]) -> None:
        if number is not None and number[0] > self.max_tag_seen:
            self.max_tag_seen = number[0]

    # ------------------------------------------------------------------
    # Decision flooding
    # ------------------------------------------------------------------
    def _handle_decide(self, part: DecidePart) -> None:
        if not self.decided:
            self.decide(part.value)
        self._flood_decision(part.value)

    def _flood_decision(self, value: int) -> None:
        if not self._decide_flooded:
            self._decide_flooded = True
            self.decide_queue.append(DecidePart(value=value))

    # ------------------------------------------------------------------
    # Broadcast multiplexer (one part per queue, like Algorithm 5)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self.crashed or self.ack_pending:
            return
        parts: List[object] = []
        if self.decide_queue:
            parts.append(self.decide_queue.pop(0))
        if not self.decided:
            if self.leader_queue:
                parts.append(self.leader_queue.pop(0))
            if self.proposer_queue:
                parts.append(self.proposer_queue.pop(0))
            if self.response_queue:
                parts.append(self.response_queue.pop(0))
        if parts:
            self.broadcast(FloodMessage(parts=tuple(parts)))

    def state_fingerprint(self) -> Tuple:
        return (self.leader, self.stage, self.decided, self.decision)
