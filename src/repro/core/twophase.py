"""Two-Phase Consensus (Algorithm 1 of the paper).

Solves binary consensus in *single hop* networks in ``O(F_ack)`` time
with unique ids but **no knowledge of n or the participants** --
Theorem 4.1, and the separation from the asynchronous broadcast model
of Abboud et al. where this is impossible.

Operation (following the paper):

* **Phase 1.** Broadcast ``(phase1, id, v)``; all messages received
  until the ack are collected in ``R1``. At the ack, set
  ``status = bivalent`` if ``R1`` holds a phase-1 message for the other
  value or a bivalent phase-2 message, else ``status = decided(v)``.
* **Phase 2.** Broadcast ``(phase2, id, status)``; messages received
  until the ack are collected in ``R2``. A ``decided`` node decides its
  initial value right after the ack. A ``bivalent`` node builds the
  *witness set* ``W`` (every id heard so far), waits until it holds a
  phase-2 message from every witness, then decides 0 if any witness
  reported ``decided(0)`` and 1 otherwise.

**Pseudocode erratum (reproduction finding).** Line 23 of the paper's
Algorithm 1 checks ``(phase2, *, decided(0)) in R2`` -- but a witness's
phase-2 message that arrived *during the receiver's phase 1* lives in
``R1``, and the witness-wait loop (line 20) correctly consults
``R1 union R2``. Under a scheduler that delivers ``u``'s phase-2
``decided(0)`` to ``v`` before ``v``'s phase-1 ack, the literal
pseudocode decides 1 at ``v`` while ``u`` decides 0 -- an agreement
violation. The proof of Theorem 4.1 ("it will therefore see that u has
a status of decided(0)") makes the intent clear: the decision check
must range over ``R1 union R2``. We implement the corrected check by
default and keep the literal behaviour behind
``literal_r2_check=True`` so the regression test can demonstrate the
erratum (see ``tests/test_twophase_erratum.py`` and EXPERIMENTS.md E1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Union

from .base import ConsensusProcess

#: Status values carried by phase-2 messages.
BIVALENT = "bivalent"


@dataclass(frozen=True)
class Phase1Message:
    """``(phase 1, id_u, v)`` -- the sender's id and initial value."""

    sender: int
    value: int

    def id_footprint(self) -> int:
        return 1


@dataclass(frozen=True)
class Phase2Message:
    """``(phase 2, id_u, status)``.

    ``status`` is either the string ``"bivalent"`` or the tuple
    ``("decided", v)``.
    """

    sender: int
    status: Union[str, tuple]

    def id_footprint(self) -> int:
        return 1

    @property
    def is_bivalent(self) -> bool:
        return self.status == BIVALENT

    def decided_value(self) -> Optional[int]:
        """The decided value this message reports, if any."""
        if isinstance(self.status, tuple) and self.status[0] == "decided":
            return self.status[1]
        return None


class TwoPhaseConsensus(ConsensusProcess):
    """Algorithm 1: two-phase consensus for single hop networks.

    Parameters
    ----------
    uid:
        Unique node id (required by the algorithm).
    initial_value:
        Binary consensus input.
    literal_r2_check:
        Reproduce the paper's literal line 23 (decision check over
        ``R2`` only). Unsafe -- exists to demonstrate the pseudocode
        erratum; see the module docstring.
    early_decide:
        Decide immediately after the phase-2 ack when status is
        ``decided`` (the prose behaviour, 2 broadcasts on the fast
        path). With ``False``, decided nodes also run the witness wait;
        both variants are correct and tested.
    """

    PHASE_ONE = "phase1"
    PHASE_TWO = "phase2"
    WITNESS_WAIT = "witness"
    DONE = "done"

    def __init__(self, uid: int, initial_value: int, *,
                 literal_r2_check: bool = False,
                 early_decide: bool = True) -> None:
        super().__init__(uid=uid, initial_value=initial_value)
        if uid is None:
            raise ValueError("TwoPhaseConsensus requires a unique id")
        self.literal_r2_check = literal_r2_check
        self.early_decide = early_decide
        self.phase = self.PHASE_ONE
        self.status: Union[str, tuple, None] = None
        self.r1: set = set()
        self.r2: set = set()
        self.witnesses: FrozenSet[int] = frozenset()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        own = Phase1Message(sender=self.uid, value=self.initial_value)
        self.r1.add(own)
        self.broadcast(own)

    def on_receive(self, message: Any) -> None:
        if self.phase == self.PHASE_ONE:
            self.r1.add(message)
        elif self.phase == self.PHASE_TWO:
            self.r2.add(message)
        elif self.phase == self.WITNESS_WAIT:
            if isinstance(message, Phase2Message):
                self.r2.add(message)
                self._try_finish_witness_wait()
        # after DONE, messages are ignored

    def on_ack(self) -> None:
        if self.phase == self.PHASE_ONE:
            self._finish_phase_one()
        elif self.phase == self.PHASE_TWO:
            self._finish_phase_two()

    # ------------------------------------------------------------------
    # Phase transitions
    # ------------------------------------------------------------------
    def _finish_phase_one(self) -> None:
        other = 1 - self.initial_value
        saw_other = any(isinstance(m, Phase1Message) and m.value == other
                        for m in self.r1)
        saw_bivalent = any(isinstance(m, Phase2Message) and m.is_bivalent
                           for m in self.r1)
        if saw_other or saw_bivalent:
            self.status = BIVALENT
        else:
            self.status = ("decided", self.initial_value)
        self.phase = self.PHASE_TWO
        own = Phase2Message(sender=self.uid, status=self.status)
        self.r2.add(own)
        self.broadcast(own)

    def _finish_phase_two(self) -> None:
        if self.early_decide and self.status != BIVALENT:
            self.phase = self.DONE
            self.decide(self.status[1])
            return
        self.witnesses = frozenset(
            m.sender for m in self.r1 | self.r2
            if isinstance(m, (Phase1Message, Phase2Message)))
        self.phase = self.WITNESS_WAIT
        self._try_finish_witness_wait()

    def _try_finish_witness_wait(self) -> None:
        heard = self.r1 | self.r2
        phase2_senders = {m.sender for m in heard
                          if isinstance(m, Phase2Message)}
        if not self.witnesses <= phase2_senders:
            return
        pool = self.r2 if self.literal_r2_check else heard
        decided_zero = any(isinstance(m, Phase2Message)
                           and m.decided_value() == 0
                           for m in pool)
        self.phase = self.DONE
        self.decide(0 if decided_zero else 1)

    # ------------------------------------------------------------------
    def state_fingerprint(self) -> Any:
        return (self.phase, self.status, frozenset(self.r1),
                frozenset(self.r2), self.witnesses, self.decided,
                self.decision)
