"""Shared experiment-report plumbing.

Every experiment driver (``e1_single_hop`` ... ``e8_ablations``)
produces an :class:`ExperimentReport`: a titled table plus free-text
conclusions. ``python -m repro.experiments`` runs them all and prints
the tables EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from ..analysis.tables import format_markdown_table, format_table


@dataclass
class ExperimentReport:
    """One experiment's regenerated table."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    conclusions: List[str] = field(default_factory=list)
    passed: bool = True

    def add_row(self, *values: Any) -> None:
        self.rows.append(list(values))

    def conclude(self, text: str, ok: bool = True) -> None:
        self.conclusions.append(("[ok] " if ok else "[FAIL] ") + text)
        if not ok:
            self.passed = False

    def render(self) -> str:
        parts = [
            f"{self.experiment_id}: {self.title}",
            f"Paper claim: {self.paper_claim}",
            "",
            format_table(self.headers, self.rows),
            "",
        ]
        parts.extend(self.conclusions)
        status = "PASSED" if self.passed else "FAILED"
        parts.append(f"=> {self.experiment_id} {status}")
        return "\n".join(parts)

    def render_markdown(self) -> str:
        parts = [
            f"### {self.experiment_id}: {self.title}",
            "",
            f"*Paper claim:* {self.paper_claim}",
            "",
            format_markdown_table(self.headers, self.rows),
            "",
        ]
        parts.extend(f"- {c}" for c in self.conclusions)
        return "\n".join(parts)
