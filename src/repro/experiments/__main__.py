"""Run every experiment and print the regenerated tables.

Usage::

    python -m repro.experiments            # all, ASCII tables
    python -m repro.experiments --markdown # markdown (EXPERIMENTS.md)
    python -m repro.experiments E3 E4      # a subset
"""

from __future__ import annotations

import sys
import time

from . import ALL_EXPERIMENTS


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    markdown = "--markdown" in argv
    argv = [a for a in argv if not a.startswith("--")]
    wanted = {a.upper() for a in argv} or None

    failures = []
    for exp_id, module in ALL_EXPERIMENTS:
        if wanted is not None and exp_id not in wanted:
            continue
        start = time.time()
        report = module.run()
        elapsed = time.time() - start
        text = (report.render_markdown() if markdown
                else report.render())
        print(text)
        print(f"({exp_id} regenerated in {elapsed:.1f}s)")
        print()
        if not report.passed:
            failures.append(exp_id)
    if failures:
        print(f"FAILED experiments: {failures}")
        return 1
    print("All experiments passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
