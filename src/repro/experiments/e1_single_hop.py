"""E1 -- Theorem 4.1: Two-Phase Consensus decides in O(F_ack).

Regenerates two series:

* decision time vs ``n`` at fixed ``F_ack`` (the claim: *flat* -- the
  algorithm needs no knowledge of ``n`` and its time does not depend
  on it);
* decision time vs ``F_ack`` at fixed ``n`` (the claim: linear with
  slope <= 2 under round-structured schedulers -- two broadcast
  cycles).

Also exercises the witness path with adversarial (staggered) and
random schedulers, and records the pseudocode-erratum regression
(module docstring of :mod:`repro.core.twophase`).

All series are declarative scenario grids: one base
:class:`~repro.scenario.Scenario` per claim, swept along dotted-path
axes (``topology.n``, ``scheduler.f_ack``, ``scheduler.seed``).
"""

from __future__ import annotations

from ..analysis import linear_fit
from ..scenario import AlgorithmSpec, Scenario, SchedulerSpec, TopologySpec
from .common import ExperimentReport

N_SWEEP = (1, 2, 3, 5, 8, 13, 21, 34, 55)
F_SWEEP = (0.5, 1.0, 2.0, 4.0, 8.0)
RANDOM_SEEDS = (0, 1, 2, 3, 4)

#: Two-Phase with label uids (``uid_base=0``: node label == uid on
#: cliques, the construction this experiment has always used).
BASE = Scenario(
    algorithm=AlgorithmSpec("two-phase", uid_base=0),
    topology=TopologySpec("clique", n=10),
    scheduler=SchedulerSpec("synchronous", f_ack=1.0))

#: Witness-path bases, shared by ``run()`` and ``manifest()`` so the
#: driver and its manifest address identical cache entries.
RANDOM_BASE = BASE.override(
    {"scheduler": SchedulerSpec("random", f_ack=2.0),
     "label": "clique(12)"})
STAGGERED = BASE.override(
    {"topology.n": 12,
     "scheduler": SchedulerSpec("staggered", step=0.25, max_degree=16),
     "label": "clique(12)"})


def manifest():
    """This experiment's row blocks as a scenario-native manifest."""
    from ..analysis.manifests import ExperimentManifest, ManifestBlock
    return ExperimentManifest(
        experiment="E1",
        title="Two-Phase Consensus in single hop networks",
        blocks=[
            ManifestBlock("time-vs-n", BASE,
                          axes={"topology.n": list(N_SWEEP)}),
            ManifestBlock("time-vs-fack", BASE,
                          axes={"scheduler.f_ack": list(F_SWEEP)}),
            ManifestBlock("random-scheduler", RANDOM_BASE,
                          axes={"topology.n": [12],
                                "scheduler.seed": list(RANDOM_SEEDS)}),
            ManifestBlock("staggered", STAGGERED,
                          note="adversarial staggered-start witness"),
        ])


def run(*, n_sweep=N_SWEEP, f_sweep=F_SWEEP,
        random_seeds=RANDOM_SEEDS, cache=None,
        workers=None) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E1",
        title="Two-Phase Consensus in single hop networks",
        paper_claim=("Theorem 4.1: solves consensus in O(F_ack) time "
                     "with unique ids, no knowledge of n"),
        headers=["scheduler", "n", "F_ack", "correct",
                 "decision time", "time/F_ack"],
    )

    # --- time vs n (fixed F_ack = 1) ---------------------------------
    n_series = BASE.grid({"topology.n": list(n_sweep)}).run(
        name="two-phase", parallel=False, cache=cache)
    times_vs_n = []
    for n, point in zip(n_sweep, n_series.points):
        metrics = point.metrics
        times_vs_n.append((n, metrics.last_decision))
        report.add_row("synchronous", n, 1.0, metrics.correct,
                       metrics.last_decision, metrics.normalized_time)
        if not metrics.correct:
            report.conclude(f"n={n} failed", ok=False)
    if len(times_vs_n) >= 2:
        slope, _ = linear_fit([float(n) for n, _ in times_vs_n],
                              [t for _, t in times_vs_n])
        report.conclude(
            f"time vs n slope = {slope:.4f} (claim: ~0, no n "
            f"dependence)", ok=abs(slope) < 0.05)

    # --- time vs F_ack (fixed n = 10) ---------------------------------
    f_series = BASE.grid({"scheduler.f_ack": list(f_sweep)}).run(
        name="two-phase", parallel=False, cache=cache)
    times_vs_f = []
    for f_ack, point in zip(f_sweep, f_series.points):
        metrics = point.metrics
        times_vs_f.append((f_ack, metrics.last_decision))
        report.add_row("synchronous", 10, f_ack, metrics.correct,
                       metrics.last_decision, metrics.normalized_time)
    slope, intercept = linear_fit([f for f, _ in times_vs_f],
                                  [t for _, t in times_vs_f])
    report.conclude(
        f"time vs F_ack: slope={slope:.2f}, intercept={intercept:.2f} "
        f"(claim: linear, slope <= 2)",
        ok=slope <= 2.0 + 1e-9)

    # --- adversarial and random schedulers ----------------------------
    # The seed-replicated grid fans out across workers: one sweep
    # point per (n, seed) key, identical results to the old loop.
    random_series = RANDOM_BASE.grid(
        {"topology.n": [12],
         "scheduler.seed": list(random_seeds)},
    ).run(name="two-phase", cache=cache, workers=workers)
    worst_ratio = 0.0
    for point in random_series.points:
        metrics = point.metrics
        seed = point.key[1]
        worst_ratio = max(worst_ratio, metrics.normalized_time or 0.0)
        if seed == 0:
            report.add_row("random", 12, 2.0, metrics.correct,
                           metrics.last_decision,
                           metrics.normalized_time)
        if not metrics.correct:
            report.conclude(f"random seed {seed} failed", ok=False)
    from ..analysis.cache import cached_run
    metrics = cached_run(STAGGERED, cache)
    report.add_row("staggered", 12, metrics.f_ack, metrics.correct,
                   metrics.last_decision, metrics.normalized_time)
    report.conclude(
        f"correct under random/staggered schedulers; worst observed "
        f"time = {worst_ratio:.2f} x F_ack (O(F_ack) as claimed)",
        ok=metrics.correct and worst_ratio <= 4.0)
    report.conclude(
        "pseudocode erratum: literal line-23 (R2-only) decision check "
        "admits an agreement violation; corrected check (R1 u R2) "
        "used -- see tests/test_twophase.py::TestErratum")
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
