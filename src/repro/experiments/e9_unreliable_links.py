"""E9 -- the dual-graph open question (Section 5, future work #1).

The paper omits unreliable links from its model (strengthening the
lower bounds) and explicitly leaves "consensus in an abstract MAC
layer model that includes unreliable links" open. This experiment
measures what happens when wPAXOS -- unmodified -- runs over a
reliable line augmented with random unreliable chords:

* **Safety is unconditional**: agreement and validity hold at every
  delivery probability, including the adversarial links-die-mid-run
  policy. (Lemma 4.2's conservation argument never assumed link
  reliability; lost responses only lower counts.)
* **Liveness is not**: at intermediate delivery probabilities the
  tree service can adopt parents across unreliable links whose later
  silence swallows acceptor responses, and the run deadlocks. This is
  a *measured* demonstration of why the dual-graph upper bound is
  genuinely open rather than a routine extension.
"""

from __future__ import annotations

from ..core.wpaxos import WPaxosConfig, WPaxosNode
from ..macsim import build_simulation, check_consensus
from ..macsim.schedulers import (AdversarialUnreliableScheduler,
                                 BernoulliUnreliableScheduler,
                                 SynchronousScheduler)
from ..topology import line
from ..topology.standard import unreliable_overlay
from .common import ExperimentReport

PROBS = (0.0, 0.25, 0.5, 0.75, 1.0)
SEEDS = range(5)


def _run_once(graph, overlay, scheduler):
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    values = {v: i % 2 for i, v in enumerate(graph.nodes)}
    sim = build_simulation(
        graph,
        lambda v: WPaxosNode(uid[v], values[v], graph.n,
                             WPaxosConfig()),
        scheduler, unreliable_graph=overlay)
    result = sim.run(max_events=5_000_000, max_time=2_000.0)
    report = check_consensus(result.trace, values)
    return report, result.trace.last_decision_time()


def run(*, probs=PROBS, seeds=SEEDS) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E9",
        title="wPAXOS over unreliable links (dual-graph model)",
        paper_claim=("Section 5 open question: the paper's upper "
                     "bounds are not established for models with "
                     "unreliable links"),
        headers=["policy", "runs", "agreement", "terminated",
                 "mean time (when terminating)"],
    )
    graph = line(12)
    overlay = unreliable_overlay(graph, 0.15, seed=3)

    liveness_ever_lost = False
    for prob in probs:
        agree, finished, times = 0, 0, []
        for seed in seeds:
            scheduler = BernoulliUnreliableScheduler(
                SynchronousScheduler(1.0), prob, seed=seed)
            consensus, last = _run_once(graph, overlay, scheduler)
            agree += consensus.agreement and consensus.validity
            if consensus.termination:
                finished += 1
                times.append(last)
        mean_time = (sum(times) / len(times)) if times else None
        report.add_row(f"bernoulli p={prob}", len(list(seeds)),
                       f"{agree}/{len(list(seeds))}",
                       f"{finished}/{len(list(seeds))}", mean_time)
        if agree != len(list(seeds)):
            report.conclude(f"safety violated at p={prob}", ok=False)
        if finished < len(list(seeds)):
            liveness_ever_lost = True

    # Adversarial policy: links work, then vanish.
    agree, finished = 0, 0
    for cutoff in (5.0, 10.0, 20.0):
        scheduler = AdversarialUnreliableScheduler(
            SynchronousScheduler(1.0), cutoff=cutoff)
        consensus, _ = _run_once(graph, overlay, scheduler)
        agree += consensus.agreement and consensus.validity
        finished += consensus.termination
    report.add_row("adversarial cutoffs 5/10/20", 3, f"{agree}/3",
                   f"{finished}/3", None)
    if agree != 3:
        report.conclude("safety violated under adversarial links",
                        ok=False)
    if finished < 3:
        liveness_ever_lost = True

    report.conclude(
        "agreement and validity held in every run: wPAXOS's safety "
        "argument (Lemma 4.2/4.3) does not depend on link "
        "reliability")
    report.conclude(
        "liveness was lost in at least one configuration: response "
        "routes formed over unreliable links can starve the leader "
        "of responses -- the measured reason the dual-graph upper "
        "bound is an open question, not a routine extension",
        ok=liveness_ever_lost)
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
