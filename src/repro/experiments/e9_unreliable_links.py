"""E9 -- the dual-graph open question (Section 5, future work #1).

The paper omits unreliable links from its model (strengthening the
lower bounds) and explicitly leaves "consensus in an abstract MAC
layer model that includes unreliable links" open. This experiment
measures what happens when wPAXOS -- unmodified -- runs over a
reliable line augmented with random unreliable chords:

* **Safety is unconditional**: agreement and validity hold at every
  delivery probability, including the adversarial links-die-mid-run
  policy. (Lemma 4.2's conservation argument never assumed link
  reliability; lost responses only lower counts.)
* **Liveness is not**: at intermediate delivery probabilities the
  tree service can adopt parents across unreliable links whose later
  silence swallows acceptor responses, and the run deadlocks. This is
  a *measured* demonstration of why the dual-graph upper bound is
  genuinely open rather than a routine extension.

Both policies are scenario grids over one base description (line +
random overlay); the Bernoulli grid sweeps the full
``(scheduler.p, scheduler.seed)`` product across workers and regroups
per probability via :meth:`~repro.analysis.sweeps.SweepResult.by_x`.
"""

from __future__ import annotations

from ..scenario import (AlgorithmSpec, OverlaySpec, Scenario,
                        SchedulerSpec, TopologySpec)
from .common import ExperimentReport

PROBS = (0.0, 0.25, 0.5, 0.75, 1.0)
SEEDS = range(5)
CUTOFFS = (5.0, 10.0, 20.0)

#: Reliable line(12) plus 15%-density unreliable chords; invariant
#: replay is off because deadlocking runs hit the time limit mid-ack.
BASE = Scenario(
    algorithm=AlgorithmSpec("wpaxos"),
    topology=TopologySpec("line", n=12),
    overlay=OverlaySpec("random-overlay", density=0.15, seed=3),
    scheduler=SchedulerSpec(
        "bernoulli-unreliable", p=1.0, seed=0,
        inner=SchedulerSpec("synchronous", f_ack=1.0)),
    label="line(12)+overlay",
    check_invariants=False,
    max_events=5_000_000,
    max_time=2_000.0)

#: Links work, then vanish at a cutoff time; shared by ``run()`` and
#: ``manifest()`` so both address identical cache entries.
ADVERSARIAL_BASE = BASE.override(
    {"scheduler": SchedulerSpec(
        "adversarial-unreliable", cutoff=5.0,
        inner=SchedulerSpec("synchronous", f_ack=1.0))})


def manifest():
    """This experiment's row blocks as a scenario-native manifest."""
    from ..analysis.manifests import ExperimentManifest, ManifestBlock
    return ExperimentManifest(
        experiment="E9",
        title="wPAXOS over unreliable links (dual-graph model)",
        blocks=[
            ManifestBlock("bernoulli", BASE,
                          axes={"scheduler.p": list(PROBS),
                                "scheduler.seed": list(SEEDS)},
                          note="deadlock-prone cells at mid p"),
            ManifestBlock("adversarial", ADVERSARIAL_BASE,
                          axes={"scheduler.cutoff": list(CUTOFFS)}),
        ])


def run(*, probs=PROBS, seeds=SEEDS, cache=None,
        workers=None) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E9",
        title="wPAXOS over unreliable links (dual-graph model)",
        paper_claim=("Section 5 open question: the paper's upper "
                     "bounds are not established for models with "
                     "unreliable links"),
        headers=["policy", "runs", "agreement", "terminated",
                 "mean time (when terminating)"],
    )

    # The full (prob, seed) grid fans out across workers -- every
    # replica is one sweep point, grouped back per probability below.
    bernoulli = BASE.grid({"scheduler.p": list(probs),
                           "scheduler.seed": list(seeds)}).run(
        name="wpaxos-unreliable", cache=cache, workers=workers)

    liveness_ever_lost = False
    total = len(list(seeds))
    for prob, replicas in bernoulli.by_x().items():
        agree = sum(p.metrics.agreement and p.metrics.validity
                    for p in replicas)
        times = [p.metrics.last_decision for p in replicas
                 if p.metrics.termination]
        finished = len(times)
        mean_time = (sum(times) / len(times)) if times else None
        report.add_row(f"bernoulli p={prob}", total,
                       f"{agree}/{total}", f"{finished}/{total}",
                       mean_time)
        if agree != total:
            report.conclude(f"safety violated at p={prob}", ok=False)
        if finished < total:
            liveness_ever_lost = True

    # Adversarial policy: links work, then vanish.
    adversarial = ADVERSARIAL_BASE.grid(
        {"scheduler.cutoff": list(CUTOFFS)},
    ).run(name="wpaxos-unreliable-adv", cache=cache, workers=workers)
    agree = sum(p.metrics.agreement and p.metrics.validity
                for p in adversarial.points)
    finished = sum(p.metrics.termination for p in adversarial.points)
    report.add_row("adversarial cutoffs 5/10/20", 3, f"{agree}/3",
                   f"{finished}/3", None)
    if agree != 3:
        report.conclude("safety violated under adversarial links",
                        ok=False)
    if finished < 3:
        liveness_ever_lost = True

    report.conclude(
        "agreement and validity held in every run: wPAXOS's safety "
        "argument (Lemma 4.2/4.3) does not depend on link "
        "reliability")
    report.conclude(
        "liveness was lost in at least one configuration: response "
        "routes formed over unreliable links can starve the leader "
        "of responses -- the measured reason the dual-graph upper "
        "bound is an open question, not a routine extension",
        ok=liveness_ever_lost)
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
