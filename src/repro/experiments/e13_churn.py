"""E13 -- Consensus under topology churn.

The abstract MAC layer was designed for mobile ad hoc networks, where
links and nodes come and go; this experiment runs the repo's consensus
families over the :mod:`repro.macsim.dynamics` subsystem and measures
how decision latency and the consensus properties respond to churn:

* **Churn rate x algorithm (clique).** Two-Phase, wPAXOS and Ben-Or
  on a clique under :class:`~repro.macsim.dynamics.EdgeChurn` with a
  spanning-tree floor (the network stays connected; completeness does
  not survive). Two-Phase assumes a single-hop topology, so churn is
  precisely its failure mode -- the interesting question is whether it
  fails *safe* (stalls, agreement intact) or unsafe.
* **Churn rate (geometric).** wPAXOS on a random geometric graph
  under edge churn, and under :class:`RandomWaypoint` mobility -- the
  paper's deployment scenario, nodes drifting across the unit square.
* **Node churn.** wPAXOS under leave/rejoin with state reset: rejoined
  nodes lose their protocol state and must be brought back to the
  decision.
* **Churn rate x n (zip-mode grid).** The latency trend as both churn
  and network size grow, using ``Scenario.grid``'s zipped correlated
  ``(n, seed)`` axes.

Every point is a scenario-grid cell executed through
``parallel_sweep``; the ``connectivity`` probe (T-interval
connectivity over the run's topology timeline) rides along in
``RunMetrics.extras``.
"""

from __future__ import annotations

from ..scenario import (AlgorithmSpec, DynamicsSpec, Scenario,
                        SchedulerSpec, TopologySpec)
from .common import ExperimentReport

#: Per-epoch edge churn probabilities swept everywhere.
RATES = (0.0, 0.05, 0.15)

#: The three consensus families of the rate x algorithm block.
ALGORITHMS = ("two-phase", "wpaxos", "ben-or")

CLIQUE_N = 12
GEO_N = 16
GEO_RADIUS = 0.42
SEED = 3
MAX_TIME = 120.0


def _base(algorithm: str, topology: TopologySpec,
          dynamics: DynamicsSpec, label: str) -> Scenario:
    return Scenario(
        algorithm=AlgorithmSpec(algorithm),
        topology=topology,
        scheduler=SchedulerSpec("synchronous", f_ack=1.0),
        dynamics=dynamics,
        seed=SEED,
        max_time=MAX_TIME,
        label=label)


#: Shared block ingredients: ``run()`` and ``manifest()`` build their
#: scenarios from the same helpers, so both address identical cache
#: entries cell for cell.
CHURN0 = DynamicsSpec("edge-churn", rate=0.0, epoch_length=1.0)


def _clique_spec(n: int = CLIQUE_N) -> TopologySpec:
    return TopologySpec("clique", n=n)


def _geo_spec(n: int = GEO_N) -> TopologySpec:
    return TopologySpec("geometric", n=n, radius=GEO_RADIUS, seed=SEED)


def _waypoint_scenario(geo_n: int = GEO_N) -> Scenario:
    return _base(
        "wpaxos", _geo_spec(geo_n),
        DynamicsSpec("random-waypoint", radius=GEO_RADIUS, speed=0.06,
                     epoch_length=1.0),
        f"geometric({geo_n})")


def _node_churn_scenario(clique_n: int = CLIQUE_N) -> Scenario:
    return _base(
        "wpaxos", _clique_spec(clique_n),
        DynamicsSpec("node-churn", leave_rate=0.05, rejoin_rate=0.5,
                     epoch_length=1.0),
        f"clique({clique_n})")


ZIP_NS = (8, 12, 16)
ZIP_SEEDS = (SEED, SEED + 1, SEED + 2)


def manifest():
    """This experiment's row blocks as a scenario-native manifest."""
    from ..analysis.manifests import ExperimentManifest, ManifestBlock
    rate_axis = {"dynamics.rate": list(RATES)}
    blocks = [
        ManifestBlock(f"clique-churn-{algorithm}",
                      _base(algorithm, _clique_spec(), CHURN0,
                            f"clique({CLIQUE_N})"),
                      axes=dict(rate_axis))
        for algorithm in ALGORITHMS
    ]
    blocks.extend([
        ManifestBlock("geometric-churn",
                      _base("wpaxos", _geo_spec(), CHURN0,
                            f"geometric({GEO_N})"),
                      axes=dict(rate_axis)),
        ManifestBlock("random-waypoint", _waypoint_scenario(),
                      note="mobility, not churn: nodes drift"),
        ManifestBlock("node-churn", _node_churn_scenario(),
                      note="leave/rejoin with state reset"),
        ManifestBlock("rate-x-n",
                      _base("wpaxos", _clique_spec(), CHURN0, None),
                      axes=dict(rate_axis),
                      zipped={"topology.n": list(ZIP_NS),
                              "seed": list(ZIP_SEEDS)}),
    ])
    return ExperimentManifest(
        experiment="E13",
        title="Consensus under topology churn and mobility",
        blocks=blocks)


def _row(report: ExperimentReport, m, dynamics_label: str,
         rate) -> None:
    conn = (m.extras or {}).get("connectivity") or {}
    report.add_row(
        m.topology, m.algorithm, dynamics_label, rate,
        m.agreement, m.validity, m.termination,
        m.last_decision, conn.get("topologies"),
        conn.get("max_t_interval"))


def run(*, rates=RATES, algorithms=ALGORITHMS,
        clique_n=CLIQUE_N, geo_n=GEO_N, cache=None,
        workers=None) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E13",
        title="Consensus under topology churn and mobility",
        paper_claim=("the abstract MAC layer targets mobile ad hoc "
                     "networks; algorithms that only assume local "
                     "broadcast + acks should degrade gracefully "
                     "under topology change, while single-hop "
                     "assumptions (Two-Phase) become unsound"),
        headers=["topology", "algorithm", "dynamics", "rate",
                 "agreement", "validity", "termination",
                 "decision time", "topologies", "T-interval"],
    )

    # --- churn rate x algorithm on the clique --------------------------
    clique = _clique_spec(clique_n)
    churn = CHURN0
    safety_ok = True
    zero_rate_ok = True
    decided = 0
    stalled = 0

    def _tally(m) -> None:
        nonlocal safety_ok, decided, stalled
        if not (m.agreement and m.validity):
            safety_ok = False
        if m.termination:
            decided += 1
        else:
            stalled += 1

    for algorithm in algorithms:
        base = _base(algorithm, clique, churn, f"clique({clique_n})")
        series = base.grid({"dynamics.rate": list(rates)}).run(
            name=algorithm, cache=cache, workers=workers)
        for rate, point in zip(rates, series.points):
            m = point.metrics
            _row(report, m, "edge-churn", rate)
            _tally(m)
            if rate == 0.0 and not m.correct:
                zero_rate_ok = False
    report.conclude(
        "zero-churn rows are byte-equivalent static runs: every "
        "algorithm decides correctly at rate 0", ok=zero_rate_ok)

    # --- wPAXOS on a geometric graph: churn and mobility ---------------
    from ..analysis.cache import cached_run
    geometric = _geo_spec(geo_n)
    base = _base("wpaxos", geometric, churn, f"geometric({geo_n})")
    series = base.grid({"dynamics.rate": list(rates)}).run(
        name="wpaxos", cache=cache, workers=workers)
    for rate, point in zip(rates, series.points):
        m = point.metrics
        _row(report, m, "edge-churn", rate)
        _tally(m)
    m = cached_run(_waypoint_scenario(geo_n), cache)
    _row(report, m, "random-waypoint", "-")
    _tally(m)

    # --- wPAXOS under node churn (leave/rejoin with state reset) -------
    m = cached_run(_node_churn_scenario(clique_n), cache)
    _row(report, m, "node-churn", 0.05)
    _tally(m)

    # --- churn rate x n (zip-mode correlated axes) ---------------------
    zip_base = _base("wpaxos", clique, churn, None)
    zip_grid = zip_base.grid(
        {"dynamics.rate": list(rates)},
        zipped={"topology.n": list(ZIP_NS),
                "seed": list(ZIP_SEEDS)})
    series = zip_grid.run(name="wpaxos", cache=cache, workers=workers)
    latency_by_rate = {}
    for point in series.points:
        rate, (n, _seed) = point.key
        m = point.metrics
        conn = (m.extras or {}).get("connectivity") or {}
        report.add_row(
            f"clique({n})", "wpaxos", "edge-churn", rate,
            m.agreement, m.validity, m.termination, m.last_decision,
            conn.get("topologies"), conn.get("max_t_interval"))
        _tally(m)
        if m.last_decision is not None:
            latency_by_rate.setdefault(rate, []).append(
                m.last_decision)
    trend = {rate: round(sum(vals) / len(vals), 2)
             for rate, vals in latency_by_rate.items()}

    report.conclude(
        f"agreement and validity hold in all {decided + stalled} "
        f"cells, at every churn rate, for every algorithm and "
        f"dynamic -- churn may stall a protocol but never tricks it "
        f"into conflicting decisions", ok=safety_ok)
    report.conclude(
        f"liveness is the churn casualty: {decided} cells decided, "
        f"{stalled} stalled safe (quiescent deadlock -- the "
        f"message-driven retries the algorithms rely on cannot fire "
        f"once a flood wave misses a transient link; Two-Phase's "
        f"single-hop assumption and wPAXOS on sparse geometric "
        f"graphs are the main casualties). Mean decided wPAXOS "
        f"latency by churn rate: {trend}", ok=stalled < decided)
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
