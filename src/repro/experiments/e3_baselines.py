"""E3 -- Section 4.2's motivation: flooding costs Theta(n * F_ack).

The paper motivates wPAXOS's aggregation trees by observing that PAXOS
+ basic flooding (and any gather-everything scheme) pays ``Theta(n)``
message-slots at a bottleneck, since each O(1)-id message moves one
response. This experiment pits wPAXOS against the two baselines on
bottleneck topologies with fixed diameter and growing ``n`` and
records:

* decision times (claim: wPAXOS flat, baselines grow linearly in n);
* maximum per-node broadcast counts (claim: Theta(D)-ish vs Theta(n)).
"""

from __future__ import annotations

from ..analysis import growth_ratio, parallel_sweep, run_consensus
from ..core.baselines import GatherAllConsensus, PaxosFloodNode
from ..core.wpaxos import WPaxosConfig, WPaxosNode
from ..macsim.schedulers import SynchronousScheduler
from ..topology import star, star_of_cliques
from .common import ExperimentReport

ARM_SWEEP = ((4, 6), (6, 8), (8, 10), (10, 12))

#: Per-algorithm process factories, given (graph, uid map, n).
_ALGORITHMS = {
    "wpaxos": lambda uid, n: (
        lambda v, val: WPaxosNode(uid[v], val, n, WPaxosConfig())),
    "flood-paxos": lambda uid, n: (
        lambda v, val: PaxosFloodNode(uid[v], val, n)),
    "gatherall": lambda uid, n: (
        lambda v, val: GatherAllConsensus(uid[v], val, n)),
}


def run(*, arm_sweep=ARM_SWEEP) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E3",
        title="wPAXOS vs flooding baselines at bottlenecks",
        paper_claim=("Section 4.2: PAXOS + basic flooding costs "
                     "O(n * F_ack); aggregation trees reduce this to "
                     "O(D * F_ack)"),
        headers=["topology", "n", "D", "algorithm", "correct",
                 "decision time", "max bcasts/node"],
    )

    # One parallel sweep per algorithm over the (arms, size) points;
    # rows are then emitted in the original per-topology order. The
    # graphs are built once up front: the build closures reference
    # them and forked sweep workers inherit them, so neither the
    # workers nor the row loop rebuild a topology.
    graphs = [star_of_cliques(arms, size) for arms, size in arm_sweep]
    diameters = [graph.diameter() for graph in graphs]

    def make_build(algorithm_name):
        def build(index):
            arms, size = arm_sweep[int(index)]
            graph = graphs[int(index)]
            uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
            factory = _ALGORITHMS[algorithm_name](uid, graph.n)
            return dict(graph=graph,
                        scheduler=SynchronousScheduler(1.0),
                        factory=factory,
                        topology=f"star_of_cliques({arms},{size})")
        return build

    sweeps = {
        name: parallel_sweep(name, range(len(arm_sweep)),
                             make_build(name))
        for name in _ALGORITHMS
    }
    series: dict = {"wpaxos": [], "flood-paxos": [], "gatherall": []}
    for index, (arms, size) in enumerate(arm_sweep):
        diameter = diameters[index]
        for name in _ALGORITHMS:
            metrics = sweeps[name].points[index].metrics
            n = metrics.n
            series[name].append((n, metrics.last_decision,
                                 metrics.max_broadcasts_per_node))
            report.add_row(f"soc({arms},{size})", n, diameter, name,
                           metrics.correct, metrics.last_decision,
                           metrics.max_broadcasts_per_node)
            if not metrics.correct:
                report.conclude(f"{name} on n={n} failed", ok=False)

    # A plain star (hub bottleneck, D=2) for good measure.
    graph = star(41)
    n = graph.n
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    for name, factory in (
            ("wpaxos", lambda v, val: WPaxosNode(uid[v], val, n,
                                                 WPaxosConfig())),
            ("gatherall", lambda v, val: GatherAllConsensus(uid[v], val,
                                                            n))):
        metrics = run_consensus(
            algorithm=name, topology="star(41)", graph=graph,
            scheduler=SynchronousScheduler(1.0), factory=factory)
        report.add_row("star(41)", n, 2, name, metrics.correct,
                       metrics.last_decision,
                       metrics.max_broadcasts_per_node)

    # Shape conclusions: growth of time as n grows, D fixed.
    ns = [float(n) for n, _, _ in series["wpaxos"]]
    for name, expect_flat in (("wpaxos", True), ("flood-paxos", False),
                              ("gatherall", False)):
        times = [t for _, t, _ in series[name]]
        ratio = growth_ratio(ns, times)
        if expect_flat:
            report.conclude(
                f"{name}: time growth ratio {ratio:.2f} as n grows "
                f"3x at fixed D (claim: ~0, flat)", ok=ratio < 0.4)
        else:
            report.conclude(
                f"{name}: time growth ratio {ratio:.2f} (claim: ~1, "
                f"linear in n)", ok=ratio > 0.6)
    wp = series["wpaxos"][-1]
    fp = series["flood-paxos"][-1]
    report.conclude(
        f"at n={int(ns[-1])}: wPAXOS {wp[1]:.0f} vs flooding-PAXOS "
        f"{fp[1]:.0f} rounds -- x{fp[1] / wp[1]:.1f} speedup "
        f"(claim: ~n/D factor)", ok=fp[1] > 2 * wp[1])
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
