"""E3 -- Section 4.2's motivation: flooding costs Theta(n * F_ack).

The paper motivates wPAXOS's aggregation trees by observing that PAXOS
+ basic flooding (and any gather-everything scheme) pays ``Theta(n)``
message-slots at a bottleneck, since each O(1)-id message moves one
response. This experiment pits wPAXOS against the two baselines on
bottleneck topologies with fixed diameter and growing ``n`` and
records:

* decision times (claim: wPAXOS flat, baselines grow linearly in n);
* maximum per-node broadcast counts (claim: Theta(D)-ish vs Theta(n)).

All series are declarative scenario grids: one base
:class:`~repro.scenario.Scenario` per algorithm over correlated
``(topology.arms, topology.size)`` axes, so the driver and its
``manifest()`` address identical cache entries -- ``repro regen E3``
and ``repro experiments E3`` share cells.
"""

from __future__ import annotations

from ..analysis import growth_ratio
from ..analysis.cache import cached_run
from ..scenario import AlgorithmSpec, Scenario, SchedulerSpec, TopologySpec
from ..topology import star_of_cliques
from .common import ExperimentReport

ARM_SWEEP = ((4, 6), (6, 8), (8, 10), (10, 12))

#: The three contenders; registry builders replicate the legacy
#: factories (uids are label order + 1 on every topology).
ALGORITHMS = ("wpaxos", "flood-paxos", "gatherall")

BASE = Scenario(
    algorithm=AlgorithmSpec("wpaxos"),
    topology=TopologySpec("star-of-cliques", arms=4, size=6),
    scheduler=SchedulerSpec("synchronous", f_ack=1.0))

#: A plain star (hub bottleneck, D=2) for good measure.
STAR_BASE = BASE.override({"topology": TopologySpec("star", n=41),
                           "label": "star(41)"})
STAR_ALGORITHMS = ("wpaxos", "gatherall")


def _algo(base: Scenario, name: str) -> Scenario:
    return base.override({"algorithm": AlgorithmSpec(name)})


def _soc_zip(arm_sweep=ARM_SWEEP):
    """Correlated (arms, size, label) axes for the bottleneck sweep."""
    return {
        "topology.arms": [int(arms) for arms, _ in arm_sweep],
        "topology.size": [int(size) for _, size in arm_sweep],
        "label": [f"star_of_cliques({arms},{size})"
                  for arms, size in arm_sweep],
    }


def manifest():
    """This experiment's row blocks as a scenario-native manifest."""
    from ..analysis.manifests import ExperimentManifest, ManifestBlock
    blocks = [ManifestBlock(f"soc-{name}", _algo(BASE, name),
                            zipped=_soc_zip())
              for name in ALGORITHMS]
    blocks += [ManifestBlock(f"star-{name}", _algo(STAR_BASE, name),
                             note="hub bottleneck, D=2")
               for name in STAR_ALGORITHMS]
    return ExperimentManifest(
        experiment="E3",
        title="wPAXOS vs flooding baselines at bottlenecks",
        blocks=blocks)


def run(*, arm_sweep=ARM_SWEEP, cache=None,
        workers=None) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E3",
        title="wPAXOS vs flooding baselines at bottlenecks",
        paper_claim=("Section 4.2: PAXOS + basic flooding costs "
                     "O(n * F_ack); aggregation trees reduce this to "
                     "O(D * F_ack)"),
        headers=["topology", "n", "D", "algorithm", "correct",
                 "decision time", "max bcasts/node"],
    )

    # One grid per algorithm over the zipped (arms, size) points; rows
    # are then emitted in the original per-topology order. Diameters
    # are structural, so they are computed once here rather than in
    # the sweep workers.
    diameters = [star_of_cliques(arms, size).diameter()
                 for arms, size in arm_sweep]
    sweeps = {
        name: _algo(BASE, name).grid(zipped=_soc_zip(arm_sweep)).run(
            name=name, cache=cache, workers=workers)
        for name in ALGORITHMS
    }
    series: dict = {name: [] for name in ALGORITHMS}
    for index, (arms, size) in enumerate(arm_sweep):
        diameter = diameters[index]
        for name in ALGORITHMS:
            metrics = sweeps[name].points[index].metrics
            n = metrics.n
            series[name].append((n, metrics.last_decision,
                                 metrics.max_broadcasts_per_node))
            report.add_row(f"soc({arms},{size})", n, diameter, name,
                           metrics.correct, metrics.last_decision,
                           metrics.max_broadcasts_per_node)
            if not metrics.correct:
                report.conclude(f"{name} on n={n} failed", ok=False)

    for name in STAR_ALGORITHMS:
        metrics = cached_run(_algo(STAR_BASE, name), cache)
        report.add_row("star(41)", metrics.n, 2, name, metrics.correct,
                       metrics.last_decision,
                       metrics.max_broadcasts_per_node)

    # Shape conclusions: growth of time as n grows, D fixed.
    ns = [float(n) for n, _, _ in series["wpaxos"]]
    for name, expect_flat in (("wpaxos", True), ("flood-paxos", False),
                              ("gatherall", False)):
        times = [t for _, t, _ in series[name]]
        ratio = growth_ratio(ns, times)
        if expect_flat:
            report.conclude(
                f"{name}: time growth ratio {ratio:.2f} as n grows "
                f"3x at fixed D (claim: ~0, flat)", ok=ratio < 0.4)
        else:
            report.conclude(
                f"{name}: time growth ratio {ratio:.2f} (claim: ~1, "
                f"linear in n)", ok=ratio > 0.6)
    wp = series["wpaxos"][-1]
    fp = series["flood-paxos"][-1]
    report.conclude(
        f"at n={int(ns[-1])}: wPAXOS {wp[1]:.0f} vs flooding-PAXOS "
        f"{fp[1]:.0f} rounds -- x{fp[1] / wp[1]:.1f} speedup "
        f"(claim: ~n/D factor)", ok=fp[1] > 2 * wp[1])
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
