"""E10 -- randomization circumvents Theorem 3.2 (future work #3).

Theorem 3.2 kills *deterministic* consensus with one crash; the paper
names randomized algorithms as the escape hatch. This experiment runs
Ben-Or (adapted to the acknowledged-broadcast model,
:mod:`repro.core.randomized`) under crash schedules of exactly the
kind that deadlock Two-Phase Consensus, and records:

* agreement + validity in every run (deterministic safety);
* termination of all surviving nodes despite the crashes
  (probability-1 liveness, observed directly);
* round counts (constant-ish against these non-adaptive schedulers).
"""

from __future__ import annotations

from ..analysis import parallel_sweep
from ..core.randomized import BenOrConsensus
from ..core.twophase import TwoPhaseConsensus
from ..macsim import build_simulation, check_consensus, crash_plan
from ..macsim.schedulers import RandomDelayScheduler
from ..topology import clique
from .common import ExperimentReport

CONFIGS = ((3, 1), (5, 1), (5, 2), (9, 4))
SEEDS = range(6)


def _build_point(key):
    """One Ben-Or execution for a ``((n, f), seed)`` sweep key."""
    (n, f), seed = key
    graph = clique(n)
    values = {v: v % 2 for v in graph.nodes}
    crash_count = min(f, 1)
    crashes = [crash_plan(0, 1.5, still_delivered=frozenset({1}))]

    def factory(v, val):
        return BenOrConsensus(v + 1, val, n, f, seed=seed * 31 + v)

    def probe(sim):
        return {"rounds": max(sim.process_at(v).round_no
                              for v in graph.nodes)}

    return dict(graph=graph,
                scheduler=RandomDelayScheduler(1.0, seed=seed),
                factory=factory, initial_values=values,
                crashes=crashes[:crash_count],
                topology=f"clique({n})", check_invariants=False,
                probe=probe, x=n)


def run(*, configs=CONFIGS, seeds=SEEDS) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E10",
        title="Randomized consensus under crash failures (Ben-Or)",
        paper_claim=("Section 5: randomization may circumvent the "
                     "crash-failure impossibility (Theorem 3.2)"),
        headers=["n", "f", "crashes", "runs", "safe", "terminated",
                 "max rounds"],
    )

    # Every ((n, f), seed) replica fans out as its own sweep point;
    # results are grouped back per configuration for the table.
    series = parallel_sweep(
        "ben-or", [((n, f), seed) for n, f in configs
                   for seed in seeds],
        _build_point, max_events=3_000_000, max_time=5_000.0)
    total = len(list(seeds))
    by_config = {}
    for point in series.points:
        by_config.setdefault(point.key[0], []).append(point)
    for (n, f), replicas in by_config.items():
        safe = sum(p.metrics.agreement and p.metrics.validity
                   for p in replicas)
        finished = sum(p.metrics.termination for p in replicas)
        max_rounds = max(p.metrics.extras["rounds"] for p in replicas)
        report.add_row(n, f, min(f, 1), total, f"{safe}/{total}",
                       f"{finished}/{total}", max_rounds)
        if safe != total or finished != total:
            report.conclude(f"Ben-Or failed at n={n}, f={f}", ok=False)

    # The deterministic control: Two-Phase under the same crash style.
    graph = clique(3)
    values = {0: 0, 1: 1, 2: 1}
    from ..lowerbounds.flp import build_witness_deadlock_execution
    sim = build_witness_deadlock_execution()
    result = sim.run(max_time=300.0)
    consensus = check_consensus(result.trace, values)
    report.add_row(3, "-", 1, 1, "1/1 (agreement kept)",
                   "0/1 (deadlocked)", "-")
    report.conclude(
        "control: deterministic Two-Phase deadlocks under one crash "
        "(Theorem 3.2's prediction)",
        ok=not consensus.termination)
    report.conclude(
        "Ben-Or decided in every crash run with agreement and "
        "validity intact: randomization escapes the impossibility, "
        "as the paper anticipated")
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
