"""Experiment drivers regenerating the paper's results (E1-E8).

Run everything with ``python -m repro.experiments``, or one at a time
with ``python -m repro.experiments.e1_single_hop`` etc. EXPERIMENTS.md
records the tables these produce.
"""

from . import (e1_single_hop, e2_wpaxos_scaling, e3_baselines,
               e4_time_lower_bound, e5_anonymous, e6_unknown_n, e7_flp,
               e8_ablations, e9_unreliable_links, e10_randomized,
               e11_fprog, e12_byzantine, e13_churn, e14_service)
from .common import ExperimentReport

ALL_EXPERIMENTS = (
    ("E1", e1_single_hop),
    ("E2", e2_wpaxos_scaling),
    ("E3", e3_baselines),
    ("E4", e4_time_lower_bound),
    ("E5", e5_anonymous),
    ("E6", e6_unknown_n),
    ("E7", e7_flp),
    ("E8", e8_ablations),
    ("E9", e9_unreliable_links),
    ("E10", e10_randomized),
    ("E11", e11_fprog),
    ("E12", e12_byzantine),
    ("E13", e13_churn),
    ("E14", e14_service),
)

__all__ = ["ALL_EXPERIMENTS", "ExperimentReport"]
