"""E5 -- Theorem 3.3 / Figure 1: anonymous consensus is impossible.

Runs the full pipeline of :mod:`repro.lowerbounds.anonymity` for
several Figure 1 parameterizations: construction property checks
(Claim 3.4 + covering property), Lemma 3.5 (the B-executions decide
their common input), Lemma 3.6 verified empirically (per-round state
equality between each gadget node and its three covers), and the final
agreement violation in network A.
"""

from __future__ import annotations

from ..lowerbounds.anonymity import run_anonymity_demo
from ..topology.gadgets import verify_figure1
from .common import ExperimentReport

PARAMETERS = ((2, 0), (3, 0), (3, 2))


def run(*, parameters=PARAMETERS) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E5",
        title="Anonymity lower bound on the Figure 1 networks",
        paper_claim=("Theorem 3.3: no anonymous algorithm solves "
                     "consensus even knowing n and D"),
        headers=["d", "k", "n'", "D", "construction ok",
                 "covers match", "A copy0 / copy1", "violated"],
    )
    for d, k in parameters:
        demo = run_anonymity_demo(d=d, k=k)
        report.add_row(
            d, k, demo.size, demo.diameter, demo.construction_ok,
            demo.indistinguishable,
            f"{sorted(demo.a_decisions_copy0)} / "
            f"{sorted(demo.a_decisions_copy1)}",
            demo.agreement_violated)
        if not demo.theorem_holds:
            report.conclude(f"pipeline failed for d={d}, k={k}",
                            ok=False)
    report.conclude(
        "Claim 3.4 verified: |A| = |B| and diam(A) = diam(B) = D for "
        "all parameterizations (machine-checked)")
    report.conclude(
        "covering property (*) of Lemma 3.6 verified structurally and "
        "empirically: every gadget node's per-round state equals all "
        "three covers' states throughout the silence window")
    report.conclude(
        "agreement violated in network A: copy 0 decides 0, copy 1 "
        "decides 1, despite the algorithm knowing both n and D")

    # Construction checks over a wider parameter range.
    checked = 0
    for d in range(2, 8):
        for k in (0, 1, 3):
            if not verify_figure1(d, k).ok:
                report.conclude(f"construction check failed at "
                                f"d={d}, k={k}", ok=False)
            checked += 1
    report.conclude(f"construction properties verified for {checked} "
                    f"(d, k) pairs")
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
