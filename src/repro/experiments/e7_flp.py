"""E7 -- Theorem 3.2: no deterministic consensus with one crash.

Three executable artifacts:

1. **Bivalent initial configurations exist** (the FLP "Lemma 2"
   analog): exhaustive valency classification of every binary input
   vector for Two-Phase Consensus on the 2-clique.
2. **The Lemma 3.1 dichotomy**: for the (non-crash-tolerant) Two-Phase
   algorithm the lemma's extension exists for some nodes and provably
   fails for others -- the exit FLP denies to any algorithm that *is*
   1-crash-tolerant.
3. **The crash execution**: both in the step model (exhaustive search
   finds a post-crash configuration from which an alive node can never
   decide) and as a concrete timed run (mid-broadcast crash deadlocks
   the witness wait on a 3-clique).
"""

from __future__ import annotations

from ..lowerbounds.flp import (StepTwoPhase,
                               build_witness_deadlock_execution)
from ..lowerbounds.steps import StepSystem
from ..lowerbounds.valency import (ValencyAnalyzer,
                                   bivalent_initial_configurations,
                                   find_crash_termination_violation,
                                   verify_lemma_31)
from ..macsim import check_consensus
from ..topology import clique
from .common import ExperimentReport


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E7",
        title="FLP in the abstract MAC layer model",
        paper_claim=("Theorem 3.2: no deterministic algorithm solves "
                     "consensus with a single crash failure"),
        headers=["artifact", "instance", "result"],
    )

    # 1. Exhaustive valency classification, n = 2, crash budget 1.
    system = StepSystem(clique(2), StepTwoPhase(), crash_budget=1)
    analyzer = ValencyAnalyzer(system)
    bivalent = bivalent_initial_configurations(system, analyzer)
    bivalent_inputs = [values for values, _ in bivalent]
    report.add_row("bivalent initial configs", "two-phase, n=2",
                   f"{bivalent_inputs}")
    report.conclude(
        f"bivalent initial configurations exist: {bivalent_inputs} "
        f"(exhaustive over all 2^n input vectors)",
        ok=len(bivalent_inputs) == 2)

    # 2. The Lemma 3.1 dichotomy on the (0, 1) instance.
    exploration = analyzer.explore(
        system.initial_configuration((0, 1)))
    report.add_row("explored configurations", "two-phase, n=2",
                   exploration.config_count)
    lemma_outcomes = {}
    for node in range(2):
        witness = verify_lemma_31(exploration, exploration.initial,
                                  node)
        lemma_outcomes[node] = witness.found
        report.add_row(f"Lemma 3.1 extension, node {node}",
                       "two-phase, n=2",
                       "exists" if witness.found else "does not exist")
    report.conclude(
        f"Lemma 3.1 dichotomy: extension exists for node 0 "
        f"({lemma_outcomes[0]}) but not node 1 ({lemma_outcomes[1]}) "
        f"-- exactly what the theorem predicts for an algorithm that "
        f"is *not* crash-tolerant (the lemma holds only for "
        f"hypothetical 1-crash-tolerant algorithms)",
        ok=lemma_outcomes[0] and not lemma_outcomes[1])

    # 3a. Step-model crash deadlock (exhaustive).
    violation = find_crash_termination_violation(exploration)
    report.add_row("crash termination violation (step model)",
                   "two-phase, n=2",
                   f"node {violation.stuck_node} stuck after crash of "
                   f"{set(violation.config.crashed)}"
                   if violation else "none found")
    report.conclude(
        "exhaustive search finds a post-crash configuration from "
        "which an alive node can never decide",
        ok=violation is not None)

    # 3b. The concrete timed execution.
    sim = build_witness_deadlock_execution()
    result = sim.run(max_time=300.0)
    consensus = check_consensus(result.trace, {0: 0, 1: 1, 2: 1})
    crashed = result.trace.crashed_nodes()
    report.add_row("witness-deadlock execution (timed)",
                   "two-phase, 3-clique",
                   f"decisions={consensus.decisions}, "
                   f"undecided={consensus.undecided}, "
                   f"crashed={sorted(crashed)}")
    report.conclude(
        "one mid-broadcast crash deadlocks Two-Phase Consensus's "
        "witness wait: node 1 decides 0, node 2 never decides "
        "(termination violated; agreement preserved)",
        ok=(consensus.decisions.get(1) == 0
            and 2 in consensus.undecided
            and crashed == {0}
            and consensus.agreement))
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
