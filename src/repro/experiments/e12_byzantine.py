"""E12 -- Byzantine fault tolerance in the abstract MAC layer.

The follow-on line to the source paper (Tseng & Sardina 2023; Zhang &
Tseng 2024) shows the abstract MAC layer supports consensus under
Byzantine behaviour. This experiment exercises
:class:`repro.core.byzantine.ByzantineConsensus` (value grading +
amplification, tolerance bound ``n > 5f``) against the
:mod:`repro.macsim.faults` adversary subsystem:

* **Within the bound** -- sweeping the adversary budget ``f`` from 0
  to ``max_tolerance(n)`` across three strategies (silent, corrupt,
  equivocate) on a clique and, in relay mode, on a multi-hop random
  graph: agreement and validity must hold *among correct nodes* in
  every run, and every correct node must decide.
* **Past the bound** -- a targeted split-world equivocation against a
  protocol instance assuming ``f = 0``: the adversary steers half the
  correct nodes to decide 0 and half to decide 1. The violating
  decisions are pulled out of the full execution trace and recorded
  in the report -- the measured reason the tolerance bound is not an
  artifact of the analysis.

All within-bound points are one scenario grid per (topology,
strategy): the base :class:`~repro.scenario.Scenario` pins the
uid-proportional RNG construction (``uid_seed_scale`` /
``plan_seed_scale``) and the grid sweeps ``fault.count`` through
``parallel_sweep``; each worker builds its own fault model (models
hold per-run RNG state).
"""

from __future__ import annotations

from ..core.byzantine import ByzantineConsensus, max_tolerance
from ..macsim import build_simulation, check_consensus
from ..macsim.faults import (ByzantineFaultModel, ByzantinePlan,
                             EquivocateStrategy)
from ..macsim.schedulers import SynchronousScheduler
from ..scenario import (AlgorithmSpec, FaultSpec, Scenario,
                        SchedulerSpec, TopologySpec)
from ..topology import clique
from .common import ExperimentReport

#: Adversary strategies swept within the tolerance bound.
STRATEGIES = ("silent", "corrupt", "equivocate")

CLIQUE_N = 16
MULTIHOP_N = 12
MULTIHOP_EDGE_PROB = 0.35
MULTIHOP_SEED = 7


def _base_scenario(topology: TopologySpec, n: int, relay: bool,
                   strategy: str) -> Scenario:
    """One within-bound base: Byzantine consensus assuming
    ``f = max_tolerance(n)``, uid-scaled process seeds (1013 * uid)
    and plan seeds (11 * uid), two-thirds-zeros inputs."""
    f_assumed = max_tolerance(n)
    return Scenario(
        algorithm=AlgorithmSpec("byzantine", f=f_assumed, relay=relay,
                                uid_seed_scale=1013),
        topology=topology,
        scheduler=SchedulerSpec("synchronous", f_ack=1.0),
        fault=FaultSpec("byzantine", count=0, strategy=strategy,
                        plan_seed_scale=11, budget=f_assumed),
        values="two-thirds-zeros",
        label=("multihop" if relay else "clique") + f"({n})")


def _topologies(clique_n: int = CLIQUE_N,
                multihop_n: int = MULTIHOP_N):
    """The within-bound (topology, n, relay) rows; one grid per
    (topology, strategy) pair, shared by ``run()`` and
    ``manifest()``."""
    return [
        (TopologySpec("clique", n=clique_n), clique_n, False),
        (TopologySpec("random", n=multihop_n,
                      density=MULTIHOP_EDGE_PROB, seed=MULTIHOP_SEED),
         multihop_n, True),
    ]


def manifest():
    """The within-bound grids as a scenario-native manifest.

    The past-the-bound violation run is hand-wired (it digs decide
    records out of the raw trace) and deliberately stays outside the
    manifest/cache layer.
    """
    from ..analysis.manifests import ExperimentManifest, ManifestBlock
    blocks = []
    for topology, n, relay in _topologies():
        f_assumed = max_tolerance(n)
        counts = list(range(f_assumed + 1))
        kind = "multihop" if relay else "clique"
        for strategy_name in STRATEGIES:
            blocks.append(ManifestBlock(
                f"{kind}-{strategy_name}",
                _base_scenario(topology, n, relay, strategy_name),
                axes={"fault.count": counts}))
    return ExperimentManifest(
        experiment="E12",
        title="Byzantine consensus under the fault-model subsystem",
        blocks=blocks)


def _violation_run():
    """Budget past the bound: targeted split-world equivocation.

    5 nodes, protocol instances assuming ``f = 0``; one equivocating
    Byzantine node sends value 0 to nodes {0, 2} and value 1 to
    {1, 3} in both steps, handing each side a decisive majority for a
    different value.
    """
    graph = clique(5)
    values = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
    byz = 4
    strategy = EquivocateStrategy(assignment={0: 0, 2: 0, 1: 1, 3: 1})
    fault_model = ByzantineFaultModel(
        [ByzantinePlan(node=byz, strategy=strategy)])
    sim = build_simulation(
        graph,
        lambda v: ByzantineConsensus(v + 1, values[v], 5, 0,
                                     seed=3 * v),
        SynchronousScheduler(1.0), fault_model=fault_model)
    result = sim.run(max_time=500.0)
    report = check_consensus(result.trace, values,
                             faulty=frozenset({byz}))
    return result, report, byz


def run(*, clique_n=CLIQUE_N, multihop_n=MULTIHOP_N,
        strategies=STRATEGIES, cache=None,
        workers=None) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E12",
        title="Byzantine consensus under the fault-model subsystem",
        paper_claim=("Tseng-Sardina 2023 / Zhang-Tseng 2024: the "
                     "abstract MAC layer supports Byzantine consensus; "
                     "grading+amplification tolerates f Byzantine "
                     "nodes for n > 5f, and not beyond"),
        headers=["topology", "strategy", "f assumed", "byz actual",
                 "agreement", "validity", "correct decided",
                 "decision time"],
    )

    # --- within the bound: clique and multi-hop grids ------------------
    all_safe = True
    for topology, n, relay in _topologies(clique_n, multihop_n):
        f_assumed = max_tolerance(n)
        byz_counts = tuple(range(f_assumed + 1))
        for strategy_name in strategies:
            base = _base_scenario(topology, n, relay, strategy_name)
            series = base.grid({"fault.count": list(byz_counts)}).run(
                name="byzantine", cache=cache, workers=workers)
            for b, point in zip(byz_counts, series.points):
                m = point.metrics
                report.add_row(
                    m.topology, strategy_name, f_assumed, b,
                    m.agreement, m.validity, m.termination,
                    m.last_decision)
                if not m.correct:
                    all_safe = False
                    report.conclude(
                        f"{m.topology} {strategy_name} b={b}: "
                        f"agreement={m.agreement} "
                        f"validity={m.validity} "
                        f"termination={m.termination}", ok=False)
    report.conclude(
        "agreement and validity held among correct nodes, and every "
        "correct node decided, for every strategy and every budget "
        "f <= max_tolerance(n) on both topologies", ok=all_safe)

    # --- past the bound: traced violation ------------------------------
    result, violation, byz = _violation_run()
    decides = [(r.node, r.payload, r.time)
               for r in result.trace.of_kind("decide") if r.node != byz]
    report.add_row("clique(5)", "equivocate(split)", 0, 1,
                   violation.agreement, violation.validity,
                   violation.termination,
                   result.trace.last_decision_time())
    report.conclude(
        f"budget past the bound (f=0 assumed, 1 equivocator): "
        f"agreement among correct nodes violated -- decide records "
        f"{decides} ({len(result.trace)} trace records)",
        ok=not violation.agreement)
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
