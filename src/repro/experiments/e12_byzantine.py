"""E12 -- Byzantine fault tolerance in the abstract MAC layer.

The follow-on line to the source paper (Tseng & Sardina 2023; Zhang &
Tseng 2024) shows the abstract MAC layer supports consensus under
Byzantine behaviour. This experiment exercises
:class:`repro.core.byzantine.ByzantineConsensus` (value grading +
amplification, tolerance bound ``n > 5f``) against the
:mod:`repro.macsim.faults` adversary subsystem:

* **Within the bound** -- sweeping the adversary budget ``f`` from 0
  to ``max_tolerance(n)`` across three strategies (silent, corrupt,
  equivocate) on a clique and, in relay mode, on a multi-hop random
  graph: agreement and validity must hold *among correct nodes* in
  every run, and every correct node must decide.
* **Past the bound** -- a targeted split-world equivocation against a
  protocol instance assuming ``f = 0``: the adversary steers half the
  correct nodes to decide 0 and half to decide 1. The violating
  decisions are pulled out of the full execution trace and recorded
  in the report -- the measured reason the tolerance bound is not an
  artifact of the analysis.

All within-bound points run through ``parallel_sweep``; each point
builds its own fault model (models hold per-run RNG state).
"""

from __future__ import annotations

from ..analysis import parallel_sweep
from ..core.byzantine import ByzantineConsensus, max_tolerance
from ..macsim import build_simulation, check_consensus
from ..macsim.faults import (ByzantineFaultModel, ByzantinePlan,
                             CorruptStrategy, EquivocateStrategy,
                             SilentStrategy)
from ..macsim.schedulers import SynchronousScheduler
from ..topology import clique, random_connected
from .common import ExperimentReport

#: Adversary strategies swept within the tolerance bound.
STRATEGIES = (
    ("silent", SilentStrategy),
    ("corrupt", CorruptStrategy),
    ("equivocate", EquivocateStrategy),
)

CLIQUE_N = 16
MULTIHOP_N = 12
MULTIHOP_EDGE_PROB = 0.35
MULTIHOP_SEED = 7


def _values(nodes):
    """Two-thirds zeros: a clear but non-unanimous correct majority."""
    nodes = list(nodes)
    cut = (2 * len(nodes)) // 3
    return {v: 0 if i < cut else 1 for i, v in enumerate(nodes)}


def _build_point(graph, strategy_cls, f_assumed, relay):
    """Sweep closure: one within-bound run at Byzantine count ``b``."""
    nodes = list(graph.nodes)
    uid = {v: i + 1 for i, v in enumerate(nodes)}
    values = _values(nodes)
    n = graph.n

    def build(b):
        b = int(b)
        byz = nodes[-b:] if b else []
        plans = [ByzantinePlan(node=v, strategy=strategy_cls(),
                               seed=11 * uid[v])
                 for v in byz]
        fault_model = ByzantineFaultModel(plans, budget=f_assumed)

        def factory(label, value):
            return ByzantineConsensus(uid[label], value, n, f_assumed,
                                      seed=1013 * uid[label],
                                      relay=relay)

        return dict(graph=graph, scheduler=SynchronousScheduler(1.0),
                    factory=factory, initial_values=values,
                    fault_model=fault_model,
                    topology=("clique" if not relay else "multihop")
                    + f"({n})")

    return build


def _violation_run():
    """Budget past the bound: targeted split-world equivocation.

    5 nodes, protocol instances assuming ``f = 0``; one equivocating
    Byzantine node sends value 0 to nodes {0, 2} and value 1 to
    {1, 3} in both steps, handing each side a decisive majority for a
    different value.
    """
    graph = clique(5)
    values = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
    byz = 4
    strategy = EquivocateStrategy(assignment={0: 0, 2: 0, 1: 1, 3: 1})
    fault_model = ByzantineFaultModel(
        [ByzantinePlan(node=byz, strategy=strategy)])
    sim = build_simulation(
        graph,
        lambda v: ByzantineConsensus(v + 1, values[v], 5, 0,
                                     seed=3 * v),
        SynchronousScheduler(1.0), fault_model=fault_model)
    result = sim.run(max_time=500.0)
    report = check_consensus(result.trace, values,
                             faulty=frozenset({byz}))
    return result, report, byz


def run(*, clique_n=CLIQUE_N, multihop_n=MULTIHOP_N,
        strategies=STRATEGIES) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E12",
        title="Byzantine consensus under the fault-model subsystem",
        paper_claim=("Tseng-Sardina 2023 / Zhang-Tseng 2024: the "
                     "abstract MAC layer supports Byzantine consensus; "
                     "grading+amplification tolerates f Byzantine "
                     "nodes for n > 5f, and not beyond"),
        headers=["topology", "strategy", "f assumed", "byz actual",
                 "agreement", "validity", "correct decided",
                 "decision time"],
    )

    # --- within the bound: clique and multi-hop sweeps -----------------
    scenarios = [
        (clique(clique_n), False),
        (random_connected(multihop_n, MULTIHOP_EDGE_PROB,
                          seed=MULTIHOP_SEED), True),
    ]
    all_safe = True
    for graph, relay in scenarios:
        f_assumed = max_tolerance(graph.n)
        byz_counts = tuple(range(f_assumed + 1))
        for strategy_name, strategy_cls in strategies:
            series = parallel_sweep(
                "byzantine", byz_counts,
                _build_point(graph, strategy_cls, f_assumed, relay))
            for b, point in zip(byz_counts, series.points):
                m = point.metrics
                report.add_row(
                    m.topology, strategy_name, f_assumed, b,
                    m.agreement, m.validity, m.termination,
                    m.last_decision)
                if not m.correct:
                    all_safe = False
                    report.conclude(
                        f"{m.topology} {strategy_name} b={b}: "
                        f"agreement={m.agreement} "
                        f"validity={m.validity} "
                        f"termination={m.termination}", ok=False)
    report.conclude(
        "agreement and validity held among correct nodes, and every "
        "correct node decided, for every strategy and every budget "
        "f <= max_tolerance(n) on both topologies", ok=all_safe)

    # --- past the bound: traced violation ------------------------------
    result, violation, byz = _violation_run()
    decides = [(r.node, r.payload, r.time)
               for r in result.trace.of_kind("decide") if r.node != byz]
    report.add_row("clique(5)", "equivocate(split)", 0, 1,
                   violation.agreement, violation.validity,
                   violation.termination,
                   result.trace.last_decision_time())
    report.conclude(
        f"budget past the bound (f=0 assumed, 1 equivocator): "
        f"agreement among correct nodes violated -- decide records "
        f"{decides} ({len(result.trace)} trace records)",
        ok=not violation.agreement)
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
