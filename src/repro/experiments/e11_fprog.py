"""E11 -- the F_prog refinement the paper defers (extension).

The two-parameter abstract MAC layer bounds message *progress*
(``F_prog``) separately from broadcast *completion* (``F_ack``).
Holding ``F_ack = 8`` fixed and shrinking ``F_prog`` from 8 to 1, this
experiment measures which algorithms exploit fast deliveries:

* **Two-Phase Consensus** is ack-bound by construction (each phase
  ends at an ack), so its decision time stays pinned near
  ``2 x F_ack`` -- the refinement cannot help it.
* **GatherAll / wPAXOS** interleave many broadcasts; information can
  hop ``F_prog``-fast between a node's ack-bound sending slots, so
  their times drop partway as ``F_prog`` shrinks, without reaching an
  ``F_prog``-only bound -- each node's *own* next broadcast still
  waits for its ack.

The measured gap quantifies what the deferred "upper bounds in the
two-parameter model" future work could gain and which algorithmic
structure (fewer ack-serialized phases) it would need.
"""

from __future__ import annotations

from ..analysis import run_consensus
from ..core.baselines import GatherAllConsensus
from ..core.twophase import TwoPhaseConsensus
from ..core.wpaxos import WPaxosConfig, WPaxosNode
from ..macsim.schedulers.fprog import EagerDeliveryScheduler
from ..topology import clique, line
from .common import ExperimentReport

F_ACK = 8.0
F_PROGS = (8.0, 4.0, 2.0, 1.0)


def run(*, f_ack: float = F_ACK, f_progs=F_PROGS) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E11",
        title="The F_prog refinement (two-parameter model)",
        paper_claim=("Section 2: upper bounds in the model with the "
                     "F_prog progress bound are deferred as future "
                     "work"),
        headers=["algorithm", "topology", "F_prog", "F_ack",
                 "decision time", "time/F_ack"],
    )

    series = {"two-phase": [], "gatherall": [], "wpaxos": []}
    for f_prog in f_progs:
        seed = int(f_prog * 1000) + 1

        graph = clique(8)
        metrics = run_consensus(
            algorithm="two-phase", topology="clique(8)", graph=graph,
            scheduler=EagerDeliveryScheduler(f_prog, f_ack, seed=seed),
            factory=lambda v, val: TwoPhaseConsensus(v + 1, val))
        series["two-phase"].append(metrics.last_decision)
        report.add_row("two-phase", "clique(8)", f_prog, f_ack,
                       metrics.last_decision, metrics.normalized_time)

        graph = line(10)
        metrics = run_consensus(
            algorithm="gatherall", topology="line(10)", graph=graph,
            scheduler=EagerDeliveryScheduler(f_prog, f_ack, seed=seed),
            factory=lambda v, val: GatherAllConsensus(v + 1, val,
                                                      graph.n))
        series["gatherall"].append(metrics.last_decision)
        report.add_row("gatherall", "line(10)", f_prog, f_ack,
                       metrics.last_decision, metrics.normalized_time)

        graph = line(10)
        metrics = run_consensus(
            algorithm="wpaxos", topology="line(10)", graph=graph,
            scheduler=EagerDeliveryScheduler(f_prog, f_ack, seed=seed),
            factory=lambda v, val: WPaxosNode(v + 1, val, graph.n,
                                              WPaxosConfig()))
        series["wpaxos"].append(metrics.last_decision)
        report.add_row("wpaxos", "line(10)", f_prog, f_ack,
                       metrics.last_decision, metrics.normalized_time)

    tp = series["two-phase"]
    report.conclude(
        f"two-phase is ack-bound: {tp[0]:.0f} -> {tp[-1]:.0f} as "
        f"F_prog shrinks 8x (phases end at acks; the refinement "
        f"cannot speed it up)",
        ok=tp[-1] >= 0.8 * tp[0])
    for name in ("gatherall", "wpaxos"):
        first, last = series[name][0], series[name][-1]
        report.conclude(
            f"{name} gains {first / last:.2f}x from F_prog 8 -> 1 at "
            f"fixed F_ack: deliveries hop faster than acks, but each "
            f"node's next send still waits for its own ack",
            ok=last <= first)
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
