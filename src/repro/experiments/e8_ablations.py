"""E8 -- Ablations of the wPAXOS design choices (Section 4.2).

The analysis singles out three mechanisms; each is toggled and
measured:

* **Response aggregation** (Lemma 4.2 machinery): with aggregation off,
  responses ride the same trees but individually -- per-node message
  counts and decision time grow from ~D to ~n at a bottleneck.
* **Leader-priority tree queues** (Algorithm 4's UpdateQ rule): without
  priority, the leader's search messages queue behind up to n other
  roots, delaying GST.
* **Proposal retry policy** (Lemma 4.4 / 4.5): the paper's "up to 2
  per change" vs the learned-number policy; also records proposal
  counts, checking Lemma 4.4's "tags stay polynomial" in practice
  (proposals per node stay tiny).
"""

from __future__ import annotations

from ..analysis import parallel_sweep, run_consensus
from ..core.wpaxos import (RETRY_LEARNED, RETRY_PAPER, SafetyMonitor,
                           WPaxosConfig, WPaxosNode)
from ..macsim.schedulers import SynchronousScheduler
from ..topology import line, star_of_cliques
from .common import ExperimentReport


def _run(graph, config: WPaxosConfig, label: str, topology: str):
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    return run_consensus(
        algorithm=label, topology=topology, graph=graph,
        scheduler=SynchronousScheduler(1.0),
        factory=lambda v, val: WPaxosNode(uid[v], val, graph.n,
                                          config))


def _toggle_sweep(name: str, graph, topology: str, make_config):
    """Run the (on, off) ablation pair as one parallel sweep.

    ``x=1.0`` encodes the toggle on, ``x=0.0`` off; ``make_config``
    maps the boolean to a :class:`WPaxosConfig`.
    """
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}

    def build(x):
        config = make_config(bool(x))
        return dict(graph=graph, scheduler=SynchronousScheduler(1.0),
                    factory=lambda v, val: WPaxosNode(uid[v], val,
                                                      graph.n, config),
                    topology=topology)

    result = parallel_sweep(name, (1.0, 0.0), build)
    return {True: result.points[0].metrics,
            False: result.points[1].metrics}


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E8",
        title="wPAXOS design-choice ablations",
        paper_claim=("Section 4.2: aggregation and leader-priority "
                     "trees are what turn O(n * F_ack) into "
                     "O(D * F_ack)"),
        headers=["variant", "topology", "n", "correct",
                 "decision time", "max bcasts/node"],
    )

    # --- aggregation on/off at a bottleneck (parallel pair) ------------
    graph = star_of_cliques(6, 10)
    agg_metrics = _toggle_sweep(
        "wpaxos-aggregation", graph, "star_of_cliques(6,10)",
        lambda on: WPaxosConfig(aggregation=on))
    agg_times = {}
    for aggregation in (True, False):
        label = f"aggregation={'on' if aggregation else 'off'}"
        metrics = agg_metrics[aggregation]
        agg_times[aggregation] = (metrics.last_decision,
                                  metrics.max_broadcasts_per_node)
        report.add_row(label, "soc(6,10)", graph.n, metrics.correct,
                       metrics.last_decision,
                       metrics.max_broadcasts_per_node)
        if not metrics.correct:
            report.conclude(f"{label} failed", ok=False)
    report.conclude(
        f"aggregation off multiplies decision time x"
        f"{agg_times[False][0] / agg_times[True][0]:.1f} and max "
        f"per-node broadcasts x"
        f"{agg_times[False][1] / agg_times[True][1]:.1f} at the "
        f"bottleneck (Theta(D) vs Theta(n) responses)",
        ok=agg_times[False][0] > 1.5 * agg_times[True][0])

    # --- tree priority on/off on a long line (parallel pair) -----------
    graph = line(40)
    prio_metrics = _toggle_sweep(
        "wpaxos-tree-priority", graph, "line(40)",
        lambda on: WPaxosConfig(tree_priority=on))
    prio_times = {}
    for priority in (True, False):
        label = f"tree_priority={'on' if priority else 'off'}"
        metrics = prio_metrics[priority]
        prio_times[priority] = metrics.last_decision
        report.add_row(label, "line(40)", graph.n, metrics.correct,
                       metrics.last_decision,
                       metrics.max_broadcasts_per_node)
    report.conclude(
        f"leader-priority tree queues save "
        f"{prio_times[False] - prio_times[True]:.0f} rounds on "
        f"line(40) ({prio_times[False]:.0f} -> "
        f"{prio_times[True]:.0f})",
        ok=prio_times[True] <= prio_times[False])

    # --- retry policies + Lemma 4.2/4.4 bookkeeping --------------------
    # Stays sequential: the SafetyMonitor accumulates in-process state
    # that a forked sweep worker could not ship back.
    for policy in (RETRY_PAPER, RETRY_LEARNED):
        monitor = SafetyMonitor()
        graph = line(20)
        config = WPaxosConfig(retry_policy=policy, monitor=monitor)
        metrics = _run(graph, config, f"retry={policy}", "line(20)")
        report.add_row(f"retry={policy}", "line(20)", graph.n,
                       metrics.correct, metrics.last_decision,
                       metrics.max_broadcasts_per_node)
        if not (metrics.correct and monitor.conservation_holds()):
            report.conclude(f"retry={policy} failed", ok=False)
    report.conclude(
        "both retry policies decide with identical times here; the "
        "Lemma 4.2 conservation monitor observed no violation in "
        "either run")
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
