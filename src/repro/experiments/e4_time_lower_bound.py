"""E4 -- Theorem 3.10: consensus needs >= floor(D/2) * F_ack time.

Both directions of the bound:

* every *correct* algorithm we have, run on the worst-case split-input
  line under maximum delay, first decides no earlier than
  ``floor(D/2) * F_ack``;
* a strawman that decides earlier (:class:`EagerMinFlood` with
  ``rounds < floor(D/2)``) is driven into the partition argument's
  agreement violation.
"""

from __future__ import annotations

from ..core.baselines import GatherAllConsensus, PaxosFloodNode
from ..core.wpaxos import WPaxosConfig, WPaxosNode
from ..lowerbounds.partition import (eager_violation_demo,
                                     measure_decision_time)
from .common import ExperimentReport

DIAMETERS = (4, 8, 12, 16)


def run(*, diameters=DIAMETERS, f_ack: float = 2.0) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E4",
        title="The Omega(D * F_ack) time lower bound",
        paper_claim=("Theorem 3.10: no algorithm solves consensus in "
                     "less than floor(D/2) * F_ack time"),
        headers=["algorithm", "D", "bound", "first decision",
                 "respects bound", "correct"],
    )

    factories = {
        "wpaxos": lambda v, val, n: WPaxosNode(v + 1, val, n,
                                               WPaxosConfig()),
        "flood-paxos": lambda v, val, n: PaxosFloodNode(v + 1, val, n),
        "gatherall": lambda v, val, n: GatherAllConsensus(v + 1, val, n),
    }
    for name, factory in factories.items():
        for diameter in diameters:
            timing = measure_decision_time(factory, name, diameter,
                                           f_ack=f_ack)
            report.add_row(name, diameter, timing.bound,
                           timing.first_decision,
                           timing.respects_bound, timing.correct)
            if not (timing.respects_bound and timing.correct):
                report.conclude(
                    f"{name} at D={diameter} violated the bound or "
                    f"failed", ok=False)
    report.conclude(
        "every correct algorithm's first decision respects "
        "floor(D/2) * F_ack on the worst-case line")

    # The strawman that ignores the bound.
    for diameter in diameters:
        outcome = eager_violation_demo(diameter)
        report.add_row("eager-strawman", diameter, diameter // 2,
                       max(1, diameter // 2 - 1),
                       False, not outcome.agreement_violated)
        if not outcome.agreement_violated:
            report.conclude(
                f"strawman at D={diameter} failed to violate "
                f"agreement", ok=False)
    report.conclude(
        "deciding before the bound forces the partition argument's "
        "agreement violation (eager strawman, split inputs)")
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
