"""E2 -- Theorem 4.6: wPAXOS decides in O(D * F_ack).

Regenerates three series:

* decision time vs diameter ``D`` on lines (the worst case): the claim
  is a linear fit in ``D`` with a modest constant;
* decision time vs ``n`` at (near-)fixed ``D`` on cliques and grids of
  growing width: the claim is no ``n`` dependence beyond ``D``;
* decision time vs ``F_ack``: linear.

Each row also re-verifies agreement/validity/termination and the model
invariants (the runner checks them on every trace). Every series is a
declarative scenario grid over one axis (``topology.n``,
``scheduler.f_ack``); the grid/random spot checks derive from the same
base scenario via dotted-path overrides.
"""

from __future__ import annotations

from ..analysis import linear_fit
from ..scenario import AlgorithmSpec, Scenario, SchedulerSpec, TopologySpec
from .common import ExperimentReport

LINE_DIAMETERS = (4, 9, 19, 29, 39)
CLIQUE_SIZES = (4, 8, 16, 32, 48)
F_SWEEP = (0.5, 1.0, 2.0, 4.0)
MESH_SHAPES = ((4, 4), (6, 6), (8, 8))
RANDOM_SPOTS = ((24, 1), (48, 2))

BASE = Scenario(
    algorithm=AlgorithmSpec("wpaxos"),
    topology=TopologySpec("line", n=13),
    scheduler=SchedulerSpec("synchronous", f_ack=1.0))

CLIQUE_BASE = BASE.override({"topology": TopologySpec("clique", n=4)})
F_BASE = BASE.override({"label": "line(D=12)"})


def _mesh_zip(shapes=MESH_SHAPES):
    """Correlated (topology, label) axes for the grid spot checks."""
    return {"topology": [TopologySpec("grid", rows=r, cols=c)
                         for r, c in shapes],
            "label": [f"grid({r}x{c})" for r, c in shapes]}


def _random_zip(spots=RANDOM_SPOTS):
    """Correlated (topology, scheduler, label) random spot checks."""
    return {"topology": [TopologySpec("random", n=n, density=0.08,
                                      seed=seed) for n, seed in spots],
            "scheduler": [SchedulerSpec("random", f_ack=1.0, seed=seed)
                          for n, seed in spots],
            "label": [f"random({n})" for n, _ in spots]}


def manifest():
    """This experiment's row blocks as a scenario-native manifest."""
    from ..analysis.manifests import ExperimentManifest, ManifestBlock
    return ExperimentManifest(
        experiment="E2",
        title="wPAXOS scaling in multihop networks",
        blocks=[
            ManifestBlock("time-vs-D-lines", BASE,
                          axes={"topology.n": [int(d) + 1 for d
                                               in LINE_DIAMETERS]}),
            ManifestBlock("time-vs-n-cliques", CLIQUE_BASE,
                          axes={"topology.n": [int(n) for n
                                               in CLIQUE_SIZES]}),
            ManifestBlock("mesh-grids", BASE, zipped=_mesh_zip()),
            ManifestBlock("random-graphs", BASE,
                          zipped=_random_zip()),
            ManifestBlock("time-vs-fack", F_BASE,
                          axes={"scheduler.f_ack": list(F_SWEEP)}),
        ])


def run(*, line_diameters=LINE_DIAMETERS, clique_sizes=CLIQUE_SIZES,
        f_sweep=F_SWEEP, cache=None,
        workers=None) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E2",
        title="wPAXOS scaling in multihop networks",
        paper_claim=("Theorem 4.6: solves consensus in O(D * F_ack) "
                     "time with unique ids and knowledge of n"),
        headers=["topology", "n", "D", "F_ack", "correct",
                 "decision time", "time/(D*F_ack)"],
    )

    # --- time vs D on lines (parallel grid) ----------------------------
    line_series = BASE.grid(
        {"topology.n": [int(d) + 1 for d in line_diameters]},
    ).run(name="wpaxos", cache=cache, workers=workers)
    points = []
    for d, point in zip(line_diameters, line_series.points):
        metrics = point.metrics
        points.append((d, metrics.last_decision))
        report.add_row(f"line", metrics.n, d, 1.0, metrics.correct,
                       metrics.last_decision, metrics.time_per_diameter)
        if not metrics.correct:
            report.conclude(f"line D={d} failed", ok=False)
    slope, intercept = linear_fit([float(d) for d, _ in points],
                                  [t for _, t in points])
    report.conclude(
        f"time vs D on lines: slope={slope:.2f} x D x F_ack, "
        f"intercept={intercept:.2f} (claim: linear in D; constant "
        f"factor small)", ok=0.5 <= slope <= 12.0)

    # --- time vs n at fixed D (cliques, D=1; parallel grid) ------------
    clique_series = CLIQUE_BASE.grid(
        {"topology.n": [int(n) for n in clique_sizes]},
    ).run(name="wpaxos", cache=cache, workers=workers)
    clique_times = []
    for n, point in zip(clique_sizes, clique_series.points):
        metrics = point.metrics
        clique_times.append((n, metrics.last_decision))
        report.add_row("clique", n, 1, 1.0, metrics.correct,
                       metrics.last_decision, metrics.time_per_diameter)
    slope_n, _ = linear_fit([float(n) for n, _ in clique_times],
                            [t for _, t in clique_times])
    report.conclude(
        f"time vs n at fixed D=1: slope={slope_n:.4f} (claim: ~0, no "
        f"n dependence beyond D)", ok=abs(slope_n) < 0.1)

    # --- grids and random graphs (zipped spot-check grids) -------------
    mesh_series = BASE.grid(zipped=_mesh_zip()).run(
        name="wpaxos", cache=cache, workers=workers)
    for (rows, cols), point in zip(MESH_SHAPES, mesh_series.points):
        metrics = point.metrics
        report.add_row(f"grid {rows}x{cols}", metrics.n,
                       metrics.diameter, 1.0, metrics.correct,
                       metrics.last_decision, metrics.time_per_diameter)
    random_series = BASE.grid(zipped=_random_zip()).run(
        name="wpaxos", cache=cache, workers=workers)
    for (n, _seed), point in zip(RANDOM_SPOTS, random_series.points):
        metrics = point.metrics
        report.add_row(f"random({n})", metrics.n, metrics.diameter,
                       1.0, metrics.correct, metrics.last_decision,
                       metrics.time_per_diameter)
        if not metrics.correct:
            report.conclude(f"random n={n} failed", ok=False)

    # --- time vs F_ack (parallel grid) ---------------------------------
    f_series = F_BASE.grid(
        {"scheduler.f_ack": list(f_sweep)}).run(
        name="wpaxos", cache=cache, workers=workers)
    f_points = []
    for f_ack, point in zip(f_sweep, f_series.points):
        metrics = point.metrics
        f_points.append((f_ack, metrics.last_decision))
        report.add_row("line", metrics.n, 12, f_ack, metrics.correct,
                       metrics.last_decision, metrics.time_per_diameter)
    f_slope, _ = linear_fit([f for f, _ in f_points],
                            [t for _, t in f_points])
    report.conclude(
        f"time vs F_ack at D=12: slope={f_slope:.1f} (claim: linear "
        f"in F_ack)", ok=f_slope > 0)
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
