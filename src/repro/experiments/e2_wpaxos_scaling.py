"""E2 -- Theorem 4.6: wPAXOS decides in O(D * F_ack).

Regenerates three series:

* decision time vs diameter ``D`` on lines (the worst case): the claim
  is a linear fit in ``D`` with a modest constant;
* decision time vs ``n`` at (near-)fixed ``D`` on cliques and grids of
  growing width: the claim is no ``n`` dependence beyond ``D``;
* decision time vs ``F_ack``: linear.

Each row also re-verifies agreement/validity/termination and the model
invariants (the runner checks them on every trace).
"""

from __future__ import annotations

from ..analysis import linear_fit, parallel_sweep, run_consensus
from ..core.wpaxos import WPaxosConfig, WPaxosNode
from ..macsim.schedulers import (RandomDelayScheduler,
                                 SynchronousScheduler)
from ..topology import clique, grid, line, random_connected
from .common import ExperimentReport

LINE_DIAMETERS = (4, 9, 19, 29, 39)
CLIQUE_SIZES = (4, 8, 16, 32, 48)
F_SWEEP = (0.5, 1.0, 2.0, 4.0)


def _factory(graph):
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    n = graph.n

    def make(label, value):
        return WPaxosNode(uid=uid[label], initial_value=value, n=n,
                          config=WPaxosConfig())
    return make


def run(*, line_diameters=LINE_DIAMETERS, clique_sizes=CLIQUE_SIZES,
        f_sweep=F_SWEEP) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E2",
        title="wPAXOS scaling in multihop networks",
        paper_claim=("Theorem 4.6: solves consensus in O(D * F_ack) "
                     "time with unique ids and knowledge of n"),
        headers=["topology", "n", "D", "F_ack", "correct",
                 "decision time", "time/(D*F_ack)"],
    )

    # --- time vs D on lines (parallel sweep) ---------------------------
    def line_build(d):
        graph = line(int(d) + 1)
        return dict(graph=graph, scheduler=SynchronousScheduler(1.0),
                    factory=_factory(graph),
                    topology=f"line(D={int(d)})")

    line_series = parallel_sweep("wpaxos", line_diameters, line_build)
    points = []
    for d, point in zip(line_diameters, line_series.points):
        metrics = point.metrics
        points.append((d, metrics.last_decision))
        report.add_row(f"line", metrics.n, d, 1.0, metrics.correct,
                       metrics.last_decision, metrics.time_per_diameter)
        if not metrics.correct:
            report.conclude(f"line D={d} failed", ok=False)
    slope, intercept = linear_fit([float(d) for d, _ in points],
                                  [t for _, t in points])
    report.conclude(
        f"time vs D on lines: slope={slope:.2f} x D x F_ack, "
        f"intercept={intercept:.2f} (claim: linear in D; constant "
        f"factor small)", ok=0.5 <= slope <= 12.0)

    # --- time vs n at fixed D (cliques, D=1; parallel sweep) -----------
    def clique_build(n):
        graph = clique(int(n))
        return dict(graph=graph, scheduler=SynchronousScheduler(1.0),
                    factory=_factory(graph),
                    topology=f"clique({int(n)})")

    clique_series = parallel_sweep("wpaxos", clique_sizes, clique_build)
    clique_times = []
    for n, point in zip(clique_sizes, clique_series.points):
        metrics = point.metrics
        clique_times.append((n, metrics.last_decision))
        report.add_row("clique", n, 1, 1.0, metrics.correct,
                       metrics.last_decision, metrics.time_per_diameter)
    slope_n, _ = linear_fit([float(n) for n, _ in clique_times],
                            [t for _, t in clique_times])
    report.conclude(
        f"time vs n at fixed D=1: slope={slope_n:.4f} (claim: ~0, no "
        f"n dependence beyond D)", ok=abs(slope_n) < 0.1)

    # --- grids and random graphs ---------------------------------------
    for rows, cols in ((4, 4), (6, 6), (8, 8)):
        graph = grid(rows, cols)
        metrics = run_consensus(
            algorithm="wpaxos", topology=f"grid({rows}x{cols})",
            graph=graph, scheduler=SynchronousScheduler(1.0),
            factory=_factory(graph))
        report.add_row(f"grid {rows}x{cols}", graph.n,
                       metrics.diameter, 1.0, metrics.correct,
                       metrics.last_decision, metrics.time_per_diameter)
    for n, seed in ((24, 1), (48, 2)):
        graph = random_connected(n, 0.08, seed=seed)
        metrics = run_consensus(
            algorithm="wpaxos", topology=f"random({n})", graph=graph,
            scheduler=RandomDelayScheduler(1.0, seed=seed),
            factory=_factory(graph))
        report.add_row(f"random({n})", graph.n, metrics.diameter,
                       1.0, metrics.correct, metrics.last_decision,
                       metrics.time_per_diameter)
        if not metrics.correct:
            report.conclude(f"random n={n} failed", ok=False)

    # --- time vs F_ack (parallel sweep) --------------------------------
    def f_build(f_ack):
        graph = line(13)
        return dict(graph=graph, scheduler=SynchronousScheduler(f_ack),
                    factory=_factory(graph), topology="line(D=12)")

    f_series = parallel_sweep("wpaxos", f_sweep, f_build)
    f_points = []
    for f_ack, point in zip(f_sweep, f_series.points):
        metrics = point.metrics
        f_points.append((f_ack, metrics.last_decision))
        report.add_row("line", metrics.n, 12, f_ack, metrics.correct,
                       metrics.last_decision, metrics.time_per_diameter)
    f_slope, _ = linear_fit([f for f, _ in f_points],
                            [t for _, t in f_points])
    report.conclude(
        f"time vs F_ack at D=12: slope={f_slope:.1f} (claim: linear "
        f"in F_ack)", ok=f_slope > 0)
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
