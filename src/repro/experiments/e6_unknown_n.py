"""E6 -- Theorem 3.9 / Figure 2: knowledge of n is necessary.

For several diameters: the ``n``-ignorant (but id-using, D-knowing)
algorithm is correct on the isolated line ``L_D``, yet violates
agreement in ``K_D`` when the semi-synchronous scheduler silences the
contact endpoint -- the two executions its nodes cannot distinguish.
wPAXOS (which knows ``n``) is run on the same ``K_D`` networks as the
positive control.
"""

from __future__ import annotations

from ..analysis import run_consensus
from ..core.wpaxos import WPaxosConfig, WPaxosNode
from ..lowerbounds.partition import (isolated_line_success,
                                     kd_violation_demo)
from ..topology import kd_network
from .common import ExperimentReport

DIAMETERS = (3, 5, 7)


def run(*, diameters=DIAMETERS) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E6",
        title="Knowledge-of-n lower bound on K_D",
        paper_claim=("Theorem 3.9: without knowledge of n, consensus "
                     "is impossible in multihop networks even with "
                     "ids and knowledge of D"),
        headers=["D", "network", "algorithm", "line1 / line2 decide",
                 "outcome"],
    )
    for diameter in diameters:
        ok_line = isolated_line_success(diameter)
        report.add_row(diameter, f"L_{diameter} (isolated)",
                       "no-n stability", "-",
                       "correct" if ok_line else "FAILED")
        if not ok_line:
            report.conclude(f"isolated line D={diameter} failed",
                            ok=False)

        demo = kd_violation_demo(diameter)
        report.add_row(
            diameter, f"K_{diameter} (contact silenced)",
            "no-n stability",
            f"{sorted(demo.line1_decisions)} / "
            f"{sorted(demo.line2_decisions)}",
            "agreement VIOLATED" if demo.agreement_violated
            else "no violation (FAILED)")
        if not demo.agreement_violated:
            report.conclude(f"K_D D={diameter} did not violate",
                            ok=False)

        # Positive control: wPAXOS (knows n) is fine on K_D.
        net = kd_network(diameter)
        graph = net.graph
        uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
        from ..macsim.schedulers import SynchronousScheduler
        metrics = run_consensus(
            algorithm="wpaxos", topology=f"K_{diameter}", graph=graph,
            scheduler=SynchronousScheduler(1.0),
            factory=lambda v, val: WPaxosNode(uid[v], val, graph.n,
                                              WPaxosConfig()))
        report.add_row(diameter, f"K_{diameter}", "wpaxos (knows n)",
                       "-", "correct" if metrics.correct else "FAILED")
        if not metrics.correct:
            report.conclude(f"wPAXOS control on K_{diameter} failed",
                            ok=False)
    report.conclude(
        "the n-ignorant algorithm decides correctly on L_D but splits "
        "0/1 in K_D under the semi-synchronous scheduler -- the "
        "indistinguishability of Theorem 3.9, realized")
    report.conclude(
        "wPAXOS, which uses n for majorities, is correct on every "
        "K_D tested (knowledge of n is what breaks the symmetry)")
    return report


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
