"""E14 -- Consensus as a service: latency/throughput under load.

The paper's algorithms decide one instance; a deployment serves many
groups forever. This experiment drives the `repro.macsim.service`
stack -- closed-loop Zipf/lognormal workload, per-group slot batching,
multiplexed engines, optional fork-per-core sharding -- across a
groups x shards grid and sweeps offered load (client population),
reporting end-to-end p50/p99 request latency (virtual time units,
i.e. multiples of F_ack) and committed-request throughput.

What the table shows:

* **Latency grows with offered load at fixed capacity** -- queueing
  behind a group's in-flight slot dominates once arrivals outpace
  slot decision time. The ``queue p50`` / ``serve p50`` columns
  (request-span breakdown, PR 10) show it directly: the service
  component stays O(F_ack) while the queueing component absorbs the
  extra load.
* **Sharding is exact** -- the same (groups, clients) cell run on 1
  shard and on many produces the *same* latency sample (the workload
  derives every client from the seed alone), so shard count is purely
  a wall-clock knob.
* **Determinism anchor** -- the 1-group service's first slot is
  byte-identical to ``BASE.simulate()`` (the acceptance pin).
"""

from __future__ import annotations

from ..analysis.export import trace_to_json
from ..analysis.service_stats import reduce_spans
from ..macsim.service import ConsensusService, WorkloadGenerator, run_service
from ..scenario import AlgorithmSpec, Scenario, SchedulerSpec, TopologySpec
from .common import ExperimentReport

#: (groups, shards) capacity grid.
GRID = ((1, 1), (4, 1), (4, 2), (8, 2))
#: Offered load sweep: closed-loop client population.
LOADS = (40, 120, 240)

#: Per-slot consensus configuration every service cell derives from.
BASE = Scenario(
    algorithm=AlgorithmSpec("wpaxos"),
    topology=TopologySpec("clique", n=5),
    scheduler=SchedulerSpec("synchronous", f_ack=1.0),
    seed=0)


def run(*, grid=GRID, loads=LOADS, requests_per_client=2,
        workload_seed=0) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E14",
        title="Consensus as a service: p50/p99 latency and throughput "
              "vs offered load",
        paper_claim=("service regime (cf. Newport-Robinson "
                     "arXiv:1810.02848): multiplexed groups keep "
                     "deciding under sustained load; latency = "
                     "queueing + O(F_ack) decision time"),
        headers=["groups", "shards", "clients", "requests", "p50",
                 "p99", "queue p50", "serve p50", "throughput",
                 "slots", "req/slot"],
    )

    # Determinism anchor: slot (group 0, slot 0) of a 1-group service
    # is the base scenario itself, byte for byte.
    workload = WorkloadGenerator(groups=1, clients=min(loads),
                                 seed=workload_seed,
                                 requests_per_client=requests_per_client)
    probe = ConsensusService(BASE, workload, capture_first_slot=True)
    probe.run()
    identical = (trace_to_json(probe.first_slot_trace)
                 == trace_to_json(BASE.simulate().trace))
    report.conclude(
        "1-group service slot 0 trace byte-identical to "
        "BASE.simulate()", ok=identical)

    failures = 0
    by_cell = {}
    for groups, shards in grid:
        for clients in loads:
            # trace_requests splits each cell's latency into
            # queueing (enqueue -> batch admission) vs service
            # (slot execution) -- virtual time, zero effect on the
            # measured results (the tracer only annotates).
            rep = run_service(
                BASE, groups=groups, clients=clients, shards=shards,
                seed=workload_seed,
                requests_per_client=requests_per_client,
                trace_requests=True)
            failures += rep.failed
            latency = rep.latency
            breakdown = reduce_spans(rep.tracing)["breakdown"]
            req_per_slot = (rep.requests / rep.slots
                            if rep.slots else 0.0)
            report.add_row(
                groups, shards, clients, rep.requests,
                round(latency.get("p50", 0.0), 2),
                round(latency.get("p99", 0.0), 2),
                round(breakdown["queueing"].get("p50", 0.0), 2),
                round(breakdown["service"].get("p50", 0.0), 2),
                round(rep.throughput, 3),
                rep.slots, round(req_per_slot, 2))
            by_cell[(groups, shards, clients)] = rep

    report.conclude(f"all {sum(r.requests for r in by_cell.values())} "
                    f"requests committed, 0 failed slots",
                    ok=failures == 0)

    # Sharding exactness: same (groups, clients) cell across shard
    # counts must produce the same latency sample.
    shard_counts = {}
    for (groups, shards, clients) in by_cell:
        shard_counts.setdefault((groups, clients), []).append(shards)
    compared = 0
    exact = True
    for (groups, clients), counts in sorted(shard_counts.items()):
        if len(counts) < 2:
            continue
        baseline = by_cell[(groups, counts[0], clients)]
        for shards in counts[1:]:
            other = by_cell[(groups, shards, clients)]
            compared += 1
            if sorted(baseline.latencies) != sorted(other.latencies):
                exact = False
    if compared:
        report.conclude(
            f"sharding is exact: {compared} cross-shard cell pair(s) "
            f"have identical latency samples", ok=exact)

    # Queueing: at fixed capacity, mean latency grows with offered
    # load (closed-loop clients pile up behind in-flight slots).
    monotone_cells = 0
    for groups, shards in grid:
        means = [by_cell[(groups, shards, clients)].latency.get(
                     "mean", 0.0)
                 for clients in sorted(loads)
                 if (groups, shards, clients) in by_cell]
        if len(means) >= 2 and means[-1] > means[0]:
            monotone_cells += 1
    report.conclude(
        f"latency rises with offered load in {monotone_cells}/"
        f"{len(grid)} capacity cells (queueing regime reached)",
        ok=monotone_cells >= max(1, len(grid) // 2))

    return report


if __name__ == "__main__":
    print(run().render())
