"""Partition-argument reproductions: Theorems 3.9 and 3.10.

**Theorem 3.10** (``Omega(D * F_ack)`` time): on a line of diameter
``D`` under the slowest synchronous scheduler, information crosses one
hop per ``F_ack``. Any node deciding before ``floor(D/2) * F_ack``
cannot have heard from beyond its half of the line, so split inputs
force an agreement violation. This module provides both directions:

* :func:`measure_decision_time` -- run *correct* algorithms on the
  worst-case line and confirm their decision times respect the bound;
* :class:`EagerMinFlood` + :func:`eager_violation_demo` -- a strawman
  that decides after fewer than ``floor(D/2)`` rounds and is driven
  into the predicted agreement violation.

**Theorem 3.9** (knowledge of ``n`` required):
:func:`kd_violation_demo` instantiates Figure 2's ``K_D``, silences the
contact endpoint, and shows an id-using but ``n``-ignorant algorithm
deciding 0 in one ``L_D`` copy and 1 in the other, while
:func:`isolated_line_success` shows the same algorithm correct on the
isolated line -- the two executions its nodes cannot distinguish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..core.base import ConsensusProcess
from ..core.heuristics import NoSizeMinIdFlood, ValueSetMessage
from ..macsim import build_simulation, check_consensus
from ..macsim.schedulers import (MaxDelayScheduler, SilencingScheduler,
                                 SynchronousScheduler)
from ..topology import kd_network, line
from ..topology.gadgets import KDNetwork


# ---------------------------------------------------------------------------
# Theorem 3.10: the time lower bound
# ---------------------------------------------------------------------------
@dataclass
class TimingResult:
    """Decision timing of one algorithm on the worst-case line."""

    algorithm: str
    diameter: int
    f_ack: float
    first_decision: Optional[float]
    bound: float
    respects_bound: bool
    correct: bool


def measure_decision_time(factory: Callable[[Any, int, int], Any],
                          algorithm_name: str, diameter: int,
                          f_ack: float = 1.0) -> TimingResult:
    """Run an algorithm on ``line(D+1)`` under maximum delay.

    ``factory(label, index, n)`` builds the process for a node.
    Initial values are split: left half 0, right half 1 (the
    partition-argument inputs). The theorem asserts *no* correct
    algorithm's first decision can precede ``floor(D/2) * f_ack``.
    """
    graph = line(diameter + 1)
    n = graph.n
    values = {v: 0 if i <= diameter // 2 else 1
              for i, v in enumerate(graph.nodes)}
    scheduler = MaxDelayScheduler(f_ack)
    sim = build_simulation(
        graph, lambda v: factory(v, values[v], n), scheduler)
    result = sim.run(max_events=20_000_000)
    report = check_consensus(result.trace, values)
    times = result.trace.decision_times()
    first = min(times.values()) if times else None
    bound = (diameter // 2) * f_ack
    return TimingResult(
        algorithm=algorithm_name, diameter=diameter, f_ack=f_ack,
        first_decision=first, bound=bound,
        respects_bound=(first is None or first >= bound - 1e-9),
        correct=report.ok,
    )


class EagerMinFlood(ConsensusProcess):
    """Strawman that decides after a fixed number of rounds.

    Floods the set of values seen each MAC cycle and decides
    ``min(V)`` after ``rounds`` acks -- deliberately violating the
    Theorem 3.10 bound when ``rounds < floor(D/2)``.
    """

    def __init__(self, uid: Any, initial_value: int, rounds: int) -> None:
        super().__init__(uid=uid, initial_value=initial_value)
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = rounds
        self.values: FrozenSet[int] = frozenset([initial_value])
        self.acks = 0

    def on_start(self) -> None:
        self.broadcast(ValueSetMessage(values=self.values))

    def on_receive(self, message: Any) -> None:
        if isinstance(message, ValueSetMessage):
            self.values = self.values | message.values

    def on_ack(self) -> None:
        self.acks += 1
        if not self.decided and self.acks >= self.rounds:
            self.decide(min(self.values))
        if not self.decided:
            self.broadcast(ValueSetMessage(values=self.values))


@dataclass
class ViolationResult:
    """Outcome of an engineered agreement violation."""

    agreement_violated: bool
    decisions: Dict[Any, int]
    detail: str


def eager_violation_demo(diameter: int,
                         rounds: Optional[int] = None) -> ViolationResult:
    """Drive :class:`EagerMinFlood` into the Theorem 3.10 violation.

    With ``rounds < floor(D/2)`` (default ``floor(D/2) - 1`` and at
    least 1) on the split-input line under the synchronous scheduler,
    the left endpoint decides 0 and the right endpoint decides 1.
    """
    if rounds is None:
        rounds = max(1, diameter // 2 - 1)
    graph = line(diameter + 1)
    values = {v: 0 if i <= diameter // 2 else 1
              for i, v in enumerate(graph.nodes)}
    sim = build_simulation(
        graph, lambda v: EagerMinFlood(v, values[v], rounds),
        SynchronousScheduler(1.0))
    result = sim.run()
    decisions = result.trace.decisions()
    left = decisions.get(graph.nodes[0])
    right = decisions.get(graph.nodes[-1])
    return ViolationResult(
        agreement_violated=(len(set(decisions.values())) > 1),
        decisions=decisions,
        detail=(f"rounds={rounds} < floor(D/2)={diameter // 2}: left "
                f"endpoint decided {left}, right endpoint decided "
                f"{right}"),
    )


# ---------------------------------------------------------------------------
# Theorem 3.9: knowledge of n is required
# ---------------------------------------------------------------------------
@dataclass
class KDDemoResult:
    """Outcome of the Figure 2 construction."""

    network: KDNetwork
    agreement_violated: bool
    line1_decisions: set
    line2_decisions: set
    decisions: Dict[Any, int]


def kd_violation_demo(diameter: int, *, stability_factor: int = 3,
                      silence_rounds: Optional[float] = None
                      ) -> KDDemoResult:
    """Theorem 3.9's semi-synchronous execution in ``K_D``.

    All of line 1 starts with 0, all of line 2 with 1, the spine with
    arbitrary values (0 here). The contact endpoint is silenced long
    enough for both lines to run their isolated-line executions to
    decision; by indistinguishability they decide their own initial
    values -- an agreement violation.
    """
    net = kd_network(diameter)
    graph = net.graph
    uid = {v: i + 1 for i, v in enumerate(graph.nodes)}
    values: Dict[Any, int] = {}
    for v in net.line1:
        values[v] = 0
    for v in net.line2:
        values[v] = 1
    for v in net.spine:
        values[v] = 0
    if silence_rounds is None:
        # Generous cover for flood (~2D) + stability window (~3D).
        silence_rounds = float(
            10 * diameter * (stability_factor + 2) + 50)
    scheduler = SilencingScheduler(SynchronousScheduler(1.0),
                                   [net.contact], silence_rounds)
    sim = build_simulation(
        graph,
        lambda v: NoSizeMinIdFlood(uid[v], values[v], diameter,
                                   stability_factor=stability_factor),
        scheduler)
    result = sim.run(max_time=3 * silence_rounds,
                     max_events=20_000_000)
    decisions = result.trace.decisions()
    line1 = {decisions.get(v) for v in net.line1}
    line2 = {decisions.get(v) for v in net.line2}
    return KDDemoResult(
        network=net,
        agreement_violated=(len(set(decisions.values())) > 1),
        line1_decisions=line1,
        line2_decisions=line2,
        decisions=decisions,
    )


def isolated_line_success(diameter: int, *, stability_factor: int = 3,
                          values: Optional[List[int]] = None) -> bool:
    """The same ``n``-ignorant algorithm is correct on ``L_D`` alone.

    This is the other half of the indistinguishability argument: the
    executions the ``K_D`` nodes confuse with reality are *real,
    correct* executions of the algorithm in the isolated line.
    """
    graph = line(diameter + 1)
    if values is None:
        values = [i % 2 for i in range(graph.n)]
    value_map = {v: values[i] for i, v in enumerate(graph.nodes)}
    sim = build_simulation(
        graph,
        lambda v: NoSizeMinIdFlood(v + 1, value_map[v], diameter,
                                   stability_factor=stability_factor),
        SynchronousScheduler(1.0))
    result = sim.run(max_events=20_000_000)
    report = check_consensus(result.trace, value_map)
    return report.ok
