"""Indistinguishability harness: lock-step execution comparison.

The proofs of Theorems 3.3 and 3.9 argue that nodes in two different
networks pass through *identical state sequences* for a prefix of the
execution (Lemma 3.6's induction). This module verifies such claims
empirically: an observer snapshots every node's
``state_fingerprint()`` at each time advance (= each synchronous round
boundary), and :func:`compare_lockstep` checks that mapped nodes agree
snapshot-by-snapshot up to a horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple


class FingerprintObserver:
    """Record all nodes' state fingerprints at every time advance.

    Attach with ``simulator.add_observer`` *before* ``run``. Snapshots
    are taken when simulated time moves, i.e. after every event at the
    previous timestamp has been processed -- under the synchronous
    scheduler this is exactly "state at the end of each round".
    """

    def __init__(self) -> None:
        self.snapshots: List[Tuple[float, Dict[Any, Any]]] = []

    def on_time_advance(self, sim, new_time: float) -> None:
        self._snap(sim)

    def on_finish(self, sim) -> None:
        self._snap(sim)

    def _snap(self, sim) -> None:
        states = {v: sim.process_at(v).state_fingerprint()
                  for v in sim.graph.nodes}
        self.snapshots.append((sim.now, states))

    def sequence_for(self, node: Any, until_time: float
                     ) -> List[Tuple[float, Any]]:
        """The (time, fingerprint) sequence of one node up to a horizon."""
        return [(t, states[node]) for t, states in self.snapshots
                if t <= until_time + 1e-9]


@dataclass
class LockstepReport:
    """Outcome of a lock-step comparison."""

    identical: bool
    compared_pairs: int
    mismatches: List[tuple] = field(default_factory=list)

    def describe(self) -> str:
        if self.identical:
            return (f"all {self.compared_pairs} node pairs "
                    f"indistinguishable")
        first = self.mismatches[0]
        return (f"{len(self.mismatches)} mismatching pairs; first: "
                f"{first!r}")


def compare_lockstep(obs_a: FingerprintObserver,
                     obs_b: FingerprintObserver,
                     mapping: Mapping[Any, Sequence[Any]],
                     until_time: float) -> LockstepReport:
    """Check that each node of run A matches its images in run B.

    ``mapping[u]`` lists the nodes of run B whose state sequences must
    equal ``u``'s (for the Figure 1 covering argument these are the
    three covers ``S_u``). Sequences are compared as (time,
    fingerprint) lists truncated to ``until_time``.
    """
    mismatches: List[tuple] = []
    compared = 0
    for node_a, images in mapping.items():
        seq_a = obs_a.sequence_for(node_a, until_time)
        for node_b in images:
            compared += 1
            seq_b = obs_b.sequence_for(node_b, until_time)
            if len(seq_a) != len(seq_b):
                mismatches.append(
                    (node_a, node_b, "length",
                     len(seq_a), len(seq_b)))
                continue
            for (ta, fa), (tb, fb) in zip(seq_a, seq_b):
                if abs(ta - tb) > 1e-9 or fa != fb:
                    mismatches.append((node_a, node_b, ta, fa, fb))
                    break
    return LockstepReport(identical=not mismatches,
                          compared_pairs=compared,
                          mismatches=mismatches)
