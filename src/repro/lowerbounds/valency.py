"""Valency analysis: exhaustive bivalence exploration (Theorem 3.2).

Following Section 3.1's definitions: an execution prefix (here: a
reachable :class:`~repro.lowerbounds.steps.Configuration`) is

* *bivalent* if valid-step extensions can reach decisions of both 0
  and 1;
* *v-valent* if every decision-reaching extension decides ``v``.

:class:`ValencyAnalyzer` enumerates the full reachable configuration
space of a :class:`~repro.lowerbounds.steps.StepSystem` (configurations
are hashable, the space is finite for terminating algorithms) and
computes every configuration's reachable-decision set by backward
fixpoint over the transition graph -- cycles (e.g. post-decision noop
loops) are handled by iterating to fixpoint rather than recursing.

With this machinery the experiments verify, for concrete algorithms:

* a bivalent *initial* configuration exists (the FLP "Lemma 2" analog);
* from every explored bivalent configuration and every node ``u``,
  some finite valid extension keeps ``alpha . s_u`` bivalent --
  Lemma 3.1, checked exhaustively rather than assumed.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .steps import Configuration, Step, StepSystem


@dataclass
class ExplorationResult:
    """The explored configuration space and its valency classification."""

    system: StepSystem
    initial: Configuration
    reachable: Dict[Configuration, List[Tuple[Step, Configuration]]]
    values: Dict[Configuration, FrozenSet[int]]
    truncated: bool

    # ------------------------------------------------------------------
    def valency(self, config: Configuration) -> Optional[FrozenSet[int]]:
        """Reachable decision values from ``config`` (None if unknown)."""
        return self.values.get(config)

    def is_bivalent(self, config: Configuration) -> bool:
        return self.values.get(config) == frozenset({0, 1})

    def bivalent_configurations(self) -> List[Configuration]:
        return [c for c, vals in self.values.items()
                if vals == frozenset({0, 1})]

    @property
    def config_count(self) -> int:
        return len(self.reachable)


class ValencyAnalyzer:
    """Exhaustively classify the reachable configurations of a system."""

    def __init__(self, system: StepSystem,
                 max_configs: int = 2_000_000) -> None:
        self.system = system
        self.max_configs = max_configs

    def explore(self, initial: Configuration) -> ExplorationResult:
        """BFS the reachable space, then fixpoint the decision sets."""
        system = self.system
        reachable: Dict[Configuration,
                        List[Tuple[Step, Configuration]]] = {}
        queue = deque([initial])
        truncated = False
        while queue:
            config = queue.popleft()
            if config in reachable:
                continue
            if len(reachable) >= self.max_configs:
                truncated = True
                break
            successors: List[Tuple[Step, Configuration]] = []
            for step in system.valid_steps(config):
                nxt = system.apply(config, step)
                successors.append((step, nxt))
                if nxt not in reachable:
                    queue.append(nxt)
            reachable[config] = successors

        values = self._fixpoint_values(reachable)
        return ExplorationResult(system=system, initial=initial,
                                 reachable=reachable, values=values,
                                 truncated=truncated)

    def _fixpoint_values(
            self, reachable: Dict[Configuration,
                                  List[Tuple[Step, Configuration]]]
    ) -> Dict[Configuration, FrozenSet[int]]:
        """Backward-propagate decided values until stable."""
        algorithm = self.system.algorithm
        values: Dict[Configuration, set] = {
            c: set(c.decided_values(algorithm)) for c in reachable
        }
        changed = True
        while changed:
            changed = False
            for config, successors in reachable.items():
                acc = values[config]
                before = len(acc)
                for _, nxt in successors:
                    acc |= values.get(nxt, set())
                if len(acc) != before:
                    changed = True
        return {c: frozenset(v) for c, v in values.items()}


# ---------------------------------------------------------------------------
# Lemma 3.1 verification
# ---------------------------------------------------------------------------
@dataclass
class Lemma31Witness:
    """A verified instance of Lemma 3.1.

    From ``start`` (bivalent), the valid-step extension ``extension``
    reaches a configuration whose unique next valid step of ``node``
    preserves bivalence.
    """

    node: int
    start: Configuration
    extension: List[Step] = field(default_factory=list)
    found: bool = False


def verify_lemma_31(result: ExplorationResult, start: Configuration,
                    node: int, max_depth: int = 10_000) -> Lemma31Witness:
    """Search for the extension Lemma 3.1 guarantees to exist.

    BFS from ``start`` through *non-crash* valid steps, looking for a
    configuration ``c`` such that ``c . s_node`` is bivalent, where
    ``s_node`` is ``node``'s unique valid next step.
    """
    system = result.system
    witness = Lemma31Witness(node=node, start=start)
    seen = {start}
    queue = deque([(start, [])])
    while queue:
        config, path = queue.popleft()
        if len(path) > max_depth:
            break
        step_u = system.next_valid_step_of(config, node)
        if step_u is not None:
            after = system.apply(config, step_u)
            if result.values.get(after) == frozenset({0, 1}):
                witness.extension = path
                witness.found = True
                return witness
        for step in system.valid_steps(config, include_crashes=False):
            nxt = system.apply(config, step)
            if nxt not in seen:
                seen.add(nxt)
                queue.append((nxt, path + [step]))
    return witness


def extend_bivalent_round_robin(result: ExplorationResult,
                                rounds: int) -> List[Configuration]:
    """Build a bivalence-preserving execution (Theorem 3.2's engine).

    Starting from the initial configuration, repeatedly apply Lemma 3.1
    for each node in round-robin order, producing an execution that is
    fair (every node keeps taking steps) yet remains bivalent -- the
    execution whose existence contradicts termination. Returns the
    per-round configurations (length ``rounds * n + 1`` checkpoints at
    most); raises if bivalence could not be maintained.

    Note the dichotomy Theorem 3.2 rests on: Lemma 3.1 holds for every
    *1-crash-tolerant* algorithm, so for such algorithms this function
    would run forever -- contradicting termination. For an algorithm
    that is **not** crash-tolerant (e.g. Two-Phase Consensus), the
    lemma may fail at some node, this function raises, and the E7
    experiment instead exhibits the crash execution that breaks the
    algorithm (see :func:`find_crash_termination_violation`).
    """
    system = result.system
    config = result.initial
    if result.values.get(config) != frozenset({0, 1}):
        raise ValueError("initial configuration is not bivalent")
    checkpoints = [config]
    for _ in range(rounds):
        for node in range(system.n):
            if node in config.crashed:
                continue
            witness = verify_lemma_31(result, config, node)
            if not witness.found:
                raise AssertionError(
                    f"Lemma 3.1 failed empirically at node {node}")
            for step in witness.extension:
                config = system.apply(config, step)
            step_u = system.next_valid_step_of(config, node)
            assert step_u is not None
            config = system.apply(config, step_u)
            assert result.values.get(config) == frozenset({0, 1})
        checkpoints.append(config)
    return checkpoints


# ---------------------------------------------------------------------------
# Crash-induced non-termination (the other horn of the dichotomy)
# ---------------------------------------------------------------------------
@dataclass
class TerminationViolation:
    """A reachable configuration from which some alive node never decides.

    ``config`` has ``crashed`` non-empty; ``stuck_node`` is alive yet
    undecided in *every* configuration reachable from ``config`` --
    the concrete 1-crash termination violation Theorem 3.2 predicts
    for algorithms (like Two-Phase Consensus) that are correct without
    failures.
    """

    config: Configuration
    stuck_node: int
    reachable_size: int


def find_crash_termination_violation(
        result: ExplorationResult) -> Optional[TerminationViolation]:
    """Search the explored space for a crash-induced deadlock.

    For each reachable configuration with a crash, compute its forward
    closure inside the explored graph and report the first alive node
    that stays undecided throughout. Exhaustive over the explored
    space, so a ``None`` result means the algorithm tolerates the
    crash budget on this instance.
    """
    algorithm = result.system.algorithm
    for config in result.reachable:
        if not config.crashed:
            continue
        alive = [i for i in range(result.system.n)
                 if i not in config.crashed]
        closure = _forward_closure(result, config)
        for node in alive:
            if all(algorithm.decision(c.states[node]) is None
                   for c in closure):
                return TerminationViolation(config=config,
                                            stuck_node=node,
                                            reachable_size=len(closure))
    return None


def _forward_closure(result: ExplorationResult,
                     config: Configuration) -> List[Configuration]:
    seen = {config}
    queue = deque([config])
    while queue:
        current = queue.popleft()
        for _, nxt in result.reachable.get(current, ()):
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return list(seen)


def bivalent_initial_configurations(
        system: StepSystem,
        analyzer: Optional[ValencyAnalyzer] = None
) -> List[Tuple[Tuple[int, ...], ExplorationResult]]:
    """Classify every binary initial configuration of a system.

    Returns the (values, exploration) pairs whose initial configuration
    is bivalent -- the FLP "Lemma 2" existence argument, checked
    exhaustively over all 2^n binary input vectors.
    """
    analyzer = analyzer or ValencyAnalyzer(system)
    bivalent = []
    for values in itertools.product((0, 1), repeat=system.n):
        result = analyzer.explore(system.initial_configuration(values))
        if result.is_bivalent(result.initial):
            bivalent.append((values, result))
    return bivalent
