"""Executable reproductions of the paper's lower bounds (Section 3)."""

from .anonymity import AnonymityDemoResult, run_anonymity_demo
from .flp import (NoopMessage, StepTwoPhase, TPState,
                  build_witness_deadlock_execution)
from .indist import FingerprintObserver, LockstepReport, compare_lockstep
from .partition import (EagerMinFlood, KDDemoResult, TimingResult,
                        ViolationResult, eager_violation_demo,
                        isolated_line_success, kd_violation_demo,
                        measure_decision_time)
from .steps import Configuration, Step, StepAlgorithm, StepSystem
from .valency import (ExplorationResult, Lemma31Witness,
                      TerminationViolation, ValencyAnalyzer,
                      bivalent_initial_configurations,
                      extend_bivalent_round_robin,
                      find_crash_termination_violation, verify_lemma_31)

__all__ = [
    "run_anonymity_demo",
    "AnonymityDemoResult",
    "StepTwoPhase",
    "TPState",
    "NoopMessage",
    "build_witness_deadlock_execution",
    "FingerprintObserver",
    "LockstepReport",
    "compare_lockstep",
    "measure_decision_time",
    "eager_violation_demo",
    "kd_violation_demo",
    "isolated_line_success",
    "EagerMinFlood",
    "TimingResult",
    "ViolationResult",
    "KDDemoResult",
    "StepAlgorithm",
    "StepSystem",
    "Step",
    "Configuration",
    "ValencyAnalyzer",
    "ExplorationResult",
    "Lemma31Witness",
    "TerminationViolation",
    "verify_lemma_31",
    "extend_bivalent_round_robin",
    "find_crash_termination_violation",
    "bivalent_initial_configurations",
]
