"""Theorem 3.3 reproduction: anonymous consensus is impossible.

The driver assembles the full Figure 1 argument as an executable
pipeline:

1. Build the network pair ``(A, B)`` and machine-check Claim 3.4's
   properties (equal size, equal diameter) and the covering property
   (*) behind Lemma 3.6.
2. Run the anonymous algorithm in ``B`` twice -- all inputs 0, all
   inputs 1 -- with the pendant silenced, establishing Lemma 3.5's
   ``t`` (both runs terminate, deciding their common input).
3. Run it in ``A`` with gadget copy ``b`` holding input ``b`` and the
   bridge silenced past ``t``.
4. Verify Lemma 3.6 *empirically*: for every gadget node ``u``, the
   per-round state fingerprints of ``u`` in the A-run equal those of
   all three covers ``S_u`` in the matching B-run, for the entire
   silence window.
5. Observe the contradiction: copy 0 decides 0, copy 1 decides 1 --
   agreement fails in a single execution of a diameter-``D``,
   size-``n'`` network, despite the algorithm knowing both ``n'`` and
   ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..core.heuristics import AnonymousMinFlood
from ..macsim import Simulator, build_simulation
from ..macsim.schedulers import SilencingScheduler, SynchronousScheduler
from ..topology import gadget, network_a, network_b
from ..topology.gadgets import check_covering, verify_figure1
from .indist import FingerprintObserver, LockstepReport, compare_lockstep

#: Factory signature: (label, initial value, n, diameter) -> process.
AnonymousFactory = Callable[[Any, int, int, int], Any]


def default_factory(label: Any, value: int, n: int, diameter: int):
    """The stock anonymous algorithm used by the experiments."""
    return AnonymousMinFlood(label, value, n, diameter)


@dataclass
class AnonymityDemoResult:
    """Everything Theorem 3.3's argument produces, measured."""

    d: int
    k: int
    size: int
    diameter: int
    construction_ok: bool
    b_run_decisions: Dict[int, set]  # input b -> set of decided values
    b_run_horizon: float
    lockstep_reports: Dict[int, LockstepReport]  # per input b
    a_decisions_copy0: set
    a_decisions_copy1: set
    agreement_violated: bool

    @property
    def indistinguishable(self) -> bool:
        return all(r.identical for r in self.lockstep_reports.values())

    @property
    def theorem_holds(self) -> bool:
        """The full chain of the reproduction succeeded."""
        return (self.construction_ok and self.indistinguishable
                and self.agreement_violated
                and self.b_run_decisions[0] == {0}
                and self.b_run_decisions[1] == {1})


def _run_network_b(d: int, k: int, input_value: int,
                   factory: AnonymousFactory,
                   silence: float) -> tuple:
    net = network_b(d, k)
    graph = net.graph
    n, diameter = graph.n, 2 * d + 2
    values = {v: input_value for v in graph.nodes}
    scheduler = SilencingScheduler(SynchronousScheduler(1.0),
                                   [net.pendant], silence)
    sim = build_simulation(
        graph, lambda v: factory(v, values[v], n, diameter), scheduler)
    observer = FingerprintObserver()
    sim.add_observer(observer)
    result = sim.run(max_time=3 * silence, max_events=20_000_000)
    return net, result, observer


def _run_network_a(d: int, k: int, factory: AnonymousFactory,
                   silence: float) -> tuple:
    net = network_a(d, k)
    graph = net.graph
    n, diameter = graph.n, 2 * d + 2
    values: Dict[Any, int] = {}
    for b in (0, 1):
        for v in net.copies[b]:
            values[v] = b
    values[net.bridge] = 0
    for v in net.clique:
        values[v] = 0
    scheduler = SilencingScheduler(SynchronousScheduler(1.0),
                                   [net.bridge], silence)
    sim = build_simulation(
        graph, lambda v: factory(v, values[v], n, diameter), scheduler)
    observer = FingerprintObserver()
    sim.add_observer(observer)
    result = sim.run(max_time=3 * silence, max_events=20_000_000)
    return net, result, observer


def run_anonymity_demo(d: int = 3, k: int = 0,
                       factory: AnonymousFactory = default_factory,
                       silence: Optional[float] = None
                       ) -> AnonymityDemoResult:
    """Execute the full Theorem 3.3 pipeline (see module docstring)."""
    report = verify_figure1(d, k)
    spec = gadget(d, k)
    if silence is None:
        # Cover the anonymous algorithm's decision horizon generously:
        # stability threshold is ~(n + D), so 3(n + D) rounds suffice.
        silence = float(3 * (report.size_a + report.expected_diameter)
                        + 30)

    # Lemma 3.5: the two B-executions terminate, deciding their input.
    b_runs = {}
    b_decisions: Dict[int, set] = {}
    horizon = 0.0
    for b in (0, 1):
        net_b, result, observer = _run_network_b(d, k, b, factory,
                                                 silence)
        b_runs[b] = (net_b, result, observer)
        decided = set(result.trace.decisions().values())
        b_decisions[b] = decided
        last = result.trace.last_decision_time() or 0.0
        horizon = max(horizon, last)

    # The A-execution with the silenced bridge.
    net_a, result_a, observer_a = _run_network_a(d, k, factory, silence)

    # Lemma 3.6, empirically: u in copy b matches all covers S_u.
    lockstep: Dict[int, LockstepReport] = {}
    for b in (0, 1):
        net_b, _, observer_b = b_runs[b]
        mapping = {
            f"g{b}.{name}": list(net_b.covers[name])
            for name in spec.names
        }
        lockstep[b] = compare_lockstep(observer_a, observer_b, mapping,
                                       until_time=min(horizon,
                                                      silence - 1.0))

    decisions_a = result_a.trace.decisions()
    copy0 = {decisions_a.get(v) for v in net_a.copies[0]}
    copy1 = {decisions_a.get(v) for v in net_a.copies[1]}

    return AnonymityDemoResult(
        d=d, k=k, size=report.size_a,
        diameter=report.expected_diameter,
        construction_ok=report.ok,
        b_run_decisions=b_decisions,
        b_run_horizon=horizon,
        lockstep_reports=lockstep,
        a_decisions_copy0=copy0,
        a_decisions_copy1=copy1,
        agreement_violated=(len(
            set(decisions_a.values())) > 1),
    )
