"""Theorem 3.2 reproduction: consensus fails with one crash.

Two executable artifacts back the theorem:

1. :class:`StepTwoPhase` -- Algorithm 1 re-expressed in the pure
   valid-step interface, so the valency machinery can exhaustively
   analyse it: a bivalent initial configuration exists, and with a
   crash budget of one the algorithm has reachable configurations in
   which some non-crashed node can never decide.
2. :func:`build_witness_deadlock_execution` -- the concrete timed
   execution in which a mid-broadcast crash deadlocks Two-Phase
   Consensus's witness wait: ``u`` (status ``decided(0)``) crashes
   after its phase-2 message reaches ``v`` but not ``w``; ``w`` holds
   ``u`` in its witness set and blocks forever. One crash, termination
   violated -- exactly the failure mode Theorem 3.2 proves is
   unavoidable for *every* deterministic algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Optional, Tuple

from ..core.twophase import BIVALENT, Phase1Message, Phase2Message
from ..macsim import CrashPlan, Simulator, build_simulation
from ..macsim.schedulers import ScriptedScheduler, ScriptedStep
from ..topology import clique
from .steps import StepAlgorithm


@dataclass(frozen=True)
class NoopMessage:
    """Placeholder message sent by nodes that finished the protocol.

    The valid-step model assumes nodes always send; terminated nodes
    cycle on noops, which the valency explorer's memoization folds
    into finitely many configurations.
    """

    sender: int

    def id_footprint(self) -> int:
        return 1


@dataclass(frozen=True)
class TPState:
    """Hashable Two-Phase node state for the step model."""

    uid: int
    value: int
    phase: str  # "phase1" | "phase2" | "witness" | "done"
    status: Any
    r1: FrozenSet[Any]
    r2: FrozenSet[Any]
    witnesses: FrozenSet[int]
    decision: Optional[int]


class StepTwoPhase(StepAlgorithm):
    """Algorithm 1 as a pure :class:`StepAlgorithm`.

    Mirrors :class:`repro.core.twophase.TwoPhaseConsensus` with the
    corrected (R1 union R2) decision check and early decide; the
    equivalence of the two implementations is covered by tests that
    run both under matching schedules.
    """

    def initial_state(self, uid: int, value: int) -> TPState:
        own = Phase1Message(sender=uid, value=value)
        return TPState(uid=uid, value=value, phase="phase1",
                       status=None, r1=frozenset([own]), r2=frozenset(),
                       witnesses=frozenset(), decision=None)

    # ------------------------------------------------------------------
    def message(self, state: TPState) -> Any:
        if state.phase == "phase1":
            return Phase1Message(sender=state.uid, value=state.value)
        if state.phase == "phase2":
            return Phase2Message(sender=state.uid, status=state.status)
        return NoopMessage(sender=state.uid)

    # ------------------------------------------------------------------
    def on_receive(self, state: TPState, message: Any) -> TPState:
        if isinstance(message, NoopMessage):
            return state
        if state.phase == "phase1":
            return _replace(state, r1=state.r1 | {message})
        if state.phase == "phase2":
            return _replace(state, r2=state.r2 | {message})
        if state.phase == "witness" and isinstance(message, Phase2Message):
            return self._check_witnesses(
                _replace(state, r2=state.r2 | {message}))
        return state

    def on_ack(self, state: TPState) -> TPState:
        if state.phase == "phase1":
            other = 1 - state.value
            saw_other = any(isinstance(m, Phase1Message)
                            and m.value == other for m in state.r1)
            saw_bivalent = any(isinstance(m, Phase2Message)
                               and m.is_bivalent for m in state.r1)
            status = (BIVALENT if saw_other or saw_bivalent
                      else ("decided", state.value))
            own = Phase2Message(sender=state.uid, status=status)
            return _replace(state, phase="phase2", status=status,
                            r2=state.r2 | {own})
        if state.phase == "phase2":
            if state.status != BIVALENT:
                return _replace(state, phase="done",
                                decision=state.status[1])
            witnesses = frozenset(
                m.sender for m in state.r1 | state.r2
                if isinstance(m, (Phase1Message, Phase2Message)))
            return self._check_witnesses(
                _replace(state, phase="witness", witnesses=witnesses))
        return state

    def decision(self, state: TPState) -> Optional[int]:
        return state.decision

    # ------------------------------------------------------------------
    def _check_witnesses(self, state: TPState) -> TPState:
        heard = state.r1 | state.r2
        phase2_senders = {m.sender for m in heard
                          if isinstance(m, Phase2Message)}
        if not state.witnesses <= phase2_senders:
            return state
        decided_zero = any(isinstance(m, Phase2Message)
                           and m.decided_value() == 0 for m in heard)
        return _replace(state, phase="done",
                        decision=0 if decided_zero else 1)


def _replace(state: TPState, **kwargs) -> TPState:
    fields = dict(uid=state.uid, value=state.value, phase=state.phase,
                  status=state.status, r1=state.r1, r2=state.r2,
                  witnesses=state.witnesses, decision=state.decision)
    fields.update(kwargs)
    return TPState(**fields)


# ---------------------------------------------------------------------------
# The concrete timed counterexample
# ---------------------------------------------------------------------------
def build_witness_deadlock_execution() -> Simulator:
    """Timed 3-clique execution where one crash deadlocks Two-Phase.

    Construction (nodes 0, 1, 2 with values 0, 1, 1):

    * Node 0's phase-1 completes instantly (delivered + acked at t=1)
      before it hears anyone, so its status is ``decided(0)``.
    * Node 0's phase-2 (``decided(0)``) reaches node 1 at t=2, then
      node 0 *crashes mid-broadcast* at t=3: node 2 never receives it.
    * Nodes 1 and 2 finish phase 1 at t=6/t=6.5, both bivalent (they
      saw value 0 and value 1); both hold node 0 in their witness set.
    * Node 1 eventually holds node 0's phase-2 (from R1) and node 2's,
      and decides 0. Node 2 waits for node 0's phase-2 forever.

    Run the returned simulator and check: node 1 decides 0, node 2
    never decides -- a termination violation caused by a single crash.
    """
    from ..core.twophase import TwoPhaseConsensus

    graph = clique(3)
    values = {0: 0, 1: 1, 2: 1}
    scripts = {
        0: [
            # phase 1: deliver to both at 1, ack at 1.
            ScriptedStep(delivery_offsets={1: 1.0, 2: 1.0},
                         ack_offset=1.0),
            # phase 2 (starts t=1): node 1 gets it at t=2; node 2's
            # delivery is scheduled late and cancelled by the crash.
            ScriptedStep(delivery_offsets={1: 1.0, 2: 90.0},
                         ack_offset=90.0),
        ],
        1: [
            # phase 1: deliveries at t=6, ack at t=6.
            ScriptedStep(delivery_offsets={0: 6.0, 2: 6.0},
                         ack_offset=6.0),
            # phase 2 (starts t=6): deliveries at t=7.5 (node 0 is
            # crashed by then; its delivery is skipped), ack t=7.5.
            ScriptedStep(delivery_offsets={0: 1.5, 2: 1.5},
                         ack_offset=1.5),
        ],
        2: [
            # phase 1: deliveries at t=6.5.
            ScriptedStep(delivery_offsets={0: 6.5, 1: 6.5},
                         ack_offset=6.5),
            # phase 2 (starts t=6.5): deliveries at t=8.
            ScriptedStep(delivery_offsets={0: 1.5, 1: 1.5},
                         ack_offset=1.5),
        ],
    }
    scheduler = ScriptedScheduler(scripts, f_ack=100.0)
    crashes = [CrashPlan(node=0, time=3.0,
                         still_delivered=frozenset())]
    return build_simulation(
        graph,
        lambda v: TwoPhaseConsensus(uid=v, initial_value=values[v]),
        scheduler,
        crashes=crashes,
    )
