"""The valid-step execution model of Section 3.1.

The paper's FLP generalization (Theorem 3.2) replaces the timed model
with a discrete transition system. Nodes always send: on receiving an
ack they immediately begin their next broadcast. A *step of node u* is:

* (a) some node ``v != u`` receiving ``u``'s current message -- *valid*
  iff ``v`` has not yet received it and every non-crashed node smaller
  than ``v`` (in a fixed order) already has;
* (b) ``u`` receiving an ack -- *valid* iff every non-crashed neighbor
  has received ``u``'s current message.

Restricting to valid steps fixes a canonical well-behaved scheduler
under which each node has exactly *one* valid next step -- the property
Lemma 3.1's proof relies on ("s_u is well-defined").

Crashes are modelled as adversary moves that silence a node: a crashed
node takes no further steps, so neighbors that have not yet received
its in-flight message never will (the paper's mid-broadcast crash).

Algorithms are expressed against the small pure-functional
:class:`StepAlgorithm` interface so that configurations are hashable
and the :mod:`repro.lowerbounds.valency` explorer can enumerate the
reachable execution space exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterator, List, Optional, Tuple


class StepAlgorithm:
    """Deterministic algorithm interface for the valid-step model.

    States and messages must be hashable; all methods must be pure.
    """

    def initial_state(self, uid: int, value: int) -> Any:
        """State of node ``uid`` with consensus input ``value``."""
        raise NotImplementedError

    def message(self, state: Any) -> Any:
        """The node's current outgoing message (nodes always send)."""
        raise NotImplementedError

    def on_receive(self, state: Any, message: Any) -> Any:
        """State after receiving a message."""
        raise NotImplementedError

    def on_ack(self, state: Any) -> Any:
        """State after the current broadcast is acknowledged."""
        raise NotImplementedError

    def decision(self, state: Any) -> Optional[int]:
        """The decided value, or ``None`` if undecided."""
        raise NotImplementedError


@dataclass(frozen=True)
class Step:
    """One transition: a receive, an ack, or an adversary crash."""

    kind: str  # "receive" | "ack" | "crash"
    node: int  # the node whose step this is (sender for receives)
    receiver: Optional[int] = None  # for receives

    def describe(self) -> str:
        if self.kind == "receive":
            return f"{self.receiver} receives from {self.node}"
        if self.kind == "ack":
            return f"{self.node} is acked"
        return f"{self.node} crashes"


@dataclass(frozen=True)
class Configuration:
    """A global configuration of the valid-step system.

    ``states[i]`` is node ``i``'s algorithm state; ``received[i]`` the
    set of nodes that already received node ``i``'s current message;
    ``crashed`` the silenced nodes.
    """

    states: Tuple[Any, ...]
    received: Tuple[FrozenSet[int], ...]
    crashed: FrozenSet[int]

    def decided_values(self, algorithm: StepAlgorithm) -> FrozenSet[int]:
        """Values decided by non-crashed nodes in this configuration."""
        out = set()
        for i, state in enumerate(self.states):
            if i in self.crashed:
                continue
            decision = algorithm.decision(state)
            if decision is not None:
                out.add(decision)
        return frozenset(out)

    def all_alive_decided(self, algorithm: StepAlgorithm) -> bool:
        return all(algorithm.decision(s) is not None
                   for i, s in enumerate(self.states)
                   if i not in self.crashed)


class StepSystem:
    """The transition system over :class:`Configuration`.

    Parameters
    ----------
    graph:
        Communication topology; node labels must be the integers
        ``0..n-1`` (use :func:`repro.topology.standard.clique` etc.).
    algorithm:
        The :class:`StepAlgorithm` under analysis.
    crash_budget:
        Maximum number of adversary crash moves (1 for Theorem 3.2).
    """

    def __init__(self, graph, algorithm: StepAlgorithm,
                 crash_budget: int = 0) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.crash_budget = crash_budget
        self.n = graph.n
        if list(graph.nodes) != list(range(self.n)):
            raise ValueError(
                "StepSystem requires integer node labels 0..n-1")

    # ------------------------------------------------------------------
    def initial_configuration(self, values: Tuple[int, ...]
                              ) -> Configuration:
        if len(values) != self.n:
            raise ValueError("one initial value per node required")
        states = tuple(self.algorithm.initial_state(i, values[i])
                       for i in range(self.n))
        received = tuple(frozenset() for _ in range(self.n))
        return Configuration(states=states, received=received,
                             crashed=frozenset())

    # ------------------------------------------------------------------
    # Step enumeration
    # ------------------------------------------------------------------
    def valid_steps(self, config: Configuration,
                    include_crashes: bool = True) -> List[Step]:
        """All valid steps (and legal crash moves) from ``config``."""
        steps: List[Step] = []
        for u in range(self.n):
            if u in config.crashed:
                continue
            step = self.next_valid_step_of(config, u)
            if step is not None:
                steps.append(step)
        if include_crashes and len(config.crashed) < self.crash_budget:
            steps.extend(Step(kind="crash", node=u)
                         for u in range(self.n)
                         if u not in config.crashed)
        return steps

    def next_valid_step_of(self, config: Configuration,
                           u: int) -> Optional[Step]:
        """The unique valid step of node ``u`` (Lemma 3.1's ``s_u``).

        Returns the lowest-ordered neighbor still missing ``u``'s
        message, or the ack once every non-crashed neighbor has it, or
        ``None`` if ``u`` is crashed (or isolated with nothing to do).
        """
        if u in config.crashed:
            return None
        pending = [v for v in self.graph.neighbors(u)
                   if v not in config.crashed
                   and v not in config.received[u]]
        if pending:
            return Step(kind="receive", node=u, receiver=min(pending))
        return Step(kind="ack", node=u)

    # ------------------------------------------------------------------
    def apply(self, config: Configuration, step: Step) -> Configuration:
        """The configuration after taking ``step``."""
        if step.kind == "crash":
            return Configuration(states=config.states,
                                 received=config.received,
                                 crashed=config.crashed | {step.node})
        states = list(config.states)
        received = list(config.received)
        if step.kind == "receive":
            u, v = step.node, step.receiver
            message = self.algorithm.message(config.states[u])
            states[v] = self.algorithm.on_receive(config.states[v],
                                                  message)
            received[u] = config.received[u] | {v}
        elif step.kind == "ack":
            u = step.node
            states[u] = self.algorithm.on_ack(config.states[u])
            received[u] = frozenset()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown step kind {step.kind!r}")
        return Configuration(states=tuple(states),
                             received=tuple(received),
                             crashed=config.crashed)

    # ------------------------------------------------------------------
    def run_round_robin(self, config: Configuration,
                        max_steps: int = 100_000) -> Configuration:
        """Drive the system fairly (round-robin) until all alive decide.

        This is the "fair execution" used in indistinguishability
        arguments: every non-crashed node keeps taking its unique valid
        step in round-robin order.
        """
        steps_taken = 0
        while not config.all_alive_decided(self.algorithm):
            progressed = False
            for u in range(self.n):
                step = self.next_valid_step_of(config, u)
                if step is None:
                    continue
                config = self.apply(config, step)
                progressed = True
                steps_taken += 1
                if steps_taken >= max_steps:
                    return config
            if not progressed:
                return config
        return config
