"""Random-waypoint mobility: geometric connectivity under motion.

The classic MANET mobility model the abstract MAC layer was designed
for: each node lives at a point of the unit square, walks toward a
private waypoint at a fixed speed, picks a new waypoint on arrival,
and is linked to every node within a geometric radius. Every epoch the
positions advance and the edge set is recomputed; the engine receives
the diff.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Optional, Set, Tuple

from ..errors import ConfigurationError
from .base import PeriodicDynamics, TopologyDelta, edge_key
from .churn import _sorted_edges
from ...topology.standard import stitch_nearest_components


class RandomWaypoint(PeriodicDynamics):
    """Unit-square random-waypoint mobility with geometric links.

    Parameters
    ----------
    radius:
        Link radius: two nodes are connected while within ``radius``
        of each other.
    speed:
        Distance travelled per epoch (unit square per epoch).
    epoch_length:
        Simulated time between position updates.
    stitch:
        When true (default), a disconnected snapshot is stitched back
        together by linking nearest pairs across components -- the
        same convention as the ``geometric`` topology builder, so runs
        stay connected. ``stitch=False`` lets the network partition.
    seed:
        RNG seed for the initial positions and every waypoint.

    The model generates its own positions at bind time; pair it with a
    ``geometric`` initial topology for a plausible time-zero graph
    (the first epoch replaces the initial edge set with the
    position-derived one either way).
    """

    name = "random-waypoint"

    def __init__(self, radius: float = 0.35, speed: float = 0.08,
                 epoch_length: float = 1.0, stitch: bool = True,
                 seed: Optional[int] = None) -> None:
        super().__init__(epoch_length)
        if radius <= 0:
            raise ConfigurationError("radius must be positive")
        if speed < 0:
            raise ConfigurationError("speed must be non-negative")
        self.radius = float(radius)
        self.speed = float(speed)
        self.stitch = bool(stitch)
        self._rng = random.Random(seed)
        self._pos: Dict[Any, Tuple[float, float]] = {}
        self._waypoint: Dict[Any, Tuple[float, float]] = {}

    def bind(self, sim) -> None:
        rng = self._rng
        for v in sim.graph.nodes:
            self._pos[v] = (rng.random(), rng.random())
            self._waypoint[v] = (rng.random(), rng.random())

    def positions(self) -> Dict[Any, Tuple[float, float]]:
        """The current node positions (for inspection/plotting)."""
        return dict(self._pos)

    def _move(self, nodes) -> None:
        rng = self._rng
        step = self.speed
        for v in nodes:
            x, y = self._pos[v]
            wx, wy = self._waypoint[v]
            dx, dy = wx - x, wy - y
            dist = math.hypot(dx, dy)
            if dist <= step or dist == 0.0:
                self._pos[v] = (wx, wy)
                self._waypoint[v] = (rng.random(), rng.random())
            else:
                scale = step / dist
                self._pos[v] = (x + dx * scale, y + dy * scale)

    def _geometric_edges(self, nodes) -> Set[Tuple[Any, Any]]:
        pos = self._pos
        r2 = self.radius * self.radius
        edges: Set[Tuple[Any, Any]] = set()
        for i, u in enumerate(nodes):
            ux, uy = pos[u]
            for v in nodes[i + 1:]:
                vx, vy = pos[v]
                dx, dy = ux - vx, uy - vy
                if dx * dx + dy * dy <= r2:
                    edges.add(edge_key(u, v))
        if self.stitch:
            # The exact convention of the ``geometric`` topology
            # builder, shared so the two can never drift.
            stitch_nearest_components(nodes, edges, pos)
        return edges

    def advance(self, time: float, graph) -> Optional[TopologyDelta]:
        nodes = graph.nodes
        self._move(nodes)
        target = self._geometric_edges(nodes)
        current = set(graph.edges())
        if target == current:
            return None
        return TopologyDelta(added=_sorted_edges(target - current),
                             removed=_sorted_edges(current - target))

    def describe(self) -> str:
        return (f"random-waypoint(radius={self.radius}, "
                f"speed={self.speed}, stitch={self.stitch})")
