"""The topology-dynamics interface.

A :class:`TopologyDynamics` is the engine's third adversary, orthogonal
to the message scheduler (which controls *when* things happen) and the
fault model (which controls *which nodes misbehave*): it controls *what
the communication graph looks like* as the run progresses. The
simulator consults the model at **epoch boundaries**: whenever
simulated time is about to advance past the model's next epoch time,
the engine asks it for a :class:`TopologyDelta` and applies it --
rewriting the live graph, recomputing the cached neighbor tuples,
invalidating pooled scheduler plans and emitting ``topo`` trace
records -- before any event at or after the epoch executes.

Semantics (the *graph-as-of-broadcast* rule):

* A broadcast started at time ``t`` uses the topology in force at
  ``t``: its delivery plan covers exactly the sender's neighbors as of
  ``t``, and those deliveries run to completion even if edges vanish
  while the broadcast is in flight. Topology changes therefore affect
  *future* broadcasts only, which is what
  :func:`~repro.macsim.invariants.check_model_invariants` audits from
  the ``topo`` records in the trace.
* Epochs are *pull-based*: they take effect only when the simulation
  is about to execute an event at or after the epoch time. A quiescent
  run is never kept alive by topology changes alone, and a model whose
  epochs produce no changes (zero churn) leaves the execution -- trace
  and all -- byte-identical to the equivalent static run.
* Node churn keeps the node *set* fixed: a departed node is isolated
  (all incident edges removed), not deleted. A node named in
  :attr:`TopologyDelta.arrived` has its process **reset** -- rebuilt
  fresh from the simulation's process factory, ``on_start`` and all --
  which is how rejoin-after-churn loses volatile protocol state.

Determinism: models hold their own seeded RNG and are consulted in a
fixed order, so a dynamic run is exactly as reproducible as a static
one -- replay of an exported churn trace is byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..trace import (TOPO_EDGE_DOWN, TOPO_EDGE_UP, TOPO_NODE_DOWN,
                     TOPO_NODE_UP)
from ...topology.graphs import label_sort_key

__all__ = ["TopologyDelta", "TopologyDynamics", "edge_key",
           "TOPO_EDGE_DOWN", "TOPO_EDGE_UP", "TOPO_NODE_DOWN",
           "TOPO_NODE_UP"]


def edge_key(u: Any, v: Any) -> Tuple[Any, Any]:
    """The canonical (sorted) form of an undirected edge.

    Matches :meth:`repro.topology.graphs.Graph.edges` ordering, so
    edge sets built from either source compare equal.
    """
    if label_sort_key(u) <= label_sort_key(v):
        return (u, v)
    return (v, u)


@dataclass(frozen=True)
class TopologyDelta:
    """One epoch's worth of topology change.

    ``added``/``removed`` are edge tuples; ``departed``/``arrived``
    are node labels (``arrived`` nodes additionally have their process
    state reset). The engine canonicalizes edges, ignores no-op
    changes (removing an absent edge, adding a present one) and
    applies the pieces in a fixed order: departures, removals,
    additions, arrivals.
    """

    added: Tuple = ()
    removed: Tuple = ()
    departed: Tuple = ()
    arrived: Tuple = ()

    def __bool__(self) -> bool:
        return bool(self.added or self.removed
                    or self.departed or self.arrived)


class TopologyDynamics:
    """Base class for pluggable topology-dynamics models.

    The default implementation is the static model: no epochs, no
    changes. Subclasses override :meth:`next_epoch_time` and
    :meth:`advance`; see :class:`~repro.macsim.dynamics.EdgeChurn`,
    :class:`~repro.macsim.dynamics.NodeChurn`,
    :class:`~repro.macsim.dynamics.RandomWaypoint` and
    :class:`~repro.macsim.dynamics.ScriptedDynamics`.
    """

    #: Human-readable model family name (experiment tables).
    name = "static"

    def bind(self, sim) -> None:
        """Called once when a simulator adopts this model.

        Subclasses capture whatever initial-topology state they need
        (``sim.graph`` is the graph at time zero) and validate their
        parameters against it.
        """

    def next_epoch_time(self, after: float) -> Optional[float]:
        """The first epoch boundary strictly after ``after``.

        ``None`` means the topology never changes again. Returned
        times must be strictly increasing -- the engine raises on a
        non-advancing epoch stream.
        """
        return None

    def advance(self, time: float, graph) -> Optional[TopologyDelta]:
        """The change to apply at epoch ``time``.

        ``graph`` is the live graph just before the epoch. Returning
        ``None`` (or an empty delta) records nothing and leaves the
        run byte-identical to one without the epoch.
        """
        return None

    def describe(self) -> str:
        """One-line description for experiment reports."""
        return self.name


class PeriodicDynamics(TopologyDynamics):
    """Base for models whose epochs fire every ``epoch_length``.

    Centralizes the epoch grid -- validation and the float-tolerant
    boundary computation -- so every periodic model advances on
    exactly the same schedule.
    """

    def __init__(self, epoch_length: float = 1.0) -> None:
        from ..errors import ConfigurationError
        if epoch_length <= 0:
            raise ConfigurationError("epoch_length must be positive")
        self.epoch_length = float(epoch_length)

    def next_epoch_time(self, after: float) -> Optional[float]:
        k = int(after / self.epoch_length + 1e-9) + 1
        return k * self.epoch_length
