"""A fully scripted dynamics model for hand-built topology timelines.

The dynamics analogue of the scripted *scheduler*: tests and scenario
files spell out exactly which edges and nodes change at which times.
The timeline is JSON-friendly -- a list of plain dicts -- so a
``ScriptedDynamics`` run round-trips through scenario files and trace
exports untouched::

    ScriptedDynamics(timeline=[
        {"time": 2.0, "remove": [[0, 1]]},
        {"time": 4.0, "leave": [3]},
        {"time": 6.0, "join": [3], "add": [[0, 1]]},
    ])

``leave`` drops every incident edge of the node; ``join`` restores the
node's *initial-graph* links to currently-present peers (on top of any
explicit ``add``/``remove`` of the same entry) and resets its process
state. An empty timeline is the static model: byte-identical to a run
without dynamics.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from .base import TopologyDelta, TopologyDynamics, edge_key
from .churn import _sorted_edges


class ScriptedDynamics(TopologyDynamics):
    """Replay an explicit topology timeline.

    Parameters
    ----------
    timeline:
        A sequence of entries, each a mapping with a ``time`` (strictly
        increasing, positive) plus any of ``add`` / ``remove`` (lists
        of ``[u, v]`` edge pairs), ``leave`` / ``join`` (lists of node
        labels). Entries and labels are validated against the graph at
        bind time.
    """

    name = "scripted"

    def __init__(self, timeline: Sequence = ()) -> None:
        entries: List[Dict[str, Any]] = []
        last = 0.0
        for raw in timeline:
            if "time" not in raw:
                raise ConfigurationError(
                    f"scripted dynamics entry without a time: {raw!r}")
            when = float(raw["time"])
            if when <= last:
                raise ConfigurationError(
                    "scripted dynamics timeline must have strictly "
                    f"increasing positive times (got {when} after "
                    f"{last})")
            last = when
            entries.append({
                "time": when,
                "add": [tuple(e) for e in (raw.get("add") or ())],
                "remove": [tuple(e) for e in (raw.get("remove") or ())],
                "leave": list(raw.get("leave") or ()),
                "join": list(raw.get("join") or ()),
            })
        self._entries = entries
        self._times = [e["time"] for e in entries]
        self._base_adj: Dict[Any, Tuple] = {}
        self._away: Set[Any] = set()

    def bind(self, sim) -> None:
        graph = sim.graph
        self._base_adj = {v: graph.neighbors(v) for v in graph.nodes}
        for entry in self._entries:
            for u, v in entry["add"] + entry["remove"]:
                for label in (u, v):
                    if not graph.has_node(label):
                        raise ConfigurationError(
                            f"scripted dynamics names unknown node "
                            f"{label!r}")
            for label in entry["leave"] + entry["join"]:
                if not graph.has_node(label):
                    raise ConfigurationError(
                        f"scripted dynamics names unknown node "
                        f"{label!r}")

    def next_epoch_time(self, after: float) -> Optional[float]:
        index = bisect_right(self._times, after)
        if index >= len(self._times):
            return None
        return self._times[index]

    def advance(self, time: float, graph) -> Optional[TopologyDelta]:
        index = bisect_right(self._times, time) - 1
        if index < 0 or self._times[index] != time:
            return None
        entry = self._entries[index]
        away = self._away
        # Presence tracking: joins restore base-graph links, so only
        # an actually-absent node can arrive (a join of a present node
        # is a no-op).
        departed = [v for v in entry["leave"] if v not in away]
        away.update(departed)
        arrived = [v for v in entry["join"] if v in away]
        away.difference_update(arrived)
        removed: Set[Tuple[Any, Any]] = \
            {edge_key(u, v) for u, v in entry["remove"]}
        for node in departed:
            for peer in graph.neighbors(node):
                removed.add(edge_key(node, peer))
        added: Set[Tuple[Any, Any]] = \
            {edge_key(u, v) for u, v in entry["add"]}
        for node in arrived:
            for peer in self._base_adj[node]:
                if peer not in away and peer != node:
                    key = edge_key(node, peer)
                    if key not in removed:
                        added.add(key)
        added -= removed
        delta = TopologyDelta(added=_sorted_edges(added),
                              removed=_sorted_edges(removed),
                              departed=tuple(departed),
                              arrived=tuple(arrived))
        return delta if delta else None

    def describe(self) -> str:
        return f"scripted({len(self._entries)} epochs)"
