"""Churn models: seeded per-epoch edge and node arrival/departure.

:class:`EdgeChurn` flips individual links up and down -- the "flaky
radio" model -- while an optional *floor* (a protected edge set, by
default a spanning tree of the initial graph) guarantees the network
never partitions, mirroring the dual-graph idea of the unreliable-link
model variant: a reliable core survives underneath a churning fringe.

:class:`NodeChurn` models devices leaving and rejoining the network:
a departed node keeps running but loses every link; on rejoin its
base-graph links (to currently-present peers) come back and its
process state is **reset** -- the rejoin-with-amnesia semantics of
real churn.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Set, Tuple

from ..errors import ConfigurationError
from .base import PeriodicDynamics, TopologyDelta, edge_key
from ...topology.graphs import label_sort_key


def _sorted_edges(edges) -> Tuple:
    return tuple(sorted(edges, key=lambda e: (label_sort_key(e[0]),
                                              label_sort_key(e[1]))))


def spanning_tree_edges(graph) -> Set[Tuple[Any, Any]]:
    """A deterministic BFS spanning forest of ``graph``, as canonical
    edge tuples (one tree per connected component)."""
    seen: Set[Any] = set()
    edges: Set[Tuple[Any, Any]] = set()
    for root in graph.nodes:
        if root in seen:
            continue
        seen.add(root)
        frontier = [root]
        while frontier:
            u = frontier.pop(0)
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    edges.add(edge_key(u, v))
                    frontier.append(v)
    return edges


class EdgeChurn(PeriodicDynamics):
    """Seeded per-epoch link add/remove churn with a protected floor.

    Every ``epoch_length`` of simulated time, each *removable* present
    edge goes down independently with probability ``rate`` and each
    absent node pair comes up with probability ``add_rate`` (default:
    ``rate``). Edges in the floor are never removed:

    * ``floor="spanning-tree"`` (default) protects a BFS spanning tree
      of the initial graph, so the network stays connected through any
      churn -- the guaranteed-link core of the dual-graph model.
    * ``floor="initial"`` protects every initial edge (pure growth
      churn).
    * ``floor="none"`` protects nothing; the graph may partition.

    Deterministic for a fixed seed: candidate edges are visited in
    canonical order each epoch.
    """

    name = "edge-churn"

    def __init__(self, rate: float = 0.05,
                 add_rate: Optional[float] = None,
                 epoch_length: float = 1.0,
                 floor: str = "spanning-tree",
                 seed: Optional[int] = None) -> None:
        super().__init__(epoch_length)
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("churn rate must lie in [0, 1]")
        if add_rate is not None and not 0.0 <= add_rate <= 1.0:
            raise ConfigurationError("add_rate must lie in [0, 1]")
        if floor not in ("spanning-tree", "initial", "none"):
            raise ConfigurationError(
                f"unknown floor {floor!r} (spanning-tree/initial/none)")
        self.rate = float(rate)
        self.add_rate = float(rate if add_rate is None else add_rate)
        self.floor = floor
        self._rng = random.Random(seed)
        self._floor_edges: Set[Tuple[Any, Any]] = set()

    def bind(self, sim) -> None:
        graph = sim.graph
        if self.floor == "spanning-tree":
            self._floor_edges = spanning_tree_edges(graph)
        elif self.floor == "initial":
            self._floor_edges = set(graph.edges())

    def advance(self, time: float, graph) -> Optional[TopologyDelta]:
        rng = self._rng
        removed = []
        if self.rate > 0.0:
            floor = self._floor_edges
            for edge in graph.edges():
                if edge in floor:
                    continue
                if rng.random() < self.rate:
                    removed.append(edge)
        added = []
        if self.add_rate > 0.0:
            nodes = graph.nodes
            for i, u in enumerate(nodes):
                for v in nodes[i + 1:]:
                    if not graph.has_edge(u, v) \
                            and rng.random() < self.add_rate:
                        added.append((u, v))
        if not removed and not added:
            return None
        return TopologyDelta(added=tuple(added), removed=tuple(removed))

    def describe(self) -> str:
        return (f"edge-churn(rate={self.rate}, "
                f"add_rate={self.add_rate}, floor={self.floor})")


class NodeChurn(PeriodicDynamics):
    """Seeded node leave/join churn with state reset on rejoin.

    Every epoch, each present (unprotected) node departs independently
    with probability ``leave_rate`` -- its links all drop, though the
    process keeps running in isolation -- and each absent node rejoins
    with probability ``rejoin_rate``: its base-graph links to
    currently-present peers return, and its process is rebuilt fresh
    from the simulation's factory (``arrived`` reset semantics).

    The first ``protect`` nodes of the canonical order never leave
    (default 1, so the network always has an anchor).
    """

    name = "node-churn"

    def __init__(self, leave_rate: float = 0.05,
                 rejoin_rate: float = 0.5,
                 epoch_length: float = 1.0,
                 protect: int = 1,
                 seed: Optional[int] = None) -> None:
        super().__init__(epoch_length)
        for label, value in (("leave_rate", leave_rate),
                             ("rejoin_rate", rejoin_rate)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{label} must lie in [0, 1]")
        if protect < 1:
            raise ConfigurationError(
                "protect must keep at least one node present")
        self.leave_rate = float(leave_rate)
        self.rejoin_rate = float(rejoin_rate)
        self.protect = int(protect)
        self._rng = random.Random(seed)
        self._away: Set[Any] = set()
        self._base_edges: Set[Tuple[Any, Any]] = set()
        self._protected: Set[Any] = set()

    def bind(self, sim) -> None:
        graph = sim.graph
        self._base_edges = set(graph.edges())
        self._protected = set(graph.nodes[:self.protect])

    def advance(self, time: float, graph) -> Optional[TopologyDelta]:
        rng = self._rng
        away = self._away
        departed = []
        arrived = []
        for v in graph.nodes:
            if v in away:
                if rng.random() < self.rejoin_rate:
                    arrived.append(v)
            elif v not in self._protected:
                if rng.random() < self.leave_rate:
                    departed.append(v)
        if not departed and not arrived:
            return None
        away.difference_update(arrived)
        away.update(departed)
        target = {e for e in self._base_edges
                  if e[0] not in away and e[1] not in away}
        current = set(graph.edges())
        return TopologyDelta(
            added=_sorted_edges(target - current),
            removed=_sorted_edges(current - target),
            departed=tuple(departed),
            arrived=tuple(arrived))

    def describe(self) -> str:
        return (f"node-churn(leave={self.leave_rate}, "
                f"rejoin={self.rejoin_rate}, protect={self.protect})")
