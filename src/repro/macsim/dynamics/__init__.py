"""Dynamic topologies: time-varying graphs, churn and mobility.

The abstract MAC layer was designed for wireless *mobile* ad hoc
networks, yet a plain simulation freezes its graph at time zero. This
package makes the communication graph a first-class time-varying
object: a pluggable :class:`~repro.macsim.dynamics.base.TopologyDynamics`
model (hooked into the engine at event boundaries, like a
:class:`~repro.macsim.faults.base.FaultModel`) rewrites the live graph
at epoch boundaries during a run. Four models ship:

* :class:`EdgeChurn` -- seeded per-epoch link add/remove with a
  protected floor (spanning tree by default) so a guaranteed core
  survives, mirroring the dual-graph unreliable-link variant;
* :class:`NodeChurn` -- node leave/join with process-state reset on
  rejoin;
* :class:`RandomWaypoint` -- unit-square waypoint mobility with a
  geometric link radius, recomputing edges each epoch;
* :class:`ScriptedDynamics` -- an explicit JSON-friendly timeline for
  hand-built executions and scenario files.

Every change lands in the trace as ``topo`` records (essential on all
sinks, JSON-lossless), which is how
:func:`~repro.macsim.invariants.check_model_invariants` audits
deliveries against the graph *as of each broadcast* and how
:func:`connectivity_report` measures a run's T-interval connectivity.
Scenario integration (``DynamicsSpec`` / ``@register_dynamics`` /
``--dynamics``) lives in :mod:`repro.scenario`.
"""

from .base import (TOPO_EDGE_DOWN, TOPO_EDGE_UP, TOPO_NODE_DOWN,
                   TOPO_NODE_UP, PeriodicDynamics, TopologyDelta,
                   TopologyDynamics, edge_key)
from .churn import EdgeChurn, NodeChurn, spanning_tree_edges
from .connectivity import (connectivity_report, edge_timeline,
                           max_t_interval, t_interval_connected)
from .mobility import RandomWaypoint
from .scripted import ScriptedDynamics

__all__ = [
    "TopologyDynamics",
    "PeriodicDynamics",
    "TopologyDelta",
    "EdgeChurn",
    "NodeChurn",
    "RandomWaypoint",
    "ScriptedDynamics",
    "spanning_tree_edges",
    "edge_key",
    "connectivity_report",
    "edge_timeline",
    "max_t_interval",
    "t_interval_connected",
    "TOPO_EDGE_DOWN",
    "TOPO_EDGE_UP",
    "TOPO_NODE_DOWN",
    "TOPO_NODE_UP",
]
