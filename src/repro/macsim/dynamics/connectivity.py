"""T-interval connectivity metrics over a dynamic run's trace.

The dynamic-network literature (Kuhn-Lynch-Oshman) measures how
usable a time-varying graph is by *T-interval connectivity*: the
communication graph sequence ``G_1, G_2, ...`` is T-interval connected
when the intersection of every ``T`` consecutive graphs is connected.
``T = 1`` means each snapshot is connected on its own; larger ``T``
means a stable connected core persists across windows -- the property
churn-tolerant protocols lean on.

:func:`connectivity_report` reconstructs the topology timeline from a
run's ``topo`` trace records (an essential kind, so this works on
every sink including :class:`~repro.macsim.trace.DecisionsSink`) and
reports the run's connectivity profile; the consensus runner attaches
it to :attr:`~repro.analysis.metrics.RunMetrics.extras` for every
dynamic run.
"""

from __future__ import annotations

import os
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..trace import TOPO_EDGE_DOWN, TOPO_EDGE_UP, TraceSink
from .base import edge_key

if os.environ.get("MACSIM_NO_NUMPY"):  # pragma: no cover - CI leg
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised on bare installs
        np = None

Edge = Tuple[Any, Any]

#: Snapshot count below which the vectorized window path is not worth
#: building its presence matrix.
_VECTOR_MIN_SNAPSHOTS = 32


def edge_timeline(graph, trace: TraceSink) -> List[Tuple[float,
                                                         FrozenSet[Edge]]]:
    """The ``(time, edge set)`` snapshots a run passed through.

    The first snapshot is the initial graph at time 0; one further
    snapshot is appended per ``topo`` timestamp (epochs that changed
    nothing emit no records and therefore no snapshot).
    """
    edges = set(graph.edges())
    snapshots = [(0.0, frozenset(edges))]
    events = trace.of_kind("topo")
    i = 0
    total = len(events)
    while i < total:
        when = events[i].time
        while i < total and events[i].time == when:
            rec = events[i]
            if rec.broadcast_id == TOPO_EDGE_UP:
                edges.add(edge_key(rec.node, rec.peer))
            elif rec.broadcast_id == TOPO_EDGE_DOWN:
                edges.discard(edge_key(rec.node, rec.peer))
            i += 1
        snapshots.append((when, frozenset(edges)))
    return snapshots


def is_connected(nodes: Sequence[Any], edges: FrozenSet[Edge]) -> bool:
    """Whether ``edges`` connect every node of ``nodes``."""
    from ...topology.standard import edge_components
    return len(edge_components(nodes, edges)) <= 1


class _Presence:
    """Edge-presence cumulative sums over the snapshot sequence.

    ``cum[i][e]`` counts snapshots ``< i`` containing edge ``e``, so a
    window of ``t`` snapshots ending at ``i`` intersects to exactly
    the edges with ``cum[i+1] - cum[i+1-t] == t`` -- every window of
    every ``t`` falls out of one O(S x E) matrix, which is what makes
    the binary search in :func:`max_t_interval` cheap on numpy.
    """

    __slots__ = ("edges", "cum")

    def __init__(self, edge_sets: Sequence[FrozenSet[Edge]]):
        index: Dict[Edge, int] = {}
        for edges in edge_sets:
            for e in edges:
                if e not in index:
                    index[e] = len(index)
        self.edges = list(index)
        present = np.zeros((len(edge_sets), len(index)), dtype=bool)
        for i, edges in enumerate(edge_sets):
            if edges:
                present[i, [index[e] for e in edges]] = True
        self.cum = np.zeros((len(edge_sets) + 1, len(index)),
                            dtype=np.int32)
        np.cumsum(present, axis=0, out=self.cum[1:])

    def windows(self, t: int):
        """Boolean (S - t + 1) x E matrix: edge in *every* snapshot of
        the window ending at row offset + t - 1."""
        return (self.cum[t:] - self.cum[:-t]) == t


def t_interval_connected(edge_sets: Sequence[FrozenSet[Edge]],
                         nodes: Sequence[Any], t: int,
                         _presence: Optional[_Presence] = None) -> bool:
    """Whether every window of ``t`` consecutive snapshots has a
    connected intersection.

    One pass over the sequence maintaining each edge's consecutive
    presence run: the window ending at snapshot ``i`` intersects to
    exactly the edges whose run length is >= ``t``, so the cost is
    O(S * (E + n)), never O(S * T * E) re-intersections. With numpy
    installed and enough snapshots the run bookkeeping is replaced by
    cumulative-sum windows over an edge-presence matrix
    (:class:`_Presence`) -- same windows, same answer, one C pass.
    """
    if t < 1:
        raise ValueError("t must be at least 1")
    if t > len(edge_sets):
        return False
    if _presence is None and np is not None \
            and len(edge_sets) >= _VECTOR_MIN_SNAPSHOTS:
        _presence = _Presence(edge_sets)
    if _presence is not None:
        edge_list = _presence.edges
        for row in _presence.windows(t):
            window = frozenset(
                edge_list[j] for j in np.flatnonzero(row))
            if not is_connected(nodes, window):
                return False
        return True
    runs: Dict[Edge, int] = {}
    for i, edges in enumerate(edge_sets):
        runs = {e: runs.get(e, 0) + 1 for e in edges}
        if i >= t - 1:
            window = frozenset(e for e, n in runs.items() if n >= t)
            if not is_connected(nodes, window):
                return False
    return True


def max_t_interval(edge_sets: Sequence[FrozenSet[Edge]],
                   nodes: Sequence[Any]) -> int:
    """The largest ``T`` for which the sequence is T-interval
    connected (0 when some snapshot is disconnected on its own --
    intersections only lose edges, so no ``T`` can hold).

    T-interval connectivity is monotone in ``T`` (every (T-1)-window
    is a subset of some T-window, whose intersection it therefore
    contains), so the answer is a binary search: O(log S) passes of
    the linear-time window check above -- auto-attached probes stay
    cheap even for thousand-epoch runs. The edge-presence matrix is
    built once and shared across the search when the vectorized path
    applies.
    """
    presence = None
    if np is not None and len(edge_sets) >= _VECTOR_MIN_SNAPSHOTS:
        presence = _Presence(edge_sets)
    lo, hi = 0, len(edge_sets)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if t_interval_connected(edge_sets, nodes, mid,
                                _presence=presence):
            lo = mid
        else:
            hi = mid - 1
    return lo


def connectivity_report(graph, trace: TraceSink) -> Dict[str, Any]:
    """The run's connectivity profile, from its ``topo`` records.

    Keys (all picklable scalars, safe for sweep workers):

    * ``topologies`` -- number of distinct graphs the run passed
      through (1 for a static run);
    * ``topo_events`` -- total ``topo`` records (edge + node events);
    * ``connected_fraction`` -- fraction of snapshots connected;
    * ``always_connected`` -- every snapshot connected;
    * ``max_t_interval`` -- the T-interval connectivity of the run;
    * ``min_edges`` / ``max_edges`` -- edge-count envelope.
    """
    snapshots = edge_timeline(graph, trace)
    edge_sets = [edges for _, edges in snapshots]
    nodes = graph.nodes
    flags = [is_connected(nodes, edges) for edges in edge_sets]
    return {
        "topologies": len(edge_sets),
        "topo_events": trace.count_of_kind("topo"),
        "connected_fraction": round(sum(flags) / len(flags), 4),
        "always_connected": all(flags),
        "max_t_interval": max_t_interval(edge_sets, nodes),
        "min_edges": min(len(edges) for edges in edge_sets),
        "max_edges": max(len(edges) for edges in edge_sets),
    }
