"""The process (node) programming API.

Algorithms in the abstract MAC layer model are written as subclasses of
:class:`Process`. The model exposes exactly the interface from Section 2
of the paper:

* ``broadcast(message)`` -- reliable local broadcast. If a broadcast is
  already in flight (no ack received yet), the new message is *discarded*
  and ``False`` is returned, mirroring the paper's "extra messages are
  discarded" rule. Algorithms that must not lose messages keep their own
  outbox queue (exactly what wPAXOS's broadcast service does).
* ``on_receive(message)`` -- called when a neighbor's broadcast is
  delivered to this node. The model does **not** reveal the sender;
  algorithms that need sender identity embed it in the payload. This
  matters for the anonymity lower bound (Section 3.2), where algorithms
  must not have access to any identifier.
* ``on_ack()`` -- called when the MAC layer acknowledges the current
  broadcast, i.e. after every non-faulty neighbor has received it.
* ``decide(value)`` -- irrevocable consensus decision.
* ``now()`` -- read the global clock. Processes may read real time (the
  wPAXOS change service calls ``time stamp()``), but nothing in the model
  lets them infer message delays from it, since ``F_ack`` is unknown.

Local computation takes zero simulated time: handlers run atomically at
the timestamp of the event that triggered them.
"""

from __future__ import annotations

from typing import Any, Optional

from .errors import ProcessError


class Process:
    """Base class for algorithm processes.

    Parameters
    ----------
    uid:
        The node's unique id, or ``None`` for anonymous algorithms.
        Anonymous processes must not branch on ``uid``; the anonymity
        experiments additionally verify this behaviourally via trace
        equality across covering networks.
    initial_value:
        The consensus input (``0`` or ``1`` for binary consensus).
    """

    def __init__(self, uid: Optional[int] = None,
                 initial_value: Any = None) -> None:
        self.uid = uid
        self.initial_value = initial_value
        self.decision: Any = None
        self.decided = False
        self.crashed = False
        self._runtime = None  # bound by the simulator
        self._label = None  # graph label, cached at bind time
        # Mirror of the simulator's in-flight state for this process;
        # maintained by the engine so ack_pending is one attribute read.
        self._mac_pending = False

    # ------------------------------------------------------------------
    # Handlers to override
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once at time zero, before any message events."""

    def on_receive(self, message: Any) -> None:
        """Called for each message delivered to this node."""

    def on_ack(self) -> None:
        """Called when the current broadcast completes (is acked)."""

    def on_decided(self) -> None:
        """Hook called right after this process decides."""

    # ------------------------------------------------------------------
    # Model API available to subclasses
    # ------------------------------------------------------------------
    def broadcast(self, message: Any) -> bool:
        """Broadcast ``message`` to all graph neighbors.

        Returns ``True`` if the MAC layer accepted the message and
        ``False`` if it was discarded because a broadcast is already in
        flight.
        """
        self._require_runtime()
        if self.crashed:
            raise ProcessError(f"crashed process {self.label!r} broadcast")
        return self._runtime.mac_broadcast(self, message)

    def decide(self, value: Any) -> None:
        """Perform the irrevocable decide action."""
        self._require_runtime()
        if self.decided:
            if value != self.decision:
                raise ProcessError(
                    f"process {self.label!r} decided twice with different "
                    f"values: {self.decision!r} then {value!r}")
            return
        self.decided = True
        self.decision = value
        self._runtime.note_decision(self, value)
        self.on_decided()

    def now(self) -> float:
        """Current global simulation time."""
        self._require_runtime()
        return self._runtime.now

    @property
    def label(self) -> Any:
        """The graph node this process is bound to (None before binding)."""
        if self._runtime is None:
            return self.uid
        if self._label is not None:
            return self._label
        return self._runtime.label_of(self)

    @property
    def ack_pending(self) -> bool:
        """Whether this process has a broadcast in flight."""
        if self._runtime is None:
            self._require_runtime()
        return self._mac_pending

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    def state_fingerprint(self) -> Any:
        """A hashable snapshot of algorithm-visible state.

        Used by the indistinguishability experiments to compare node
        states across executions in different networks. Subclasses that
        participate in those experiments override this; the default is
        the (decided, decision) pair.
        """
        return (self.decided, self.decision)

    # ------------------------------------------------------------------
    def _require_runtime(self) -> None:
        if self._runtime is None:
            raise ProcessError(
                "process is not bound to a simulator; construct a "
                "Simulator with this process before using the model API")

    def _bind(self, runtime, label: Any = None) -> None:
        if self._runtime is not None and self._runtime is not runtime:
            raise ProcessError("process is already bound to a simulator")
        self._runtime = runtime
        self._label = label
