"""Crash fault injection.

Section 2 of the paper gives the scheduler the power to crash a node at
any point, *including in the middle of a broadcast* -- after some
neighbors have received the in-flight message but not others. A
:class:`CrashPlan` captures exactly that power: the node, the time, and
which neighbors (of the possibly in-flight broadcast) are still allowed
to receive it.

The Theorem 3.2 reproduction (E7) uses mid-broadcast crashes to build
the witness-deadlock execution that stalls Two-Phase Consensus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional


@dataclass(frozen=True)
class CrashPlan:
    """Instruction to crash one node.

    Parameters
    ----------
    node:
        Graph label of the node to crash.
    time:
        Global time of the crash. Crash events sort before deliveries
        at the same timestamp, so a crash at time ``t`` suppresses
        deliveries scheduled for ``t``.
    still_delivered:
        Neighbors that receive the node's in-flight broadcast despite
        the crash. ``None`` means all pending deliveries proceed (the
        crash only stops *future* behaviour); an empty set means the
        in-flight broadcast is lost entirely for anyone who has not yet
        received it.
    """

    node: Any
    time: float
    still_delivered: Optional[FrozenSet[Any]] = field(default=None)

    def allows_delivery(self, receiver: Any) -> bool:
        """Whether a pending delivery to ``receiver`` survives the crash."""
        if self.still_delivered is None:
            return True
        return receiver in self.still_delivered


def crash_plan(node: Any, time: float,
               still_delivered: Optional[Any] = None) -> CrashPlan:
    """Convenience constructor accepting any iterable for the subset."""
    subset = None if still_delivered is None else frozenset(still_delivered)
    return CrashPlan(node=node, time=time, still_delivered=subset)
