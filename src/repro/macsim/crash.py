"""Crash fault injection.

Section 2 of the paper gives the scheduler the power to crash a node at
any point, *including in the middle of a broadcast* -- after some
neighbors have received the in-flight message but not others. A
:class:`CrashPlan` captures exactly that power: the node, the time, and
which neighbors (of the possibly in-flight broadcast) are still allowed
to receive it.

The Theorem 3.2 reproduction (E7) uses mid-broadcast crashes to build
the witness-deadlock execution that stalls Two-Phase Consensus.

Since the fault-model subsystem landed, crash injection is one fault
model among several: the engine normalizes ``crashes=[...]`` into a
:class:`repro.macsim.faults.crash.CrashFaultModel`, whose executions
are byte-identical to the original machinery. This module keeps the
original plan API, now with lossless serialization
(:meth:`CrashPlan.to_dict` / :meth:`CrashPlan.from_dict`, used by
:mod:`repro.analysis.export`) and a deterministic ``repr``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional


@dataclass(frozen=True)
class CrashPlan:
    """Instruction to crash one node.

    Parameters
    ----------
    node:
        Graph label of the node to crash.
    time:
        Global time of the crash. Crash events sort before deliveries
        at the same timestamp, so a crash at time ``t`` suppresses
        deliveries scheduled for ``t``.
    still_delivered:
        Neighbors that receive the node's in-flight broadcast despite
        the crash. ``None`` means all pending deliveries proceed (the
        crash only stops *future* behaviour); an empty set means the
        in-flight broadcast is lost entirely for anyone who has not yet
        received it.
    """

    node: Any
    time: float
    still_delivered: Optional[FrozenSet[Any]] = field(default=None)

    def __post_init__(self) -> None:
        # Coerce any iterable subset to frozenset so plans are
        # hashable and ``repr`` round-trips through eval.
        if (self.still_delivered is not None
                and not isinstance(self.still_delivered, frozenset)):
            object.__setattr__(self, "still_delivered",
                               frozenset(self.still_delivered))

    def allows_delivery(self, receiver: Any) -> bool:
        """Whether a pending delivery to ``receiver`` survives the crash."""
        if self.still_delivered is None:
            return True
        return receiver in self.still_delivered

    def __repr__(self) -> str:
        """Deterministic repr: the frozen subset prints sorted.

        The dataclass default stringifies ``frozenset`` in hash order,
        which varies across runs/interpreters -- useless for diffing
        exported scenarios. This form is stable and eval-round-trips
        via :func:`crash_plan`.
        """
        if self.still_delivered is None:
            subset = "None"
        else:
            subset = ("{" + ", ".join(
                repr(v) for v in sorted(self.still_delivered,
                                        key=lambda x: (str(type(x)),
                                                       str(x), repr(x))))
                + "}") if self.still_delivered else "frozenset()"
        return (f"CrashPlan(node={self.node!r}, time={self.time!r}, "
                f"still_delivered={subset})")

    def to_dict(self) -> dict:
        """JSON-serializable form; see :func:`CrashPlan.from_dict`.

        ``still_delivered`` keeps the None / empty / subset
        distinction: ``None`` (everything pending proceeds) maps to
        JSON ``null``, a subset to a sorted list. The round-trip is
        lossless for int/str/float labels and (nested) tuples of them
        -- JSON turns tuples into lists, which ``from_dict`` freezes
        back.
        """
        subset = (None if self.still_delivered is None
                  else sorted(self.still_delivered,
                              key=lambda x: (str(type(x)), str(x),
                                             repr(x))))
        return {"node": self.node, "time": self.time,
                "still_delivered": subset}

    @classmethod
    def from_dict(cls, data: dict) -> "CrashPlan":
        """Inverse of :meth:`to_dict` (see there for label caveats)."""
        subset = data.get("still_delivered")
        return cls(node=_freeze(data["node"]), time=float(data["time"]),
                   still_delivered=(None if subset is None
                                    else frozenset(_freeze(v)
                                                   for v in subset)))


def _freeze(value: Any) -> Any:
    """Re-hashable-ify a JSON-decoded label: lists become tuples."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def crash_plan(node: Any, time: float,
               still_delivered: Optional[Any] = None) -> CrashPlan:
    """Convenience constructor accepting any iterable for the subset."""
    subset = None if still_delivered is None else frozenset(still_delivered)
    return CrashPlan(node=node, time=time, still_delivered=subset)
