"""Binary columnar trace format: struct-packed chunks, vectorized replay.

:class:`~repro.macsim.trace.SpillSink` proved that full-level traces
can stream to disk in bounded memory, but its JSONL chunks cost
~100 bytes per record and replay re-parses every record into a Python
object. This module is the next order of magnitude: records are packed
into typed *columns* (fixed-width little-endian arrays for
time/kind/ids, per-chunk interned string tables for node labels and
payload ``repr`` strings), compressed per chunk with zlib, and read
back as whole-column views -- numpy arrays when numpy is installed
(the ``[fast]`` extra), ``array.array`` otherwise.

Three layers live here:

* the chunk codec (:func:`encode_chunk` / :func:`decode_chunk` and
  :class:`ColumnarChunk`) -- self-contained blobs, JSON-lossless on
  round-trip with exactly the :class:`~repro.macsim.trace.SpillSink`
  serialization convention (labels losslessly, payloads as ``repr``
  strings);
* :class:`ColumnarSink` (``TraceLevel.COLUMNAR``) -- the streaming
  sink: chunked ``.colb`` files plus the same in-RAM
  decision/counter index as ``SpillSink``, a ``manifest.json``, and
  :meth:`ColumnarSink.load` which reopens a spill directory and
  rebuilds decisions/counters from the columns (numpy ``bincount``
  over whole chunks -- the vectorized *metrics replay*);
* the vectorized model-invariant checker
  (:func:`try_vectorized_invariants`) -- the MAC-contract audit of
  :func:`repro.macsim.invariants.check_model_invariants` re-expressed
  as whole-column numpy passes with O(broadcasts) state instead of a
  per-record Python loop. It covers the static-topology fault-free and
  crash-fault cases (the shapes that actually reach 10^8 events) and
  *declines* -- returns ``None`` so the caller falls back to the
  record-iterator reference implementation -- on anything exotic
  (dynamic topologies, fault-model runs with drops, n > 63, malformed
  id columns). Verdict equality between the two paths is pinned by the
  test-suite's property tests.

Chunk blob layout (all little-endian)::

    magic   b"MCC1"
    u32     n_records
    u32     flags          (bit 0: broadcast-id column is i8, not i4)
    u32     raw_body_len
    u32     compressed_len
    zlib(body, level=1) where body =
        u32 len | label table   (JSON array of packed labels)
        u32 len | payload table (JSON array of payload repr strings)
        times    f8 * n
        kinds    u1 * n        (index into TRACE_KINDS)
        nodes    i4 * n        (index into the label table)
        bids     i4|i8 * n     (-1 encodes None)
        peers    i4 * n        (-1 encodes None)
        payloads i4 * n        (-1 encodes None)

Everything numpy-flavoured is gated at call time on the module global
``np`` (``None`` when numpy is unavailable or ``MACSIM_NO_NUMPY`` is
set), so the pure-python fallback is a first-class, tested path.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import sys
import tempfile
import weakref
import zlib
from array import array
from typing import Any, Dict, Iterator, List, Optional

from .trace import (DEFAULT_CHUNK_RECORDS, TRACE_KINDS, SpillBudgetError,
                    TraceLevel, TraceRecord, TraceSink, _ESSENTIAL_KINDS,
                    _TRACE_KIND_SET, _pack_label, _unpack_label)

if os.environ.get("MACSIM_NO_NUMPY"):  # pragma: no cover - CI fallback leg
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised on bare installs
        np = None


def have_numpy() -> bool:
    """Whether the vectorized fast paths are available right now."""
    return np is not None


#: Kind string -> u1 column code (the TRACE_KINDS index).
KIND_CODES: Dict[str, int] = {k: i for i, k in enumerate(TRACE_KINDS)}
_KIND_BROADCAST = KIND_CODES["broadcast"]
_KIND_DELIVER = KIND_CODES["deliver"]
_KIND_ACK = KIND_CODES["ack"]
_KIND_DECIDE = KIND_CODES["decide"]
_KIND_CRASH = KIND_CODES["crash"]

_MAGIC = b"MCC1"
#: Pre-compiled structs for the hot pack/unpack path (satellite: no
#: per-chunk struct recompilation).
_HEADER_STRUCT = struct.Struct("<4sIIII")
_U32 = struct.Struct("<I")

_FLAG_WIDE_BIDS = 1

#: ``array`` typecodes guaranteed 4/8 bytes on this interpreter.
_I4 = next(c for c in "ilq" if array(c).itemsize == 4)
_I8 = next(c for c in "qlI" if array(c).itemsize == 8)
_BIG_ENDIAN = sys.byteorder == "big"

_I4_MIN, _I4_MAX = -(2 ** 31), 2 ** 31 - 1


def _column_bytes(typecode: str, values) -> bytes:
    arr = array(typecode, values)
    if _BIG_ENDIAN:  # pragma: no cover - little-endian on-disk format
        arr.byteswap()
    return arr.tobytes()


def _column_from(typecode: str, data: bytes):
    arr = array(typecode)
    arr.frombytes(data)
    if _BIG_ENDIAN:  # pragma: no cover
        arr.byteswap()
    return arr


class ColumnarChunk:
    """One decoded chunk: whole-column views plus the intern tables.

    ``times``/``kinds``/``nodes``/``bids``/``peers``/``payload_idx``
    are numpy arrays when numpy is available (zero-copy views over the
    decompressed body where alignment allows) and ``array.array``
    otherwise. ``labels`` holds the *unpacked* node labels the
    ``nodes``/``peers`` columns index into; ``payloads`` the payload
    ``repr`` strings (``-1`` indexes encode ``None``).
    """

    __slots__ = ("n", "times", "kinds", "nodes", "bids", "peers",
                 "payload_idx", "labels", "payloads")

    def __init__(self, n, times, kinds, nodes, bids, peers, payload_idx,
                 labels, payloads):
        self.n = n
        self.times = times
        self.kinds = kinds
        self.nodes = nodes
        self.bids = bids
        self.peers = peers
        self.payload_idx = payload_idx
        self.labels = labels
        self.payloads = payloads

    def records(self) -> Iterator[TraceRecord]:
        """Materialize the rows as :class:`TraceRecord` objects, in
        order (the reference / compatibility path; the fast paths use
        the columns directly)."""
        # tolist() converts numpy scalars to plain Python objects in
        # one C pass; array.array supports it identically. Pending
        # (not yet flushed) chunks carry plain builder lists.
        def as_list(column):
            return (column.tolist() if hasattr(column, "tolist")
                    else list(column))
        times = as_list(self.times)
        kinds = as_list(self.kinds)
        nodes = as_list(self.nodes)
        bids = as_list(self.bids)
        peers = as_list(self.peers)
        payload_idx = as_list(self.payload_idx)
        labels = self.labels
        payloads = self.payloads
        kind_names = TRACE_KINDS
        for i in range(self.n):
            bid = bids[i]
            pi = payload_idx[i]
            peer = peers[i]
            yield TraceRecord(
                times[i], kind_names[kinds[i]], labels[nodes[i]],
                broadcast_id=None if bid < 0 else bid,
                peer=None if peer < 0 else labels[peer],
                payload=None if pi < 0 else payloads[pi])


def encode_chunk(times, kinds, nodes, bids, peers, payload_idx,
                 packed_labels: List[Any],
                 payload_table: List[str]) -> bytes:
    """Pack one chunk's columns into a compressed binary blob.

    ``kinds`` is a ``bytearray`` of kind codes; the id columns are
    plain int sequences with ``-1`` for ``None``; ``packed_labels``
    are already :func:`~repro.macsim.trace._pack_label`-packed.
    """
    n = len(times)
    flags = 0
    bid_code = _I4
    if bids and not (_I4_MIN <= min(bids) and max(bids) <= _I4_MAX):
        flags |= _FLAG_WIDE_BIDS
        bid_code = _I8
    label_blob = json.dumps(packed_labels,
                            separators=(",", ":")).encode("utf-8")
    payload_blob = json.dumps(payload_table,
                              separators=(",", ":")).encode("utf-8")
    body = b"".join((
        _U32.pack(len(label_blob)), label_blob,
        _U32.pack(len(payload_blob)), payload_blob,
        _column_bytes("d", times),
        bytes(kinds),
        _column_bytes(_I4, nodes),
        _column_bytes(bid_code, bids),
        _column_bytes(_I4, peers),
        _column_bytes(_I4, payload_idx),
    ))
    comp = zlib.compress(body, 1)
    return _HEADER_STRUCT.pack(_MAGIC, n, flags, len(body),
                               len(comp)) + comp


def decode_chunk(blob: bytes) -> ColumnarChunk:
    """Decode a chunk blob back into whole-column views."""
    magic, n, flags, raw_len, comp_len = _HEADER_STRUCT.unpack_from(
        blob, 0)
    if magic != _MAGIC:
        raise ValueError("not a columnar trace chunk (bad magic)")
    body = zlib.decompress(
        blob[_HEADER_STRUCT.size:_HEADER_STRUCT.size + comp_len])
    if len(body) != raw_len:
        raise ValueError("columnar chunk is corrupt (length mismatch)")
    off = 0
    (llen,) = _U32.unpack_from(body, off)
    off += 4
    packed_labels = json.loads(body[off:off + llen].decode("utf-8"))
    off += llen
    (plen,) = _U32.unpack_from(body, off)
    off += 4
    payloads = json.loads(body[off:off + plen].decode("utf-8"))
    off += plen
    labels = [_unpack_label(v) for v in packed_labels]
    bid_wide = bool(flags & _FLAG_WIDE_BIDS)
    bid_size = 8 if bid_wide else 4
    if np is not None:
        times = np.frombuffer(body, "<f8", n, off)
        kinds = np.frombuffer(body, np.uint8, n, off + 8 * n)
        nodes = np.frombuffer(body, "<i4", n, off + 9 * n)
        bids = np.frombuffer(body, "<i8" if bid_wide else "<i4", n,
                             off + 13 * n)
        peers = np.frombuffer(body, "<i4", n, off + 13 * n + bid_size * n)
        payload_idx = np.frombuffer(body, "<i4", n,
                                    off + 17 * n + bid_size * n)
    else:
        times = _column_from("d", body[off:off + 8 * n])
        kinds = body[off + 8 * n:off + 9 * n]
        nodes = _column_from(_I4, body[off + 9 * n:off + 13 * n])
        bids = _column_from(_I8 if bid_wide else _I4,
                            body[off + 13 * n:
                                 off + 13 * n + bid_size * n])
        rest = off + 13 * n + bid_size * n
        peers = _column_from(_I4, body[rest:rest + 4 * n])
        payload_idx = _column_from(_I4, body[rest + 4 * n:rest + 8 * n])
    return ColumnarChunk(n, times, kinds, nodes, bids, peers,
                         payload_idx, labels, payloads)


class ColumnarSink(TraceSink):
    """Full-level trace packed into binary columnar chunks on disk.

    The streaming contract matches :class:`~repro.macsim.trace
    .SpillSink` exactly -- every occurrence lands in the current chunk,
    chunks flush to ``chunk-NNNNN.colb`` every ``chunk_records``
    records, decisions/crashes/counters stay in an exact in-RAM index,
    and iterating replays the records in order with O(chunk) memory --
    but the on-disk format is the struct-packed columnar codec above:
    ~5-10x smaller than the JSONL chunks and decoded back as whole
    columns instead of per-record parses. ``close()`` additionally
    writes a ``manifest.json`` chunk manifest next to the chunks.

    :meth:`load` reopens a previously written spill directory without
    re-running the simulation: the decision/counter index is rebuilt
    from the columns (vectorized with numpy when available), so
    consensus checking and metrics replay at column speed. Payloads in
    a reopened sink are ``repr`` strings throughout (the export
    convention), exactly like a reloaded trace export.

    ``max_bytes`` optionally bounds the on-disk footprint; exceeding
    it raises :class:`~repro.macsim.trace.SpillBudgetError` at flush
    time rather than truncating the trace silently.
    """

    __slots__ = ("directory", "chunk_records", "max_bytes",
                 "_chunk_paths", "_chunk_counts", "_spilled_bytes",
                 "_spilled", "_by_kind_essential", "_decisions",
                 "_decision_times", "_kind_counts", "_broadcasts_by_node",
                 "_owns_dir", "_finalizer", "_c_times", "_c_kinds",
                 "_c_nodes", "_c_bids", "_c_peers", "_c_payloads",
                 "_label_index", "_labels_packed", "_labels",
                 "_payload_index", "_payload_table", "__weakref__")

    level = TraceLevel.COLUMNAR
    replayable = True
    materializes_mac = True
    payloads_preserialized = True
    columnar = True

    def __init__(self, directory: Optional[str] = None, *,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS,
                 max_bytes: Optional[int] = None) -> None:
        if chunk_records <= 0:
            raise ValueError("chunk_records must be positive")
        self._owns_dir = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="macsim-columnar-")
        else:
            os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.chunk_records = chunk_records
        self.max_bytes = max_bytes
        self._chunk_paths: List[str] = []
        self._chunk_counts: List[int] = []
        self._spilled_bytes = 0
        self._spilled = 0
        self._by_kind_essential: Dict[str, List[TraceRecord]] = {}
        self._decisions: Dict[Any, Any] = {}
        self._decision_times: Dict[Any, float] = {}
        self._kind_counts: Dict[str, int] = {k: 0 for k in TRACE_KINDS}
        self._broadcasts_by_node: Dict[Any, int] = {}
        self._reset_builders()
        if self._owns_dir:
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, directory, True)
        else:
            self._finalizer = None

    def _reset_builders(self) -> None:
        self._c_times: List[float] = []
        self._c_kinds = bytearray()
        self._c_nodes: List[int] = []
        self._c_bids: List[int] = []
        self._c_peers: List[int] = []
        self._c_payloads: List[int] = []
        self._label_index: Dict[Any, int] = {}
        self._labels_packed: List[Any] = []
        self._labels: List[Any] = []
        self._payload_index: Dict[str, int] = {}
        self._payload_table: List[str] = []

    # -- ingestion -----------------------------------------------------
    def _label_id(self, label: Any) -> int:
        idx = self._label_index.get(label)
        if idx is None:
            idx = self._label_index[label] = len(self._labels_packed)
            self._labels_packed.append(_pack_label(label))
            self._labels.append(label)
        return idx

    def _payload_id(self, text: str) -> int:
        idx = self._payload_index.get(text)
        if idx is None:
            idx = self._payload_index[text] = len(self._payload_table)
            self._payload_table.append(text)
        return idx

    def record(self, time: float, kind: str, node: Any, *,
               broadcast_id: Optional[int] = None, peer: Any = None,
               payload: Any = None) -> None:
        code = KIND_CODES.get(kind)
        if code is None:
            raise ValueError(f"unknown trace kind: {kind!r}")
        self._c_times.append(time)
        self._c_kinds.append(code)
        self._c_nodes.append(self._label_id(node))
        self._c_bids.append(-1 if broadcast_id is None else broadcast_id)
        self._c_peers.append(-1 if peer is None
                             else self._label_id(peer))
        self._c_payloads.append(
            -1 if payload is None else self._payload_id(repr(payload)))
        if len(self._c_times) >= self.chunk_records:
            self.flush()
        self._kind_counts[kind] += 1
        if kind == "decide":
            if node not in self._decisions:
                self._decisions[node] = payload
                self._decision_times[node] = time
        elif kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)
        if kind in _ESSENTIAL_KINDS:
            bucket = self._by_kind_essential.get(kind)
            if bucket is None:
                bucket = self._by_kind_essential[kind] = []
            bucket.append(TraceRecord(time, kind, node,
                                      broadcast_id=broadcast_id,
                                      peer=peer, payload=payload))

    def append(self, record: TraceRecord) -> None:
        """Protocol parity with :class:`~repro.macsim.trace.Trace`."""
        self.record(record.time, record.kind, record.node,
                    broadcast_id=record.broadcast_id, peer=record.peer,
                    payload=record.payload)

    def append_serialized(self, record: TraceRecord) -> None:
        """Append a record whose payload is *already* a ``repr``
        string (reloading an export or another sink's replay stream);
        skips the second ``repr`` so round-trips stay byte-identical."""
        kind = record.kind
        code = KIND_CODES.get(kind)
        if code is None:
            raise ValueError(f"unknown trace kind: {kind!r}")
        payload = record.payload
        self._c_times.append(record.time)
        self._c_kinds.append(code)
        self._c_nodes.append(self._label_id(record.node))
        self._c_bids.append(-1 if record.broadcast_id is None
                            else record.broadcast_id)
        self._c_peers.append(-1 if record.peer is None
                             else self._label_id(record.peer))
        self._c_payloads.append(
            -1 if payload is None else self._payload_id(payload))
        if len(self._c_times) >= self.chunk_records:
            self.flush()
        self._kind_counts[kind] += 1
        node = record.node
        if kind == "decide":
            if node not in self._decisions:
                self._decisions[node] = payload
                self._decision_times[node] = record.time
        elif kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)
        if kind in _ESSENTIAL_KINDS:
            bucket = self._by_kind_essential.get(kind)
            if bucket is None:
                bucket = self._by_kind_essential[kind] = []
            bucket.append(record)

    def bump(self, kind: str, node: Any = None) -> None:
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)

    def flush(self) -> None:
        """Encode and write the buffered tail as a new chunk file."""
        count = len(self._c_times)
        if not count:
            return
        blob = encode_chunk(self._c_times, self._c_kinds, self._c_nodes,
                            self._c_bids, self._c_peers,
                            self._c_payloads, self._labels_packed,
                            self._payload_table)
        path = os.path.join(self.directory,
                            f"chunk-{len(self._chunk_paths):05d}.colb")
        with open(path, "wb") as handle:
            handle.write(blob)
        self._chunk_paths.append(path)
        self._chunk_counts.append(count)
        self._spilled += count
        self._spilled_bytes += len(blob)
        self._reset_builders()
        if (self.max_bytes is not None
                and self._spilled_bytes > self.max_bytes):
            raise SpillBudgetError(
                f"columnar spill exceeded its disk budget: "
                f"{self._spilled_bytes:,} bytes > {self.max_bytes:,} "
                f"({self._spilled:,} records in {self.directory})")

    def close(self) -> None:
        self.flush()
        self._write_manifest()

    def _write_manifest(self) -> None:
        manifest = {
            "format": "macsim-columnar/v1",
            "records": self._spilled,
            "chunk_records": self.chunk_records,
            "chunks": [
                {"file": os.path.basename(p), "records": c,
                 "bytes": os.path.getsize(p)}
                for p, c in zip(self._chunk_paths, self._chunk_counts)],
        }
        path = os.path.join(self.directory, "manifest.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
            handle.write("\n")

    def cleanup(self) -> None:
        """Remove the spill directory (only if this sink created it)."""
        if self._finalizer is not None:
            self._finalizer()

    def spilled_bytes(self) -> int:
        """Total bytes written to chunk files so far."""
        return self._spilled_bytes

    # -- reopening -----------------------------------------------------
    @classmethod
    def load(cls, directory: str) -> "ColumnarSink":
        """Reopen a written columnar spill directory for replay.

        Chunk files are discovered through ``manifest.json`` (or a
        sorted glob when the manifest is missing) and the
        decision/counter index is rebuilt from the columns --
        vectorized with numpy when available -- so every query,
        consensus check and metrics computation works as on the
        original sink, with payloads as ``repr`` strings.
        """
        sink = cls(directory)
        sink._owns_dir = False
        if sink._finalizer is not None:
            sink._finalizer.detach()
            sink._finalizer = None
        manifest_path = os.path.join(directory, "manifest.json")
        if os.path.exists(manifest_path):
            with open(manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
            names = [entry["file"] for entry in manifest["chunks"]]
        else:
            names = sorted(name for name in os.listdir(directory)
                           if name.endswith(".colb"))
        sink._chunk_paths = [os.path.join(directory, n) for n in names]
        for path in sink._chunk_paths:
            sink._spilled_bytes += os.path.getsize(path)
        sink._rebuild_index()
        return sink

    def _rebuild_index(self) -> None:
        """Recompute counters/decisions/essential records from the
        columns (the vectorized metrics-replay path)."""
        counts = [0] * len(TRACE_KINDS)
        per_node: Dict[Any, int] = self._broadcasts_by_node
        chunk_counts: List[int] = []
        for chunk in self._iter_file_chunks():
            chunk_counts.append(chunk.n)
            if np is not None:
                kinds = np.asarray(chunk.kinds)
                hist = np.bincount(kinds, minlength=len(TRACE_KINDS))
                for code, c in enumerate(hist.tolist()):
                    counts[code] += c
                bmask = kinds == _KIND_BROADCAST
                if bmask.any():
                    nodes = np.asarray(chunk.nodes)[bmask]
                    for li, c in enumerate(np.bincount(
                            nodes, minlength=len(chunk.labels)).tolist()):
                        if c:
                            label = chunk.labels[li]
                            per_node[label] = per_node.get(label, 0) + c
                essential = np.flatnonzero(
                    (kinds == _KIND_DECIDE) | (kinds == _KIND_CRASH)
                    | (kinds == KIND_CODES["topo"])).tolist()
            else:
                essential = []
                ess_codes = {KIND_CODES[k] for k in _ESSENTIAL_KINDS}
                nodes = chunk.nodes
                for i, code in enumerate(chunk.kinds):
                    counts[code] += 1
                    if code == _KIND_BROADCAST:
                        label = chunk.labels[nodes[i]]
                        per_node[label] = per_node.get(label, 0) + 1
                    elif code in ess_codes:
                        essential.append(i)
            for i in essential:
                rec = self._row_record(chunk, i)
                bucket = self._by_kind_essential.setdefault(rec.kind, [])
                bucket.append(rec)
                if rec.kind == "decide" and rec.node not in self._decisions:
                    self._decisions[rec.node] = rec.payload
                    self._decision_times[rec.node] = rec.time
        self._chunk_counts = chunk_counts
        self._spilled = sum(chunk_counts)
        for kind, code in KIND_CODES.items():
            self._kind_counts[kind] = counts[code]

    @staticmethod
    def _row_record(chunk: ColumnarChunk, i: int) -> TraceRecord:
        bid = int(chunk.bids[i])
        peer = int(chunk.peers[i])
        pi = int(chunk.payload_idx[i])
        return TraceRecord(
            float(chunk.times[i]), TRACE_KINDS[chunk.kinds[i]],
            chunk.labels[int(chunk.nodes[i])],
            broadcast_id=None if bid < 0 else bid,
            peer=None if peer < 0 else chunk.labels[peer],
            payload=None if pi < 0 else chunk.payloads[pi])

    # -- replay --------------------------------------------------------
    def __len__(self) -> int:
        return self._spilled + len(self._c_times)

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.iter_records()

    def _pending_chunk(self) -> Optional[ColumnarChunk]:
        if not self._c_times:
            return None
        return ColumnarChunk(
            len(self._c_times), list(self._c_times),
            bytes(self._c_kinds), list(self._c_nodes),
            list(self._c_bids), list(self._c_peers),
            list(self._c_payloads), list(self._labels),
            list(self._payload_table))

    def _iter_file_chunks(self) -> Iterator[ColumnarChunk]:
        for path in self._chunk_paths:
            with open(path, "rb") as handle:
                yield decode_chunk(handle.read())

    def iter_chunks(self) -> Iterator[ColumnarChunk]:
        """Decode every chunk in order (flushed files, then the
        pending tail buffer) as whole-column views."""
        yield from self._iter_file_chunks()
        pending = self._pending_chunk()
        if pending is not None:
            yield pending

    def iter_records(self) -> Iterator[TraceRecord]:
        """Replay every record in order, one chunk at a time."""
        for chunk in self.iter_chunks():
            yield from chunk.records()

    def iter_chunk_blobs(self) -> Iterator[bytes]:
        """The raw encoded chunk blobs, in order (the export path
        copies these verbatim -- no re-encode)."""
        for path in self._chunk_paths:
            with open(path, "rb") as handle:
                yield handle.read()
        pending = self._pending_chunk()
        if pending is not None:
            yield encode_chunk(
                pending.times, bytearray(pending.kinds), pending.nodes,
                pending.bids, pending.peers, pending.payload_idx,
                [_pack_label(v) for v in pending.labels],
                pending.payloads)

    def chunk_paths(self) -> List[str]:
        """Paths of the flushed chunks, in record order."""
        return list(self._chunk_paths)

    # -- queries -------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        if kind in _ESSENTIAL_KINDS:
            return list(self._by_kind_essential.get(kind, ()))
        if kind not in _TRACE_KIND_SET:
            return []
        return [r for r in self.iter_records() if r.kind == kind]

    def for_node(self, node: Any) -> List[TraceRecord]:
        return [r for r in self.iter_records() if r.node == node]

    def decisions(self) -> Dict[Any, Any]:
        return dict(self._decisions)

    def decision_times(self) -> Dict[Any, float]:
        return dict(self._decision_times)

    def broadcast_count(self, node: Any = None) -> int:
        if node is None:
            return self._kind_counts.get("broadcast", 0)
        return self._broadcasts_by_node.get(node, 0)

    def broadcasts_per_node(self) -> Dict[Any, int]:
        return dict(self._broadcasts_by_node)

    def count_of_kind(self, kind: str) -> int:
        return self._kind_counts.get(kind, 0)

    def crashed_nodes(self) -> set:
        return {r.node for r in self._by_kind_essential.get("crash", ())}


# ----------------------------------------------------------------------
# Vectorized model-invariant replay
# ----------------------------------------------------------------------
#: Cap on per-category violation messages (the report also records the
#: total, so verdicts and counts stay exact while memory stays O(1)).
_MESSAGE_CAP = 20


class _BidState:
    """Grow-on-demand per-broadcast audit columns (numpy only)."""

    __slots__ = ("cap", "start", "sender", "bpos", "payload_hash",
                 "ack_time", "ack_pos", "deliver_mask", "deliver_count",
                 "deliver_last")

    def __init__(self, cap: int = 1024):
        self.cap = cap
        self.start = np.full(cap, np.nan)
        self.sender = np.full(cap, -1, np.int64)
        self.bpos = np.full(cap, -1, np.int64)
        self.payload_hash = np.zeros(cap, np.int64)
        self.ack_time = np.full(cap, np.nan)
        self.ack_pos = np.full(cap, -1, np.int64)
        self.deliver_mask = np.zeros(cap, np.uint64)
        self.deliver_count = np.zeros(cap, np.int64)
        self.deliver_last = np.full(cap, -np.inf)

    def ensure(self, max_bid: int) -> None:
        if max_bid < self.cap:
            return
        new_cap = max(self.cap * 2, max_bid + 1)
        for name, fill in (("start", np.nan), ("sender", -1),
                           ("bpos", -1), ("payload_hash", 0),
                           ("ack_time", np.nan), ("ack_pos", -1),
                           ("deliver_mask", 0), ("deliver_count", 0),
                           ("deliver_last", -np.inf)):
            old = getattr(self, name)
            grown = np.full(new_cap, fill, dtype=old.dtype)
            grown[:self.cap] = old
            setattr(self, name, grown)
        self.cap = new_cap


class _FastPathDeclined(Exception):
    """Internal: the trace has a shape the vectorized checker does not
    model; the caller falls back to the reference implementation."""


def try_vectorized_invariants(graph, trace, f_ack=None):
    """Run the vectorized MAC-contract audit, or return ``None``.

    ``None`` means the fast path does not apply (no numpy, the sink is
    not columnar, the graph is too large for the 64-bit delivery
    bitmask, the run used dynamic topology / fault-model drops, or the
    id columns have a shape the vectorized checker does not model) and
    the caller must use the record-iterator reference implementation.
    The returned report's ``ok`` verdict is equivalent to the
    reference checker's on every trace the fast path accepts;
    violation *messages* are summarized per category.
    """
    if np is None or not getattr(trace, "columnar", False):
        return None
    if not hasattr(trace, "iter_chunks"):
        return None
    if graph.n > 63:
        return None
    if trace.count_of_kind("topo") or trace.count_of_kind("drop"):
        return None
    try:
        return _vectorized_check(graph, trace, f_ack)
    except _FastPathDeclined:
        return None


class _Reporter:
    """Capped message collection with exact violation accounting."""

    def __init__(self, report):
        self.report = report
        self.extra = 0

    def flag(self, count: int, messages) -> None:
        if not count:
            return
        room = _MESSAGE_CAP
        for i, message in enumerate(messages):
            if i >= room:
                break
            self.report.add(message)
        if count > room:
            self.report.ok = False
            self.extra += count - room

    def finish(self) -> None:
        if self.extra:
            self.report.add(f"... and {self.extra} further violations "
                            f"(messages capped)")


def _vectorized_check(graph, trace, f_ack):
    from .invariants import InvariantReport

    report = InvariantReport(ok=True)
    out = _Reporter(report)
    nodes = list(graph.nodes)
    n = len(nodes)
    gidx = {v: i for i, v in enumerate(nodes)}
    # Index n is the "unknown label" sentinel: never adjacent, never
    # crashed, bit n unused by any neighbor mask.
    adj = np.zeros((n + 1, n + 1), dtype=bool)
    neigh_mask = np.zeros(n + 1, dtype=np.uint64)
    for v in nodes:
        i = gidx[v]
        mask = 0
        for u in graph.neighbors(v):
            j = gidx[u]
            adj[i, j] = True
            mask |= 1 << j
        neigh_mask[i] = mask
    crash_t = np.full(n + 1, np.inf)
    crashed_idx = []
    for rec in trace.of_kind("crash"):
        i = gidx.get(rec.node, n)
        if rec.time < crash_t[i]:
            crash_t[i] = rec.time
        if i < n:
            crashed_idx.append(i)

    state = _BidState()
    base = 0
    none_hash = hash(None)
    for chunk in trace.iter_chunks():
        m = chunk.n
        times = np.asarray(chunk.times, dtype=np.float64)
        kinds = np.asarray(chunk.kinds, dtype=np.uint8)
        node_col = np.asarray(chunk.nodes, dtype=np.int64)
        bids = np.asarray(chunk.bids, dtype=np.int64)
        payload_col = np.asarray(chunk.payload_idx, dtype=np.int64)
        # Per-chunk gather tables: chunk label -> global node index,
        # chunk payload -> stable payload hash (index -1 selects the
        # appended sentinel).
        g_of_label = np.fromiter(
            (gidx.get(label, n) for label in chunk.labels),
            dtype=np.int64, count=len(chunk.labels))
        g_of_label = np.append(g_of_label, n)
        payload_hash = np.fromiter(
            (hash(s) for s in chunk.payloads),
            dtype=np.int64, count=len(chunk.payloads))
        payload_hash = np.append(payload_hash, none_hash)
        gn = g_of_label[node_col]
        ph = payload_hash[payload_col]
        pos = base + np.arange(m, dtype=np.int64)
        base += m

        is_b = kinds == _KIND_BROADCAST
        is_d = kinds == _KIND_DELIVER
        is_a = kinds == _KIND_ACK
        if ((is_b | is_d | is_a) & (bids < 0)).any():
            raise _FastPathDeclined  # None ids on MAC kinds
        max_bid = int(bids.max(initial=-1))
        state.ensure(max_bid)

        # --- broadcasts: register state, check crashed senders -------
        if is_b.any():
            b_bid = bids[is_b]
            if len(np.unique(b_bid)) != len(b_bid):
                raise _FastPathDeclined  # reused broadcast id in chunk
            if not np.isnan(state.start[b_bid]).all():
                raise _FastPathDeclined  # reused id across chunks
            b_time = times[is_b]
            b_sender = gn[is_b]
            state.start[b_bid] = b_time
            state.sender[b_bid] = b_sender
            state.bpos[b_bid] = pos[is_b]
            state.payload_hash[b_bid] = ph[is_b]
            bad = b_time > crash_t[b_sender]
            out.flag(int(bad.sum()),
                     (f"crashed node {nodes[int(s)]!r} broadcast at "
                      f"{t}" for s, t in
                      zip(b_sender[bad], b_time[bad].tolist())))

        # --- acks: register position/time first (stream-position
        # comparisons make intra-chunk ordering exact), checks after --
        if is_a.any():
            a_bid = bids[is_a]
            if len(np.unique(a_bid)) != len(a_bid):
                raise _FastPathDeclined  # duplicate acks in one chunk
            a_time = times[is_a]
            a_pos = pos[is_a]
            a_node = gn[is_a]
            unknown = (np.isnan(state.start[a_bid])
                       | (state.bpos[a_bid] > a_pos))
            closed = (~unknown) & (state.ack_pos[a_bid] >= 0)
            out.flag(int((unknown | closed).sum()),
                     (f"ack for unknown or closed broadcast {b}"
                      for b in a_bid[unknown | closed].tolist()))
            ok_rows = ~(unknown | closed)
            if ok_rows.any():
                v_bid = a_bid[ok_rows]
                v_time = a_time[ok_rows]
                wrong = a_node[ok_rows] != state.sender[v_bid]
                out.flag(int(wrong.sum()),
                         (f"ack for broadcast {b} went to the wrong "
                          f"node" for b in v_bid[wrong].tolist()))
                if f_ack is not None:
                    late = (v_time - state.start[v_bid]) > f_ack + 1e-6
                    out.flag(int(late.sum()),
                             (f"ack for broadcast {b} took "
                              f"{d} > F_ack={f_ack}"
                              for b, d in zip(
                                  v_bid[late].tolist(),
                                  (v_time - state.start[v_bid])
                                  [late].tolist())))
                state.ack_time[v_bid] = v_time
                state.ack_pos[v_bid] = a_pos[ok_rows]

        # --- deliveries ----------------------------------------------
        if is_d.any():
            d_bid = bids[is_d]
            d_time = times[is_d]
            d_pos = pos[is_d]
            d_recv = gn[is_d]
            d_hash = ph[is_d]
            unknown = (np.isnan(state.start[d_bid])
                       | (state.bpos[d_bid] > d_pos)
                       | ((state.ack_pos[d_bid] >= 0)
                          & (state.ack_pos[d_bid] < d_pos)))
            out.flag(int(unknown.sum()),
                     (f"delivery for unknown or closed (already "
                      f"acked) broadcast {b}"
                      for b in d_bid[unknown].tolist()))
            live = ~unknown
            if live.any():
                v_bid = d_bid[live]
                v_time = d_time[live]
                v_recv = d_recv[live]
                v_send = state.sender[v_bid]
                nonneigh = ~adj[v_send, v_recv]
                out.flag(int(nonneigh.sum()),
                         (f"broadcast {b} delivered to non-neighbor "
                          f"of its sender"
                          for b in v_bid[nonneigh].tolist()))
                early = v_time < state.start[v_bid]
                out.flag(int(early.sum()),
                         (f"delivery of broadcast {b} precedes its "
                          f"start" for b in v_bid[early].tolist()))
                dead = v_time > crash_t[v_recv]
                out.flag(int(dead.sum()),
                         (f"delivery to crashed node "
                          f"{nodes[int(r)]!r}"
                          for r in v_recv[dead][v_recv[dead] < n]))
                mutated = d_hash[live] != state.payload_hash[v_bid]
                out.flag(int(mutated.sum()),
                         (f"broadcast {b} delivered mutated payload"
                          for b in v_bid[mutated].tolist()))
                np.add.at(state.deliver_count, v_bid, 1)
                np.bitwise_or.at(
                    state.deliver_mask, v_bid,
                    np.uint64(1) << v_recv.astype(np.uint64))
                np.maximum.at(state.deliver_last, v_bid, v_time)

    # --- end-of-stream checks over the per-broadcast columns ----------
    known = ~np.isnan(state.start)
    acked = known & (state.ack_pos >= 0)
    all_bids = np.arange(state.cap, dtype=np.int64)

    if hasattr(np, "bitwise_count"):
        popcount = np.bitwise_count(state.deliver_mask).astype(np.int64)
    else:  # pragma: no cover - numpy < 2.0
        popcount = np.fromiter(
            (int(m).bit_count() for m in state.deliver_mask.tolist()),
            dtype=np.int64, count=state.cap)
    dup = known & (popcount != state.deliver_count)
    out.flag(int(dup.sum()),
             (f"duplicate delivery of broadcast {b}"
              for b in all_bids[dup].tolist()))

    late_ack = acked & (state.ack_time < state.deliver_last - 1e-9)
    out.flag(int(late_ack.sum()),
             (f"ack for broadcast {b} precedes its last delivery"
              for b in all_bids[late_ack].tolist()))

    if acked.any():
        missing = neigh_mask[state.sender] & ~state.deliver_mask
        # A neighbor that crashed at or before the ack is excused --
        # exactly the reference checker's exemption.
        for c in set(crashed_idx):
            bit = np.uint64(1 << c)
            excused = acked & (state.ack_time >= crash_t[c])
            missing[excused] &= ~bit
        uncovered = acked & (missing != 0)
        out.flag(int(uncovered.sum()),
                 (f"ack for broadcast {b} of "
                  f"{nodes[int(state.sender[b])]!r} before some "
                  f"non-faulty neighbor received"
                  for b in all_bids[uncovered].tolist()))

    out.finish()
    return report
