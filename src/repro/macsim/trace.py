"""Execution traces.

Every run of the simulator produces a :class:`Trace`: an append-only log
of model-level occurrences (broadcasts, deliveries, acks, decisions,
crashes). Traces serve three purposes in this reproduction:

1. **Metrics** -- decision times and message counts for the experiment
   harness (`repro.analysis.metrics`).
2. **Model invariants** -- `repro.macsim.invariants` replays a trace and
   checks the abstract MAC layer contract (exactly-once delivery to each
   non-faulty neighbor, acks after deliveries, acks within ``F_ack``).
3. **Indistinguishability** -- the lower-bound experiments compare
   per-node event sequences across executions in different networks
   (`repro.lowerbounds.indist`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

#: The record kinds a trace may contain.
TRACE_KINDS = ("broadcast", "deliver", "ack", "decide", "crash", "discard")


@dataclass(frozen=True)
class TraceRecord:
    """One occurrence in an execution.

    Fields are interpreted per ``kind``:

    * ``broadcast``: ``node`` is the sender, ``payload`` the message,
      ``broadcast_id`` the fresh broadcast identifier.
    * ``deliver``: ``node`` is the receiver; ``peer`` the sender.
    * ``ack``: ``node`` is the sender being acked.
    * ``decide``: ``node`` decided value ``payload``.
    * ``crash``: ``node`` crashed.
    * ``discard``: ``node`` attempted a broadcast while one was already
      in flight; the message was dropped (Section 2 of the paper).
    """

    time: float
    kind: str
    node: Any
    broadcast_id: Optional[int] = None
    peer: Any = None
    payload: Any = None


class Trace:
    """Append-only event log with query helpers."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def append(self, record: TraceRecord) -> None:
        self._records.append(record)

    def record(self, time: float, kind: str, node: Any, *,
               broadcast_id: Optional[int] = None, peer: Any = None,
               payload: Any = None) -> None:
        """Convenience constructor-and-append."""
        if kind not in TRACE_KINDS:
            raise ValueError(f"unknown trace kind: {kind!r}")
        self.append(TraceRecord(time, kind, node,
                                broadcast_id=broadcast_id,
                                peer=peer, payload=payload))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records with the given kind, in order."""
        return [r for r in self._records if r.kind == kind]

    def for_node(self, node: Any) -> list[TraceRecord]:
        """All records whose primary node is ``node``, in order."""
        return [r for r in self._records if r.node == node]

    def decisions(self) -> dict[Any, Any]:
        """Map of node -> decided value (first decision per node)."""
        out: dict[Any, Any] = {}
        for r in self._records:
            if r.kind == "decide" and r.node not in out:
                out[r.node] = r.payload
        return out

    def decision_times(self) -> dict[Any, float]:
        """Map of node -> time of its (first) decision."""
        out: dict[Any, float] = {}
        for r in self._records:
            if r.kind == "decide" and r.node not in out:
                out[r.node] = r.time
        return out

    def last_decision_time(self) -> Optional[float]:
        """Time at which the final node decided, or ``None``."""
        times = self.decision_times()
        if not times:
            return None
        return max(times.values())

    def broadcast_count(self, node: Any = None) -> int:
        """Number of completed broadcast events (optionally per node)."""
        if node is None:
            return sum(1 for r in self._records if r.kind == "broadcast")
        return sum(1 for r in self._records
                   if r.kind == "broadcast" and r.node == node)

    def delivery_count(self) -> int:
        """Total number of message deliveries in the execution."""
        return sum(1 for r in self._records if r.kind == "deliver")

    def crashed_nodes(self) -> set[Any]:
        """The set of nodes that crashed during the execution."""
        return {r.node for r in self._records if r.kind == "crash"}
