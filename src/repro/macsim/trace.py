"""Execution traces: the pluggable sink pipeline.

Every run of the simulator produces a stream of model-level
*occurrences* (broadcasts, deliveries, acks, decisions, crashes). The
engine does not mutate a concrete log; it emits each occurrence to a
:class:`TraceSink`, and the sink decides what to materialize. Traces
serve three purposes in this reproduction:

1. **Metrics** -- decision times and message counts for the experiment
   harness (`repro.analysis.metrics`).
2. **Model invariants** -- `repro.macsim.invariants` replays a trace and
   checks the abstract MAC layer contract (exactly-once delivery to each
   non-faulty neighbor, acks after deliveries, acks within ``F_ack``).
3. **Indistinguishability** -- the lower-bound experiments compare
   per-node event sequences across executions in different networks
   (`repro.lowerbounds.indist`).

Choosing a sink
---------------
Four sinks ship behind the protocol (:func:`make_sink` maps a
:class:`TraceLevel` to one):

* :class:`IndexedMemorySink` (``TraceLevel.FULL``, the default) --
  every occurrence is stored in RAM as a :class:`TraceRecord`, with
  every query backed by an index maintained incrementally at append
  time. Byte-identical to the pre-pipeline engine; required by the
  indistinguishability experiments and anything that touches original
  payload objects. Memory is O(events) -- fine up to a few million
  records.
* :class:`DecisionsSink` (``TraceLevel.DECISIONS``) -- only ``decide``
  and ``crash`` records are stored. MAC-level occurrences still update
  the occurrence *counters* (so ``broadcast_count()``,
  ``delivery_count()`` and per-node broadcast counts stay exact) but no
  record object is allocated. The sweep/benchmark mode: consensus
  checking and metrics work, full-trace replays do not.
* :class:`SpillSink` (``TraceLevel.SPILL``) -- full-level records
  stream to chunked JSONL files on disk while decisions, crashes and
  all counters stay in an in-RAM index. Replay-style consumers
  (model-invariant checking, export) iterate the chunks back in order
  with O(chunk) memory, so 10^7+-event runs complete in bounded RAM.
  Replayed payloads come back as ``repr`` strings (the export
  convention); decisions/counters keep original objects.
* :class:`repro.macsim.columnar.ColumnarSink`
  (``TraceLevel.COLUMNAR``) -- same streaming contract as ``SPILL``
  but chunks are binary struct-packed *columns* (typed arrays plus
  per-chunk interned label/payload tables, zlib-compressed): ~5-10x
  smaller on disk, and replay consumers with a columnar fast path
  (invariants, metrics rebuild) read whole chunks as numpy views
  instead of parsing records. The 10^8-event mode.

``Trace`` remains the concrete in-memory implementation (both FULL and
DECISIONS levels) for backwards compatibility; ``IndexedMemorySink``
and ``DecisionsSink`` are thin level-pinning subclasses.

Sink capability flags drive the harness:

* ``replayable`` -- iterating the sink yields every occurrence, so
  model-invariant replay is possible (FULL and SPILL, not DECISIONS);
* ``materializes_mac`` -- the engine must call :meth:`TraceSink.record`
  for MAC-level kinds (vs. the counter-only ``bump`` fast path);
* ``payloads_preserialized`` -- replayed payloads are already ``repr``
  strings (SPILL), so exporters must not re-``repr`` them.
"""

from __future__ import annotations

import enum
import io
import json
import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

#: The record kinds a trace may contain.
TRACE_KINDS = ("broadcast", "deliver", "ack", "decide", "crash",
               "discard", "drop", "topo")
_TRACE_KIND_SET = frozenset(TRACE_KINDS)

#: Kinds always materialized in RAM, even by counting/spilling sinks.
#: ``topo`` is essential so the connectivity probe (and invariant
#: replay of dynamic-topology runs) can read the epoch timeline from
#: any sink -- there is at most a handful of records per epoch.
_ESSENTIAL_KINDS = frozenset(("decide", "crash", "topo"))

#: ``broadcast_id`` codes of ``topo`` records (dynamic-topology runs;
#: see :mod:`repro.macsim.dynamics`). Edge events carry the endpoints
#: in ``node``/``peer``; node events carry the node alone.
TOPO_EDGE_DOWN = 0
TOPO_EDGE_UP = 1
TOPO_NODE_DOWN = 2
TOPO_NODE_UP = 3


class TraceLevel(enum.Enum):
    """How much of an execution a trace sink materializes, and where."""

    #: Store every occurrence in RAM (the default; required by the
    #: indistinguishability experiments).
    FULL = "full"
    #: Store only decisions and crashes; count everything else.
    DECISIONS = "decisions"
    #: Store every occurrence, streamed to chunked JSONL on disk with
    #: an in-RAM decisions/counter index (bounded-memory full traces).
    SPILL = "spill"
    #: Like SPILL but chunks are binary struct-packed columns (typed
    #: arrays + interned string tables, zlib): ~5-10x smaller spills
    #: and vectorized whole-chunk replay. See
    #: :class:`repro.macsim.columnar.ColumnarSink`.
    COLUMNAR = "columnar"

    @classmethod
    def coerce(cls, value: "TraceLevel | str") -> "TraceLevel":
        """Accept a :class:`TraceLevel` or its string value."""
        if isinstance(value, cls):
            return value
        return cls(value)


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One occurrence in an execution.

    Fields are interpreted per ``kind``:

    * ``broadcast``: ``node`` is the sender, ``payload`` the message,
      ``broadcast_id`` the fresh broadcast identifier.
    * ``deliver``: ``node`` is the receiver; ``peer`` the sender.
    * ``ack``: ``node`` is the sender being acked.
    * ``decide``: ``node`` decided value ``payload``.
    * ``crash``: ``node`` crashed.
    * ``discard``: ``node`` attempted a broadcast while one was already
      in flight; the message was dropped (Section 2 of the paper).
    * ``drop``: a fault model swallowed the delivery of broadcast
      ``broadcast_id`` (from ``peer``) to ``node``; ``payload`` is the
      original (pre-forgery) payload that was lost.
    * ``topo``: a topology-dynamics epoch changed the live graph
      (:mod:`repro.macsim.dynamics`). ``broadcast_id`` is one of the
      ``TOPO_*`` codes: edge up/down events carry the endpoints in
      ``node``/``peer``; node leave/join events carry the node alone.
      All fields are JSON-lossless, so dynamic runs replay exactly.
    """

    time: float
    kind: str
    node: Any
    broadcast_id: Optional[int] = None
    peer: Any = None
    payload: Any = None


class TraceSink:
    """Protocol for execution-trace consumers.

    The simulator emits every occurrence through :meth:`record` (or
    :meth:`bump` when the sink does not materialize MAC-level kinds);
    the analysis layer reads results back through the query API. All
    query methods must stay exact regardless of what is materialized --
    counters count every reported occurrence.

    Subclasses must implement :meth:`record`, :meth:`bump` and the
    queries; the capability flags (class attributes here) tell the
    engine and harness what the sink supports.
    """

    __slots__ = ()

    #: Level tag for introspection / CLI round-tripping.
    level = TraceLevel.FULL
    #: Whether iterating the sink replays every occurrence in order.
    replayable = False
    #: Whether the engine must route MAC-level kinds through record().
    materializes_mac = False
    #: Whether replayed payloads are already ``repr`` strings.
    payloads_preserialized = False

    def record(self, time: float, kind: str, node: Any, *,
               broadcast_id: Optional[int] = None, peer: Any = None,
               payload: Any = None) -> None:
        """Consume one occurrence."""
        raise NotImplementedError

    def bump(self, kind: str, node: Any = None) -> None:
        """Count an occurrence without materializing a record."""
        raise NotImplementedError

    # -- queries (shared contract; see Trace for semantics) ------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        raise NotImplementedError

    def for_node(self, node: Any) -> List[TraceRecord]:
        raise NotImplementedError

    def decisions(self) -> Dict[Any, Any]:
        raise NotImplementedError

    def decision_times(self) -> Dict[Any, float]:
        raise NotImplementedError

    def last_decision_time(self) -> Optional[float]:
        times = self.decision_times()
        return max(times.values()) if times else None

    def broadcast_count(self, node: Any = None) -> int:
        raise NotImplementedError

    def broadcasts_per_node(self) -> Dict[Any, int]:
        raise NotImplementedError

    def delivery_count(self) -> int:
        return self.count_of_kind("deliver")

    def count_of_kind(self, kind: str) -> int:
        raise NotImplementedError

    def crashed_nodes(self) -> set:
        return {r.node for r in self.of_kind("crash")}

    def close(self) -> None:
        """Flush buffered state; queries stay valid afterwards."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class Trace(TraceSink):
    """Append-only in-memory event log with indexed query helpers.

    The record log stays append-only, but every query the harness
    performs is backed by an index maintained incrementally at
    ``append`` time: per-kind and per-node record lists, first-decision
    maps, and occurrence counters. ``decisions()``,
    ``decision_times()``, ``of_kind()``, ``for_node()`` and the count
    helpers are therefore O(1)/O(k) in the size of their *answer*,
    never in the length of the trace.
    """

    __slots__ = ("level", "_records", "_by_kind", "_by_node",
                 "_decisions", "_decision_times", "_kind_counts",
                 "_broadcasts_by_node")

    def __init__(self, level: "TraceLevel | str" = TraceLevel.FULL) -> None:
        self.level = TraceLevel.coerce(level)
        self._records: List[TraceRecord] = []
        self._by_kind: Dict[str, List[TraceRecord]] = {}
        self._by_node: Dict[Any, List[TraceRecord]] = {}
        self._decisions: Dict[Any, Any] = {}
        self._decision_times: Dict[Any, float] = {}
        #: Occurrence counters; unlike the record log these count every
        #: reported occurrence regardless of the trace level. Prefilled
        #: so hot paths may increment without a .get() dance.
        self._kind_counts: Dict[str, int] = {k: 0 for k in TRACE_KINDS}
        self._broadcasts_by_node: Dict[Any, int] = {}

    @property
    def replayable(self) -> bool:
        return self.level is TraceLevel.FULL

    @property
    def materializes_mac(self) -> bool:
        return self.level is TraceLevel.FULL

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def append(self, record: TraceRecord) -> None:
        """Append a record, updating every index incrementally."""
        self._records.append(record)
        kind = record.kind
        node = record.node
        by_kind = self._by_kind.get(kind)
        if by_kind is None:
            by_kind = self._by_kind[kind] = []
        by_kind.append(record)
        by_node = self._by_node.get(node)
        if by_node is None:
            by_node = self._by_node[node] = []
        by_node.append(record)
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if kind == "decide":
            if node not in self._decisions:
                self._decisions[node] = record.payload
                self._decision_times[node] = record.time
        elif kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)

    def record(self, time: float, kind: str, node: Any, *,
               broadcast_id: Optional[int] = None, peer: Any = None,
               payload: Any = None) -> None:
        """Convenience constructor-and-append.

        At :attr:`TraceLevel.DECISIONS`, MAC-level kinds are counted but
        not materialized.
        """
        if kind not in _TRACE_KIND_SET:
            raise ValueError(f"unknown trace kind: {kind!r}")
        if (self.level is TraceLevel.DECISIONS
                and kind not in _ESSENTIAL_KINDS):
            self.bump(kind, node)
            return
        self.append(TraceRecord(time, kind, node,
                                broadcast_id=broadcast_id,
                                peer=peer, payload=payload))

    def bump(self, kind: str, node: Any = None) -> None:
        """Count an occurrence without materializing a record."""
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind, in order."""
        return list(self._by_kind.get(kind, ()))

    def for_node(self, node: Any) -> List[TraceRecord]:
        """All records whose primary node is ``node``, in order."""
        return list(self._by_node.get(node, ()))

    def decisions(self) -> Dict[Any, Any]:
        """Map of node -> decided value (first decision per node)."""
        return dict(self._decisions)

    def decision_times(self) -> Dict[Any, float]:
        """Map of node -> time of its (first) decision."""
        return dict(self._decision_times)

    def last_decision_time(self) -> Optional[float]:
        """Time at which the final node decided, or ``None``."""
        if not self._decision_times:
            return None
        return max(self._decision_times.values())

    def broadcast_count(self, node: Any = None) -> int:
        """Number of completed broadcast events (optionally per node)."""
        if node is None:
            return self._kind_counts.get("broadcast", 0)
        return self._broadcasts_by_node.get(node, 0)

    def broadcasts_per_node(self) -> Dict[Any, int]:
        """Map of node -> number of broadcasts it started."""
        return dict(self._broadcasts_by_node)

    def delivery_count(self) -> int:
        """Total number of message deliveries in the execution."""
        return self._kind_counts.get("deliver", 0)

    def count_of_kind(self, kind: str) -> int:
        """Occurrence count for ``kind`` (counts skipped records too)."""
        return self._kind_counts.get(kind, 0)

    def crashed_nodes(self) -> set:
        """The set of nodes that crashed during the execution."""
        return {r.node for r in self._by_kind.get("crash", ())}


class IndexedMemorySink(Trace):
    """The default sink: today's fully indexed in-RAM trace."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(TraceLevel.FULL)


class DecisionsSink(Trace):
    """Counting sink: decide/crash records only, exact counters."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(TraceLevel.DECISIONS)


# ----------------------------------------------------------------------
# Spill-to-disk sink
# ----------------------------------------------------------------------
#: Records per JSONL chunk file; bounds replay memory and buffer size.
DEFAULT_CHUNK_RECORDS = 50_000

_TUPLE_TAG = "__t__"


class SpillBudgetError(RuntimeError):
    """A disk-spilling sink exceeded its configured byte budget.

    Raised at flush time by :class:`SpillSink` /
    :class:`repro.macsim.columnar.ColumnarSink` when ``max_bytes`` is
    set and the chunk files have grown past it. The run fails loudly
    instead of silently truncating the trace; everything spilled so
    far remains on disk for post-mortem inspection.
    """


def _pack_label(value: Any) -> Any:
    """JSON-lossless packing for node/peer labels (ints, strings,
    floats, None, and tuples thereof); anything else falls back to
    ``repr``."""
    if value is None or isinstance(value, (int, str, float)):
        return value
    if isinstance(value, tuple):
        return [_TUPLE_TAG] + [_pack_label(v) for v in value]
    return repr(value)


def _unpack_label(value: Any) -> Any:
    if isinstance(value, list):
        if value and value[0] == _TUPLE_TAG:
            return tuple(_unpack_label(v) for v in value[1:])
        return [_unpack_label(v) for v in value]
    return value


#: Kind string -> pre-encoded JSON fragment; saves re-encoding the
#: same eight literals hundreds of millions of times on the hot spill
#: path. Doubles as the validity check (``.get`` returns ``None`` for
#: unknown kinds).
_KIND_JSON = {k: json.dumps(k) for k in TRACE_KINDS}

#: Kind string replay-interning table: ``_parse`` maps the parsed kind
#: through this so replayed records share the eight canonical string
#: objects instead of allocating a fresh one per record.
_KIND_INTERN = {k: k for k in TRACE_KINDS}


class SpillSink(TraceSink):
    """Full-level trace streamed to chunked JSONL files on disk.

    Every occurrence is serialized into the current chunk buffer and
    flushed to ``chunk-NNNNN.jsonl`` every ``chunk_records`` records;
    decisions, crashes and all occurrence counters additionally stay in
    an in-RAM index, so metrics and consensus checking never touch the
    disk. Iterating the sink replays the records in order, one chunk at
    a time -- O(chunk) memory however long the run -- which is what
    :func:`repro.macsim.invariants.check_model_invariants` and the
    streaming exporter consume.

    Serialization follows the export convention: node labels
    round-trip losslessly (ints/strings/floats/tuples), payloads come
    back as their ``repr`` strings. The in-RAM decision index keeps the
    *original* payload objects, so ``decisions()`` (and therefore
    consensus checking) is exact.

    The sink owns its directory when none is supplied (a fresh temp
    dir, removed on :meth:`cleanup` or garbage collection). ``close()``
    flushes the tail chunk; queries and iteration stay valid after it.
    ``max_bytes`` optionally bounds the on-disk footprint: exceeding
    it raises :class:`SpillBudgetError` at flush time instead of
    silently truncating the trace.
    """

    __slots__ = ("directory", "chunk_records", "max_bytes",
                 "_chunk_paths", "_buffer", "_spilled", "_spilled_bytes",
                 "_label_json", "_by_kind_essential", "_decisions",
                 "_decision_times", "_kind_counts", "_broadcasts_by_node",
                 "_owns_dir", "_finalizer", "__weakref__")

    level = TraceLevel.SPILL
    replayable = True
    materializes_mac = True
    payloads_preserialized = True

    def __init__(self, directory: Optional[str] = None, *,
                 chunk_records: int = DEFAULT_CHUNK_RECORDS,
                 max_bytes: Optional[int] = None) -> None:
        if chunk_records <= 0:
            raise ValueError("chunk_records must be positive")
        self._owns_dir = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="macsim-spill-")
        else:
            os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.chunk_records = chunk_records
        self.max_bytes = max_bytes
        self._chunk_paths: List[str] = []
        self._buffer: List[str] = []
        self._spilled = 0
        self._spilled_bytes = 0
        #: label -> pre-encoded JSON fragment (labels repeat per node).
        self._label_json: Dict[Any, str] = {None: "null"}
        self._by_kind_essential: Dict[str, List[TraceRecord]] = {}
        self._decisions: Dict[Any, Any] = {}
        self._decision_times: Dict[Any, float] = {}
        self._kind_counts: Dict[str, int] = {k: 0 for k in TRACE_KINDS}
        self._broadcasts_by_node: Dict[Any, int] = {}
        if self._owns_dir:
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, directory, True)
        else:
            self._finalizer = None

    # -- ingestion -----------------------------------------------------
    def _label_fragment(self, label: Any) -> str:
        fragment = self._label_json.get(label)
        if fragment is None:
            fragment = self._label_json[label] = json.dumps(
                _pack_label(label), separators=(",", ":"))
        return fragment

    def record(self, time: float, kind: str, node: Any, *,
               broadcast_id: Optional[int] = None, peer: Any = None,
               payload: Any = None) -> None:
        kind_json = _KIND_JSON.get(kind)
        if kind_json is None:
            raise ValueError(f"unknown trace kind: {kind!r}")
        # Hand-assembled JSON array, json.loads-compatible with the
        # previous json.dumps output: labels and kinds come from the
        # intern caches, only time and payload are encoded per record.
        self._buffer.append(
            f"[{json.dumps(time)}, {kind_json}, "
            f"{self._label_fragment(node)}, "
            f"{'null' if broadcast_id is None else broadcast_id}, "
            f"{self._label_fragment(peer)}, "
            f"{'null' if payload is None else json.dumps(repr(payload))}]")
        if len(self._buffer) >= self.chunk_records:
            self.flush()
        self._kind_counts[kind] += 1
        if kind == "decide":
            if node not in self._decisions:
                self._decisions[node] = payload
                self._decision_times[node] = time
        elif kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)
        if kind in _ESSENTIAL_KINDS:
            bucket = self._by_kind_essential.get(kind)
            if bucket is None:
                bucket = self._by_kind_essential[kind] = []
            bucket.append(TraceRecord(time, kind, node,
                                      broadcast_id=broadcast_id,
                                      peer=peer, payload=payload))

    def append(self, record: TraceRecord) -> None:
        """Protocol parity with :class:`Trace` (used by trace import)."""
        self.record(record.time, record.kind, record.node,
                    broadcast_id=record.broadcast_id, peer=record.peer,
                    payload=record.payload)

    def append_serialized(self, record: TraceRecord) -> None:
        """Append a record whose payload is *already* a ``repr`` string
        (the replay/import path: reloading a v3 export or another
        sink's replay stream). Skips the second ``repr`` that
        :meth:`record` would apply, so reload -> re-export round-trips
        byte-identically."""
        kind = record.kind
        kind_json = _KIND_JSON.get(kind)
        if kind_json is None:
            raise ValueError(f"unknown trace kind: {kind!r}")
        bid = record.broadcast_id
        payload = record.payload
        self._buffer.append(
            f"[{json.dumps(record.time)}, {kind_json}, "
            f"{self._label_fragment(record.node)}, "
            f"{'null' if bid is None else bid}, "
            f"{self._label_fragment(record.peer)}, "
            f"{'null' if payload is None else json.dumps(payload)}]")
        if len(self._buffer) >= self.chunk_records:
            self.flush()
        self._kind_counts[kind] += 1
        node = record.node
        if kind == "decide":
            if node not in self._decisions:
                self._decisions[node] = record.payload
                self._decision_times[node] = record.time
        elif kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)
        if kind in _ESSENTIAL_KINDS:
            bucket = self._by_kind_essential.get(kind)
            if bucket is None:
                bucket = self._by_kind_essential[kind] = []
            bucket.append(record)

    def bump(self, kind: str, node: Any = None) -> None:
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)

    def flush(self) -> None:
        """Write the buffered tail out as a new chunk file."""
        if not self._buffer:
            return
        path = os.path.join(self.directory,
                            f"chunk-{len(self._chunk_paths):05d}.jsonl")
        body = ("\n".join(self._buffer) + "\n").encode("utf-8")
        with open(path, "wb") as handle:
            handle.write(body)
        self._chunk_paths.append(path)
        self._spilled += len(self._buffer)
        self._spilled_bytes += len(body)
        self._buffer = []
        if (self.max_bytes is not None
                and self._spilled_bytes > self.max_bytes):
            raise SpillBudgetError(
                f"JSONL spill exceeded its disk budget: "
                f"{self._spilled_bytes:,} bytes > {self.max_bytes:,} "
                f"({self._spilled:,} records in {self.directory})")

    def close(self) -> None:
        self.flush()

    def cleanup(self) -> None:
        """Remove the spill directory (only if this sink created it)."""
        if self._finalizer is not None:
            self._finalizer()

    def spilled_bytes(self) -> int:
        """Total bytes written to chunk files so far."""
        return self._spilled_bytes

    # -- replay --------------------------------------------------------
    def __len__(self) -> int:
        return self._spilled + len(self._buffer)

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.iter_records()

    def iter_records(self) -> Iterator[TraceRecord]:
        """Replay every record in order, one chunk at a time."""
        for path in self._chunk_paths:
            with io.open(path, encoding="utf-8") as handle:
                for line in handle:
                    yield self._parse(line)
        for line in self._buffer:
            yield self._parse(line)

    @staticmethod
    def _parse(line: str) -> TraceRecord:
        time, kind, node, bid, peer, payload = json.loads(line)
        return TraceRecord(time, _KIND_INTERN.get(kind, kind),
                           _unpack_label(node),
                           broadcast_id=bid, peer=_unpack_label(peer),
                           payload=payload)

    def chunk_paths(self) -> List[str]:
        """Paths of the flushed chunks, in record order."""
        return list(self._chunk_paths)

    # -- queries -------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records of ``kind``.

        O(1) for decide/crash (RAM index, original payloads); a full
        streaming scan -- materializing the answer -- for MAC-level
        kinds. Prefer :meth:`iter_records` for bounded-memory scans.
        """
        if kind in _ESSENTIAL_KINDS:
            return list(self._by_kind_essential.get(kind, ()))
        return [r for r in self.iter_records() if r.kind == kind]

    def for_node(self, node: Any) -> List[TraceRecord]:
        return [r for r in self.iter_records() if r.node == node]

    def decisions(self) -> Dict[Any, Any]:
        return dict(self._decisions)

    def decision_times(self) -> Dict[Any, float]:
        return dict(self._decision_times)

    def broadcast_count(self, node: Any = None) -> int:
        if node is None:
            return self._kind_counts.get("broadcast", 0)
        return self._broadcasts_by_node.get(node, 0)

    def broadcasts_per_node(self) -> Dict[Any, int]:
        return dict(self._broadcasts_by_node)

    def count_of_kind(self, kind: str) -> int:
        return self._kind_counts.get(kind, 0)

    def crashed_nodes(self) -> set:
        return {r.node for r in self._by_kind_essential.get("crash", ())}


def make_sink(level: "TraceLevel | str", **spill_kwargs) -> TraceSink:
    """Construct the sink for a :class:`TraceLevel`.

    ``spill_kwargs`` (``directory``, ``chunk_records``, ``max_bytes``)
    apply only to the disk-spilling levels (:attr:`TraceLevel.SPILL`
    and :attr:`TraceLevel.COLUMNAR`).
    """
    level = TraceLevel.coerce(level)
    if level is TraceLevel.SPILL:
        return SpillSink(**spill_kwargs)
    if level is TraceLevel.COLUMNAR:
        # Deferred import: columnar.py imports from this module.
        from .columnar import ColumnarSink
        return ColumnarSink(**spill_kwargs)
    if spill_kwargs:
        raise ValueError(f"spill options are invalid for {level}")
    if level is TraceLevel.DECISIONS:
        return DecisionsSink()
    return IndexedMemorySink()
