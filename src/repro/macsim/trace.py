"""Execution traces.

Every run of the simulator produces a :class:`Trace`: an append-only log
of model-level occurrences (broadcasts, deliveries, acks, decisions,
crashes). Traces serve three purposes in this reproduction:

1. **Metrics** -- decision times and message counts for the experiment
   harness (`repro.analysis.metrics`).
2. **Model invariants** -- `repro.macsim.invariants` replays a trace and
   checks the abstract MAC layer contract (exactly-once delivery to each
   non-faulty neighbor, acks after deliveries, acks within ``F_ack``).
3. **Indistinguishability** -- the lower-bound experiments compare
   per-node event sequences across executions in different networks
   (`repro.lowerbounds.indist`).

Fast-path design
----------------
The record log stays append-only, but every query the harness performs
is now backed by an index maintained incrementally at ``append`` time:
per-kind and per-node record lists, first-decision maps, and occurrence
counters. ``decisions()``, ``decision_times()``, ``of_kind()``,
``for_node()`` and the count helpers are therefore O(1)/O(k) in the
size of their *answer*, never in the length of the trace.

``TraceLevel`` controls how much is materialized:

* :attr:`TraceLevel.FULL` (default) -- every occurrence is stored as a
  :class:`TraceRecord`; byte-identical to the pre-fast-path engine.
* :attr:`TraceLevel.DECISIONS` -- only ``decide`` and ``crash`` records
  are stored. MAC-level occurrences (broadcast/deliver/ack/discard)
  still update the occurrence *counters* (so ``broadcast_count()``,
  ``delivery_count()`` and per-node broadcast counts stay exact) but no
  record object is allocated. This is the opt-in sweep/benchmark mode:
  consensus checking and metrics work, full-trace replays (model
  invariants, indistinguishability) do not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

#: The record kinds a trace may contain.
TRACE_KINDS = ("broadcast", "deliver", "ack", "decide", "crash",
               "discard", "drop")
_TRACE_KIND_SET = frozenset(TRACE_KINDS)

#: Kinds always materialized, even at ``TraceLevel.DECISIONS``.
_ESSENTIAL_KINDS = frozenset(("decide", "crash"))


class TraceLevel(enum.Enum):
    """How much of an execution a :class:`Trace` materializes."""

    #: Store every occurrence (the default; required by invariant
    #: checking and the indistinguishability experiments).
    FULL = "full"
    #: Store only decisions and crashes; count everything else.
    DECISIONS = "decisions"

    @classmethod
    def coerce(cls, value: "TraceLevel | str") -> "TraceLevel":
        """Accept a :class:`TraceLevel` or its string value."""
        if isinstance(value, cls):
            return value
        return cls(value)


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One occurrence in an execution.

    Fields are interpreted per ``kind``:

    * ``broadcast``: ``node`` is the sender, ``payload`` the message,
      ``broadcast_id`` the fresh broadcast identifier.
    * ``deliver``: ``node`` is the receiver; ``peer`` the sender.
    * ``ack``: ``node`` is the sender being acked.
    * ``decide``: ``node`` decided value ``payload``.
    * ``crash``: ``node`` crashed.
    * ``discard``: ``node`` attempted a broadcast while one was already
      in flight; the message was dropped (Section 2 of the paper).
    * ``drop``: a fault model swallowed the delivery of broadcast
      ``broadcast_id`` (from ``peer``) to ``node``; ``payload`` is the
      original (pre-forgery) payload that was lost.
    """

    time: float
    kind: str
    node: Any
    broadcast_id: Optional[int] = None
    peer: Any = None
    payload: Any = None


class Trace:
    """Append-only event log with indexed query helpers."""

    __slots__ = ("level", "_records", "_by_kind", "_by_node",
                 "_decisions", "_decision_times", "_kind_counts",
                 "_broadcasts_by_node")

    def __init__(self, level: "TraceLevel | str" = TraceLevel.FULL) -> None:
        self.level = TraceLevel.coerce(level)
        self._records: List[TraceRecord] = []
        self._by_kind: Dict[str, List[TraceRecord]] = {}
        self._by_node: Dict[Any, List[TraceRecord]] = {}
        self._decisions: Dict[Any, Any] = {}
        self._decision_times: Dict[Any, float] = {}
        #: Occurrence counters; unlike the record log these count every
        #: reported occurrence regardless of the trace level. Prefilled
        #: so hot paths may increment without a .get() dance.
        self._kind_counts: Dict[str, int] = {k: 0 for k in TRACE_KINDS}
        self._broadcasts_by_node: Dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def append(self, record: TraceRecord) -> None:
        """Append a record, updating every index incrementally."""
        self._records.append(record)
        kind = record.kind
        node = record.node
        by_kind = self._by_kind.get(kind)
        if by_kind is None:
            by_kind = self._by_kind[kind] = []
        by_kind.append(record)
        by_node = self._by_node.get(node)
        if by_node is None:
            by_node = self._by_node[node] = []
        by_node.append(record)
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if kind == "decide":
            if node not in self._decisions:
                self._decisions[node] = record.payload
                self._decision_times[node] = record.time
        elif kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)

    def record(self, time: float, kind: str, node: Any, *,
               broadcast_id: Optional[int] = None, peer: Any = None,
               payload: Any = None) -> None:
        """Convenience constructor-and-append.

        At :attr:`TraceLevel.DECISIONS`, MAC-level kinds are counted but
        not materialized.
        """
        if kind not in _TRACE_KIND_SET:
            raise ValueError(f"unknown trace kind: {kind!r}")
        if (self.level is TraceLevel.DECISIONS
                and kind not in _ESSENTIAL_KINDS):
            self.bump(kind, node)
            return
        self.append(TraceRecord(time, kind, node,
                                broadcast_id=broadcast_id,
                                peer=peer, payload=payload))

    def bump(self, kind: str, node: Any = None) -> None:
        """Count an occurrence without materializing a record."""
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if kind == "broadcast":
            self._broadcasts_by_node[node] = (
                self._broadcasts_by_node.get(node, 0) + 1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind, in order."""
        return list(self._by_kind.get(kind, ()))

    def for_node(self, node: Any) -> List[TraceRecord]:
        """All records whose primary node is ``node``, in order."""
        return list(self._by_node.get(node, ()))

    def decisions(self) -> Dict[Any, Any]:
        """Map of node -> decided value (first decision per node)."""
        return dict(self._decisions)

    def decision_times(self) -> Dict[Any, float]:
        """Map of node -> time of its (first) decision."""
        return dict(self._decision_times)

    def last_decision_time(self) -> Optional[float]:
        """Time at which the final node decided, or ``None``."""
        if not self._decision_times:
            return None
        return max(self._decision_times.values())

    def broadcast_count(self, node: Any = None) -> int:
        """Number of completed broadcast events (optionally per node)."""
        if node is None:
            return self._kind_counts.get("broadcast", 0)
        return self._broadcasts_by_node.get(node, 0)

    def broadcasts_per_node(self) -> Dict[Any, int]:
        """Map of node -> number of broadcasts it started."""
        return dict(self._broadcasts_by_node)

    def delivery_count(self) -> int:
        """Total number of message deliveries in the execution."""
        return self._kind_counts.get("deliver", 0)

    def count_of_kind(self, kind: str) -> int:
        """Occurrence count for ``kind`` (counts skipped records too)."""
        return self._kind_counts.get(kind, 0)

    def crashed_nodes(self) -> set:
        """The set of nodes that crashed during the execution."""
        return {r.node for r in self._by_kind.get("crash", ())}
