"""Event queue primitives for the discrete-event engine.

The simulator is driven by a single priority queue of :class:`Event`
records ordered by ``(time, priority, seq)``:

* ``time`` -- the simulated global time of the event.
* ``priority`` -- a small integer that orders simultaneous events. The
  ordering (crashes, then deliveries, then acks, then node wake-ups)
  implements the synchronous scheduler's "deliver everything, then ack
  everything" convention from Section 3.2 of the paper.
* ``seq`` -- a monotonically increasing tiebreak, making every run fully
  deterministic for a fixed scheduler.

Events carry a ``kind`` tag plus the broadcast record / node they refer
to. Cancellation is implemented with a lazy tombstone flag, the standard
approach for binary-heap based simulators.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Event priority classes, ordered: crash < deliver < ack < wakeup.
CRASH_PRIORITY = 0
DELIVER_PRIORITY = 1
ACK_PRIORITY = 2
WAKEUP_PRIORITY = 3

#: Valid ``Event.kind`` values.
EVENT_KINDS = ("crash", "deliver", "ack", "wakeup")


@dataclass(order=True)
class Event:
    """A single scheduled occurrence in the simulation.

    Only the ordering key participates in comparisons; the payload
    fields are excluded so that heap operations never compare payloads.
    """

    time: float
    priority: int
    seq: int
    kind: str = field(compare=False)
    node: Any = field(compare=False, default=None)
    broadcast_id: Optional[int] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as a tombstone; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, priority: int, kind: str,
             node: Any = None, broadcast_id: Optional[int] = None) -> Event:
        """Schedule a new event and return it (for later cancellation)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind: {kind!r}")
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            kind=kind,
            node=node,
            broadcast_id=broadcast_id,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` when empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None
