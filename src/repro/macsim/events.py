"""Event queue primitives for the discrete-event engine.

The simulator is driven by a single priority queue of events ordered by
``(time, priority, seq)``:

* ``time`` -- the simulated global time of the event.
* ``priority`` -- a small integer that orders simultaneous events. The
  ordering (crashes, then deliveries, then acks, then node wake-ups)
  implements the synchronous scheduler's "deliver everything, then ack
  everything" convention from Section 3.2 of the paper.
* ``seq`` -- a monotonically increasing tiebreak, making every run fully
  deterministic for a fixed scheduler.

Events carry a ``kind`` tag plus the broadcast record / node they refer
to. Cancellation is implemented with a lazy tombstone flag, the standard
approach for binary-heap based simulators.

Fast-path design
----------------
The heap stores plain tuples ``(time, priority, seq, kind, node,
broadcast_id, handle)``. Because ``seq`` is unique, tuple comparison
always resolves at C speed on the first three fields without touching
the payload -- this removes the per-comparison Python ``__lt__`` call
that dominated the seed engine's heap cost.

``handle`` is an :class:`Event` object, allocated *only* when the
caller needs to cancel the entry later (:meth:`EventQueue.push`).
:meth:`EventQueue.push_light` skips the allocation entirely -- the
simulator uses it for deliveries and acks whenever no crash plan could
ever cancel them. The simulator's hot loop consumes raw entries via
:meth:`EventQueue.pop_entry`; :meth:`EventQueue.pop` keeps the
object-returning API for callers that want :class:`Event`.

Tombstones are compacted in batch: when more than half of a large heap
is cancelled events, the heap is rebuilt without them in one O(live)
pass instead of paying one ``heappop`` per tombstone.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional, Tuple

#: Event priority classes, ordered: crash < deliver < ack < wakeup.
CRASH_PRIORITY = 0
DELIVER_PRIORITY = 1
ACK_PRIORITY = 2
WAKEUP_PRIORITY = 3

#: Valid ``Event.kind`` values. ``bdeliver`` is a *delivery batch*: one
#: entry for a whole broadcast fan-out whose deliveries share a
#: timestamp; the simulator expands it into per-receiver deliveries at
#: pop time (its ``node`` slot carries the receiver tuple).
EVENT_KINDS = ("crash", "deliver", "bdeliver", "ack", "wakeup")
_EVENT_KIND_SET = frozenset(EVENT_KINDS)

#: Heap entry layout (see module docstring).
ENTRY_TIME, ENTRY_PRIORITY, ENTRY_SEQ = 0, 1, 2
ENTRY_KIND, ENTRY_NODE, ENTRY_BROADCAST_ID, ENTRY_HANDLE = 3, 4, 5, 6

#: Minimum number of tombstones before batch compaction is considered.
_COMPACT_MIN_DEAD = 64


class Event:
    """A cancellable handle to one scheduled occurrence.

    Only ``sort_key`` (the precomputed ``(time, priority, seq)`` tuple)
    participates in ordering; payload fields never enter comparisons.
    """

    __slots__ = ("time", "priority", "seq", "kind", "node",
                 "broadcast_id", "cancelled", "sort_key")

    def __init__(self, time: float, priority: int, seq: int, kind: str,
                 node: Any = None,
                 broadcast_id: Optional[int] = None) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.kind = kind
        self.node = node
        self.broadcast_id = broadcast_id
        self.cancelled = False
        self.sort_key = (time, priority, seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __le__(self, other: "Event") -> bool:
        return self.sort_key <= other.sort_key

    def __gt__(self, other: "Event") -> bool:
        return self.sort_key > other.sort_key

    def __ge__(self, other: "Event") -> bool:
        return self.sort_key >= other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(time={self.time}, priority={self.priority}, "
                f"seq={self.seq}, kind={self.kind!r}, node={self.node!r}, "
                f"broadcast_id={self.broadcast_id}, "
                f"cancelled={self.cancelled})")

    def cancel(self) -> None:
        """Mark the event as a tombstone; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of simulation events.

    The simulator's hot loop (same package) reaches into ``_heap`` /
    ``_next_seq`` / ``_live`` directly to batch pushes and pops without
    per-event call overhead; every invariant (live/dead accounting,
    entry layout, seq monotonicity) is maintained at each step, so the
    public API observes a consistent queue at all times.
    """

    __slots__ = ("_heap", "_next_seq", "_live", "_dead",
                 "_cancelled_total", "_compactions", "_compacted_entries")

    def __init__(self) -> None:
        self._heap: list = []
        self._next_seq = 0
        self._live = 0
        self._dead = 0
        # Lifetime telemetry counters (cold paths only): cancellations
        # ever issued, batch compactions run, and tombstones removed by
        # compaction rather than popped. `_next_seq` doubles as the
        # lifetime push count.
        self._cancelled_total = 0
        self._compactions = 0
        self._compacted_entries = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, priority: int, kind: str,
             node: Any = None, broadcast_id: Optional[int] = None) -> Event:
        """Schedule a new event and return it (for later cancellation)."""
        if kind not in _EVENT_KIND_SET:
            raise ValueError(f"unknown event kind: {kind!r}")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, kind, node, broadcast_id)
        heapq.heappush(self._heap,
                       (time, priority, seq, kind, node, broadcast_id,
                        event))
        self._live += 1
        return event

    def push_light(self, time: float, priority: int, kind: str,
                   node: Any = None,
                   broadcast_id: Optional[int] = None) -> None:
        """Schedule an event with no cancellation handle (no allocation).

        Use only when the caller can prove the event will never be
        cancelled; the entry cannot be reached by :meth:`cancel`.
        """
        if kind not in _EVENT_KIND_SET:
            raise ValueError(f"unknown event kind: {kind!r}")
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self._heap,
                       (time, priority, seq, kind, node, broadcast_id,
                        None))
        self._live += 1

    def pop_entry(self) -> Optional[Tuple]:
        """Remove and return the next live heap entry, or ``None``.

        Entries are ``(time, priority, seq, kind, node, broadcast_id,
        handle)`` tuples; cancelled entries are discarded transparently.
        This is the simulator's hot-loop accessor -- no per-event
        allocation happens here.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            handle = entry[6]
            if handle is not None and handle.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            return entry
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` when empty.

        Cancelled events are discarded transparently. Entries scheduled
        via :meth:`push_light` are materialized on the way out.
        """
        entry = self.pop_entry()
        if entry is None:
            return None
        handle = entry[6]
        if handle is None:
            handle = Event(entry[0], entry[1], entry[2], entry[3],
                           entry[4], entry[5])
        return handle

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent)."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1
            self._dead += 1
            self._cancelled_total += 1
            if (self._dead >= _COMPACT_MIN_DEAD
                    and self._dead * 2 > len(self._heap)):
                self._compact()

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event without popping."""
        self._drain_cancelled()
        if self._heap:
            return self._heap[0][0]
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drain_cancelled(self) -> None:
        """Pop tombstones sitting at the front of the heap."""
        heap = self._heap
        while heap:
            handle = heap[0][6]
            if handle is None or not handle.cancelled:
                break
            heapq.heappop(heap)
            self._dead -= 1

    def _compact(self) -> None:
        """Rebuild the heap without tombstones in one O(live) pass.

        ``heapify`` over the surviving entries preserves pop order
        exactly: entry keys are unique, so heap order is a total order
        independent of the heap's internal layout. The compaction is
        done *in place* (slice assignment) because the simulator's hot
        loop holds a direct reference to the heap list across
        dispatches that may cancel events.
        """
        self._heap[:] = [entry for entry in self._heap
                         if entry[6] is None or not entry[6].cancelled]
        heapq.heapify(self._heap)
        self._compactions += 1
        self._compacted_entries += self._dead
        self._dead = 0
