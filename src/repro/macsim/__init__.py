"""Abstract MAC layer simulation substrate.

This package implements the execution model of *Consensus with an
Abstract MAC Layer* (Newport, PODC 2014), Section 2: acknowledged local
broadcast over a fixed connected graph, all timing controlled by an
(possibly adversarial) message scheduler with an unknown completion
bound ``F_ack``, zero-time local computation, and crash failures that
may interrupt a broadcast midway.

Entry points:

* :class:`~repro.macsim.simulator.Simulator` /
  :func:`~repro.macsim.simulator.build_simulation` -- run algorithms.
* :mod:`repro.macsim.schedulers` -- the scheduler suite, including the
  adversaries used by the paper's lower bounds.
* :mod:`repro.macsim.invariants` -- post-hoc model/consensus checking.
"""

from .crash import CrashPlan, crash_plan
from .errors import (ConfigurationError, MacSimError, ModelViolationError,
                     ProcessError, SimulationLimitError)
from .faults import (DROP, ByzantineFaultModel, ByzantinePlan,
                     ByzantineStrategy, CorruptStrategy, CrashFaultModel,
                     EquivocateStrategy, FaultModel, OmissionFaultModel,
                     OmissionPlan, SilentStrategy)
from .dynamics import (EdgeChurn, NodeChurn, RandomWaypoint,
                       ScriptedDynamics, TopologyDelta, TopologyDynamics,
                       connectivity_report)
from .invariants import (ConsensusReport, InvariantReport, check_consensus,
                         check_model_invariants)
from .process import Process
from .simulator import RunResult, Simulator, build_simulation
from .telemetry import Telemetry
from .columnar import ColumnarSink
from .trace import (DecisionsSink, IndexedMemorySink, SpillBudgetError,
                    SpillSink, Trace, TraceLevel, TraceRecord, TraceSink,
                    make_sink)
from . import dynamics, faults, schedulers

__all__ = [
    "CrashPlan",
    "crash_plan",
    "DROP",
    "FaultModel",
    "CrashFaultModel",
    "OmissionFaultModel",
    "OmissionPlan",
    "ByzantineFaultModel",
    "ByzantinePlan",
    "ByzantineStrategy",
    "SilentStrategy",
    "CorruptStrategy",
    "EquivocateStrategy",
    "faults",
    "MacSimError",
    "ConfigurationError",
    "ModelViolationError",
    "ProcessError",
    "SimulationLimitError",
    "Process",
    "Simulator",
    "RunResult",
    "build_simulation",
    "Telemetry",
    "Trace",
    "TraceLevel",
    "TraceRecord",
    "TraceSink",
    "IndexedMemorySink",
    "DecisionsSink",
    "SpillSink",
    "ColumnarSink",
    "SpillBudgetError",
    "make_sink",
    "InvariantReport",
    "ConsensusReport",
    "check_model_invariants",
    "check_consensus",
    "schedulers",
    "dynamics",
    "TopologyDynamics",
    "TopologyDelta",
    "EdgeChurn",
    "NodeChurn",
    "RandomWaypoint",
    "ScriptedDynamics",
    "connectivity_report",
]
