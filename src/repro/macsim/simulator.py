"""The discrete-event abstract MAC layer engine.

:class:`Simulator` executes a set of :class:`~repro.macsim.process.Process`
instances bound to the nodes of a graph, under a pluggable message
scheduler, with optional crash injection. It enforces the model contract
of Section 2 of the paper:

* **Acknowledged local broadcast.** One in-flight broadcast per node;
  further ``broadcast()`` calls are discarded until the ack. Every
  non-faulty neighbor receives the message before the ack fires.
* **Scheduler-driven non-determinism.** All timing comes from the
  scheduler's :class:`~repro.macsim.schedulers.base.DeliveryPlan`, which
  the engine validates (deliveries before ack, ack within ``F_ack``).
* **Zero-time computation.** Handlers run atomically at event times.
* **Crashes mid-broadcast.** A :class:`~repro.macsim.crash.CrashPlan`
  may cut off part of an in-flight broadcast's audience.
* **Pluggable fault models.** A
  :class:`~repro.macsim.faults.base.FaultModel` adversary (crash,
  omission, Byzantine) is consulted at the broadcast, delivery and
  step boundaries; see :mod:`repro.macsim.faults`. Fault-free and
  crash-only models keep the inlined fast path.
* **Dynamic topologies.** A
  :class:`~repro.macsim.dynamics.base.TopologyDynamics` model (edge
  churn, node churn, mobility, scripted timelines; see
  :mod:`repro.macsim.dynamics`) may rewrite the live graph at epoch
  boundaries. Epochs are applied whenever simulated time is about to
  advance past them -- before any event at or after the epoch runs --
  so a broadcast always uses the topology in force at its start time
  (deliveries already in flight complete on the old topology). Each
  applied epoch recomputes the cached neighbor tuples, invalidates
  pooled scheduler plans via ``Scheduler.on_topology_change`` and
  emits JSON-lossless ``topo`` trace records; nodes rejoining after
  churn are rebuilt fresh from the process factory (state reset).
* **Bounded messages.** In strict mode, each payload's ``id_footprint()``
  must stay below a constant, enforcing the paper's O(1)-ids rule.

The engine also records a :class:`~repro.macsim.trace.Trace` (at a
configurable :class:`~repro.macsim.trace.TraceLevel`) and notifies
observers whenever simulated time advances, which is how the
lower-bound experiments take lock-step state snapshots.

Fast-path design
----------------
The main loop is O(1) per event with no per-event scans:

* **Quiescence** is tracked with an ``_undecided_alive`` counter
  maintained on ``decide``/``crash`` instead of scanning every process
  after every event.
* **Neighbor tuples** are cached per node at construction; the graph is
  immutable for the lifetime of a simulation, so ``mac_broadcast``
  never rebuilds them.
* **Observer hooks** are pre-resolved into lists at registration time;
  when no observer implements a hook, the loop pays a single falsy
  check, not a ``getattr`` scan.
* Trace occurrences are emitted to a pluggable
  :class:`~repro.macsim.trace.TraceSink`; when the sink does not
  materialize MAC-level kinds the engine counts occurrences instead of
  allocating records.
* **Batched delivery scheduling**: deliveries of one broadcast that
  share a timestamp are scheduled as a single ``bdeliver`` heap entry
  carrying the receiver tuple instead of one entry per neighbor --
  O(deg) -> O(#distinct timestamps) heap traffic. Round-structured
  schedulers collapse the whole fan-out into one entry; plans with
  repeated (but not uniform) timestamps -- e.g. quantized random
  delays -- get one entry per timestamp group, receivers in plan
  order. Each entry expands at pop time into a per-receiver cursor
  the main loop consumes before touching the heap again, so every
  delivery still runs through the normal dispatch (fault-model hooks
  included), counts as one processed event, and honours
  ``max_events``/``stop_predicate`` exactly as per-receiver entries
  did. Because a broadcast's per-neighbor entries always occupied a
  contiguous seq block, replacing each same-timestamp group with one
  entry at the group's first seq preserves exact event order. Crash
  plans cancel batched receivers through the broadcast record's
  ``batch_cancelled`` set, filtered at expansion.

For a fixed scheduler, seed and crash plan, the event order -- and
therefore the full-level trace -- is identical to the pre-fast-path
engine (batch expansion preserves the plan-order seq ordering of the
per-neighbor entries it replaces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Optional

from .crash import CrashPlan
from .dynamics.base import edge_key as _edge_key
from .errors import (ConfigurationError, ModelViolationError,
                     SimulationLimitError)
from .events import (ACK_PRIORITY, CRASH_PRIORITY, DELIVER_PRIORITY,
                     WAKEUP_PRIORITY, Event, EventQueue)
from .faults.base import DROP, FaultModel
from .faults.crash import CrashFaultModel
from .process import Process
from .schedulers.base import Scheduler
from .telemetry import Telemetry
from .trace import (TOPO_EDGE_DOWN, TOPO_EDGE_UP, TOPO_NODE_DOWN,
                    TOPO_NODE_UP, Trace, TraceLevel, TraceSink, make_sink)
from ..topology.graphs import Graph

#: Default ceiling on processed events; prevents runaway executions.
DEFAULT_MAX_EVENTS = 2_000_000

#: Default ceiling (in multiples of ``f_ack``) on simulated time.
DEFAULT_MAX_TIME_FACTOR = 10_000.0

#: Strict-mode bound on ids per message (paper: O(1) unique ids).
DEFAULT_ID_BUDGET = 24


@dataclass(slots=True)
class _BroadcastRecord:
    """Book-keeping for one in-flight broadcast.

    The audit sets (``pending``/``delivered``) and the cancellation
    maps are allocated only on the cancellable (crash-plan) path; on
    the crash-free fast path they stay ``None`` so long runs do not
    pay four containers per broadcast.
    """

    bid: int
    sender: Any
    payload: Any
    start_time: float
    pending: Optional[set] = None
    delivered: Optional[set] = None
    delivery_events: Optional[dict] = None
    ack_event: Optional[Event] = None
    # Per-receiver forged payloads / DROPs from the fault model's
    # broadcast-boundary hook; None on the fault-free fast path.
    overrides: Optional[dict] = None
    # Receivers scheduled through batched ``bdeliver`` entries (one
    # per shared timestamp), and the subset a crash plan cancelled
    # before expansion.
    batch_receivers: Optional[tuple] = None
    batch_cancelled: Optional[set] = None
    # Set when the sender's process was reset (node-churn rejoin)
    # while this broadcast was in flight: its ack is suppressed so the
    # fresh process never sees an ack for a broadcast it did not send.
    orphaned: bool = False


@dataclass
class RunResult:
    """Outcome of :meth:`Simulator.run`."""

    trace: TraceSink
    decisions: dict
    decision_times: dict
    end_time: float
    events_processed: int
    stop_reason: str

    @property
    def all_decided(self) -> bool:
        """Whether every non-crashed process decided."""
        return self.stop_reason in ("all_decided", "quiescent_all_decided")

    def decision_values(self) -> set:
        return set(self.decisions.values())


class Simulator:
    """Run processes over a graph under the abstract MAC layer model.

    Parameters
    ----------
    graph:
        A :class:`repro.topology.graphs.Graph` (anything exposing
        ``nodes``, ``neighbors(v)`` and ``has_node(v)`` works).
    processes:
        Mapping from graph node label to the bound :class:`Process`.
    scheduler:
        The message scheduler controlling all timing.
    crashes:
        Optional iterable of :class:`CrashPlan` (legacy API;
        normalized into a
        :class:`~repro.macsim.faults.crash.CrashFaultModel`).
    fault_model:
        A :class:`~repro.macsim.faults.base.FaultModel` adversary
        consulted at the broadcast, delivery and step boundaries.
        Mutually exclusive with ``crashes``.
    validate_plans:
        Whether scheduler plans are validated against the model
        contract. ``None`` (default) validates unless the scheduler
        declares itself ``trusted`` (built-in schedulers whose plans
        are correct by construction).
    strict_sizes:
        When true, payloads exposing ``id_footprint()`` are checked
        against ``id_budget``.
    id_budget:
        Strict-mode bound on ids per message.
    trace_level:
        How much the run's trace materializes, and where; see
        :class:`~repro.macsim.trace.TraceLevel`. Ignored when
        ``trace_sink`` is given.
    trace_sink:
        A pre-built :class:`~repro.macsim.trace.TraceSink` to emit
        occurrences to (e.g. a :class:`~repro.macsim.trace.SpillSink`
        with a chosen directory). Overrides ``trace_level``.
    batch_deliveries:
        Whether same-timestamp broadcast fan-outs are scheduled as
        expanding ``bdeliver`` entries (the default; one entry per
        shared timestamp). Event order and traces are identical either
        way; the flag exists for A/B verification and benchmarking.
    dynamics:
        An optional
        :class:`~repro.macsim.dynamics.base.TopologyDynamics` model
        rewriting the live graph at epoch boundaries (see
        :mod:`repro.macsim.dynamics`).
    process_factory:
        ``factory(label) -> Process`` used to rebuild a node's process
        when a dynamics model resets it (node-churn rejoin). Populated
        automatically by :func:`build_simulation`; required only when
        the dynamics model actually performs resets.
    """

    def __init__(self, graph, processes: Mapping[Any, Process],
                 scheduler: Scheduler, *,
                 crashes: Iterable[CrashPlan] = (),
                 fault_model: Optional[FaultModel] = None,
                 strict_sizes: bool = True,
                 id_budget: int = DEFAULT_ID_BUDGET,
                 unreliable_graph=None,
                 validate_plans: Optional[bool] = None,
                 trace_level: "TraceLevel | str" = TraceLevel.FULL,
                 trace_sink: Optional[TraceSink] = None,
                 batch_deliveries: bool = True,
                 dynamics=None,
                 process_factory: Optional[Callable[[Any], Process]]
                 = None,
                 telemetry: "Telemetry | bool | None" = None) -> None:
        self.graph = graph
        self.scheduler = scheduler
        self.strict_sizes = strict_sizes
        self.id_budget = id_budget
        self.unreliable_graph = unreliable_graph
        self.trace = (trace_sink if trace_sink is not None
                      else make_sink(trace_level))
        self.now = 0.0

        # Opt-in observability (engine counters, F_ack/F_prog spans,
        # phase profiler). Telemetry never emits trace records -- a
        # telemetry-on run's trace is byte-identical to the same run
        # with telemetry off -- and when disabled the hot loop pays a
        # single falsy check per delivery. `_tel_spans` maps in-flight
        # bid -> [start, first_delivery, last_delivery] (-1.0 for "no
        # delivery yet"); spans are evicted at the ack, mirroring the
        # invariant checker's eviction-at-ack replay model.
        if telemetry:
            self.telemetry = (telemetry if isinstance(telemetry, Telemetry)
                              else Telemetry())
            self._tel_spans: Optional[dict] = {}
        else:
            self.telemetry = None
            self._tel_spans = None

        # Normalize the legacy crashes= API into the fault-model
        # subsystem: crash plans become a CrashFaultModel, whose
        # execution is byte-identical (it feeds the same machinery).
        crashes = tuple(crashes)
        if fault_model is not None and crashes:
            raise ConfigurationError(
                "pass crash plans via the fault model, not both "
                "crashes= and fault_model=")
        if fault_model is None:
            fault_model = CrashFaultModel(crashes)
        self.fault_model = fault_model
        self._fault_send = fault_model.send_hook()
        self._fault_deliver = fault_model.deliver_hook()
        # Any boundary interception routes deliveries off the inlined
        # fast path; crash-only and fault-free models keep it.
        self._fault_active = (self._fault_send is not None
                              or self._fault_deliver is not None)

        self._batch_deliveries = bool(batch_deliveries)

        # Plan validation: trusted built-in schedulers produce correct
        # plans by construction and may skip the O(deg) validate.
        if validate_plans is None:
            validate_plans = not getattr(scheduler, "trusted", False)
        self._validate_plans = bool(validate_plans)

        self._processes: dict[Any, Process] = {}
        self._labels: dict[int, Any] = {}
        for label, process in processes.items():
            if not graph.has_node(label):
                raise ConfigurationError(
                    f"process bound to unknown node {label!r}")
            process._bind(self, label)
            self._processes[label] = process
            self._labels[id(process)] = label
        missing = [v for v in graph.nodes if v not in self._processes]
        if missing:
            raise ConfigurationError(
                f"nodes without processes: {missing[:5]!r}...")

        self._queue = EventQueue()
        self._callbacks: list = []
        self._inflight: dict[Any, _BroadcastRecord] = {}
        # Broadcast records, indexed by their sequential bid.
        self._records: list[_BroadcastRecord] = []
        self._next_bid = 0
        self._crashed: set = set()
        self._observers: list = []
        self._time_hooks: list = []
        self._finish_hooks: list = []
        self._started = False
        self._finish_notified = False

        # O(1) quiescence: processes that are neither crashed nor
        # decided. Maintained by note_decision / _dispatch_crash.
        self._undecided_alive = len(self._processes)

        # Per-node neighbor tuples; the graph is immutable per run.
        self._neighbors: dict[Any, tuple] = {
            v: tuple(graph.neighbors(v)) for v in graph.nodes}

        # Whether the sink materializes MAC-level occurrences (vs. the
        # counter-only bump fast path).
        self._trace_mac = self.trace.materializes_mac
        # Direct alias into the sink's occurrence counters for the
        # counts-only fast path (avoids a method call per event).
        # Third-party sinks without the shared dict fall back to the
        # protocol-level bump() at every count site.
        self._kind_counts = getattr(self.trace, "_kind_counts", None)
        # Mid-expansion delivery-batch cursor: [time, bid, receivers,
        # next_index]. Lives on the instance so a run interrupted by
        # max_events/stop_predicate resumes exactly where it stopped.
        self._pending_batch: Optional[list] = None

        self._crash_by_node: dict[Any, CrashPlan] = {}
        for plan in fault_model.crash_plans():
            if not graph.has_node(plan.node):
                raise ConfigurationError(
                    f"crash plan for unknown node {plan.node!r}")
            if plan.node in self._crash_by_node:
                raise ConfigurationError(
                    f"multiple crash plans for node {plan.node!r}")
            self._crash_by_node[plan.node] = plan
            self._queue.push(plan.time, CRASH_PRIORITY, "crash",
                             node=plan.node)

        # Without crash plans nothing can ever cancel a delivery or an
        # ack, so the queue may skip allocating cancellation handles.
        self._cancellable = bool(self._crash_by_node)

        # Step-boundary behaviour (observers, target validation).
        fault_model.attach(self)

        # Topology dynamics: the model is bound against the initial
        # graph; epochs are applied lazily from the main loop whenever
        # time is about to advance past the next boundary. The
        # canonical edge set mirrors self.graph so deltas apply in
        # O(delta) before the O(E) graph rebuild.
        self.dynamics = dynamics
        self._process_factory = process_factory
        self._scheduler_topo_hook = getattr(scheduler,
                                            "on_topology_change", None)
        self._edge_set: Optional[set] = None
        self._next_epoch: Optional[float] = None
        if dynamics is not None:
            dynamics.bind(self)
            self._next_epoch = dynamics.next_epoch_time(0.0)
            if self._next_epoch is not None:
                if self._next_epoch <= 0.0:
                    raise ConfigurationError(
                        "topology epochs must have positive times")
                self._edge_set = set(graph.edges())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def processes(self) -> Mapping[Any, Process]:
        return self._processes

    def process_at(self, label: Any) -> Process:
        return self._processes[label]

    def label_of(self, process: Process) -> Any:
        return self._labels[id(process)]

    def is_crashed(self, label: Any) -> bool:
        return label in self._crashed

    def alive_nodes(self) -> list:
        return [v for v in self.graph.nodes if v not in self._crashed]

    def schedule_callback(self, time: float,
                          callback: Callable[["Simulator"], None]) -> None:
        """Run ``callback(sim)`` as a proper event at ``time``.

        The callback executes with ``sim.now == time``, after any
        deliveries/acks at that timestamp (wakeup priority). Fault
        models use this for step-boundary behaviour that must happen
        at an exact simulated time (e.g. forged Byzantine decisions).
        """
        if time < self.now:
            raise ConfigurationError(
                f"callback scheduled in the past: {time} < {self.now}")
        index = len(self._callbacks)
        self._callbacks.append(callback)
        self._queue.push_light(time, WAKEUP_PRIORITY, "wakeup",
                               node=None, broadcast_id=index)

    def add_observer(self, observer) -> None:
        """Register an observer.

        Observers may implement ``on_time_advance(sim, new_time)``
        (called after all events at the previous timestamp finished)
        and/or ``on_finish(sim)``.
        """
        self._observers.append(observer)
        hook = getattr(observer, "on_time_advance", None)
        if hook is not None:
            self._time_hooks.append(hook)
        hook = getattr(observer, "on_finish", None)
        if hook is not None:
            self._finish_hooks.append(hook)

    # ------------------------------------------------------------------
    # Runtime services used by Process
    # ------------------------------------------------------------------
    def mac_busy(self, process: Process) -> bool:
        label = process._label
        if label is None:
            label = self._labels[id(process)]
        return label in self._inflight

    def mac_broadcast(self, process: Process, payload: Any) -> bool:
        sender = process._label
        if sender is None:
            sender = self._labels[id(process)]
        if sender in self._crashed:
            return False
        if sender in self._inflight:
            if self._trace_mac:
                self.trace.record(self.now, "discard", sender,
                                  payload=payload)
            else:
                self.trace.bump("discard", sender)
            return False
        if self.strict_sizes:
            self._check_size(payload)

        bid = self._next_bid
        self._next_bid += 1
        neighbors = self._neighbors[sender]
        tel = self.telemetry
        if tel is None:
            plan = self.scheduler.plan(sender=sender, message=payload,
                                       start_time=self.now,
                                       neighbors=neighbors)
            if self._validate_plans:
                plan.validate(start_time=self.now, neighbors=neighbors,
                              f_ack=self.scheduler.f_ack)
        else:
            # Phase profiler: per-*broadcast* sampling only, so the
            # perf_counter cost amortizes over the whole fan-out.
            t0 = perf_counter()
            plan = self.scheduler.plan(sender=sender, message=payload,
                                       start_time=self.now,
                                       neighbors=neighbors)
            t1 = perf_counter()
            tel.phase_add("scheduler_plan", t1 - t0)
            if self._validate_plans:
                plan.validate(start_time=self.now, neighbors=neighbors,
                              f_ack=self.scheduler.f_ack)
                tel.phase_add("plan_validate", perf_counter() - t1)

        # Broadcast boundary: the fault model may forge per-receiver
        # payloads or drop deliveries for a faulty sender.
        overrides = None
        fault_send = self._fault_send
        if fault_send is not None:
            if tel is None:
                overrides = fault_send(sender, payload, neighbors,
                                       self.now)
            else:
                t0 = perf_counter()
                overrides = fault_send(sender, payload, neighbors,
                                       self.now)
                tel.phase_add("fault_hooks", perf_counter() - t0)
                if overrides:
                    tel.fault_injections += len(overrides)
            if overrides and self.strict_sizes:
                # Byzantine nodes are still bound by the MAC layer's
                # O(1)-ids rule; forged payloads are checked too.
                for forged in overrides.values():
                    if forged is not DROP and forged is not payload:
                        self._check_size(forged)

        # Delivery-batch detection: deliveries sharing a timestamp are
        # scheduled as one ``bdeliver`` entry carrying the receiver
        # tuple -- O(deg) -> O(#distinct timestamps) heap traffic.
        # Round-structured schedulers hit the all-equal fast path (the
        # whole fan-out is one entry); plans with repeated but
        # non-uniform timestamps are grouped per timestamp, receivers
        # in plan order. Group order and receiver order both preserve
        # the seq order the per-neighbor entries would have had (a
        # broadcast's entries always occupy a contiguous seq block),
        # so event order (and the full trace) is unchanged.
        deliveries = plan.deliveries
        schedule = None
        if self._batch_deliveries and len(deliveries) > 1:
            times = iter(deliveries.values())
            first = next(times)
            for when in times:
                if when != first:
                    break
            else:
                schedule = ((first, tuple(deliveries)),)
            if schedule is None:
                # Non-uniform plan: group receivers per timestamp in
                # one pass; batch only when some timestamp repeats.
                groups: dict = {}
                for receiver, when in deliveries.items():
                    bucket = groups.get(when)
                    if bucket is None:
                        groups[when] = [receiver]
                    else:
                        bucket.append(receiver)
                if len(groups) < len(deliveries):
                    schedule = tuple((when, tuple(group))
                                     for when, group in groups.items())

        if self._cancellable:
            record = _BroadcastRecord(
                bid=bid, sender=sender, payload=payload,
                start_time=self.now,
                pending=set(neighbors),
                delivered=set(),
                delivery_events={},
                overrides=overrides,
            )
            push = self._queue.push
            if schedule is not None:
                # Crash plans cancel batched receivers through
                # record.batch_cancelled (filtered at expansion), so
                # batch entries need no cancellation handle; singleton
                # timestamp groups keep per-receiver handles.
                delivery_events = record.delivery_events
                batched: list = []
                for when, receivers in schedule:
                    if len(receivers) == 1:
                        receiver = receivers[0]
                        delivery_events[receiver] = push(
                            when, DELIVER_PRIORITY, "deliver",
                            receiver, bid)
                    else:
                        batched.extend(receivers)
                        self._queue.push_light(when, DELIVER_PRIORITY,
                                               "bdeliver",
                                               node=receivers,
                                               broadcast_id=bid)
                record.batch_receivers = tuple(batched)
            else:
                delivery_events = record.delivery_events
                for receiver, when in deliveries.items():
                    delivery_events[receiver] = push(
                        when, DELIVER_PRIORITY, "deliver", receiver, bid)
            if self.unreliable_graph is not None:
                self._schedule_unreliable(record, payload, plan.ack_time,
                                          set(neighbors))
            record.ack_event = push(plan.ack_time, ACK_PRIORITY, "ack",
                                    sender, bid)
        else:
            # Crash-free run: plan validation plus the deliver-before-
            # ack event priority already guarantee every neighbor
            # receives before the ack fires, so the pending/delivered
            # audit sets stay None -- nothing can ever remove or miss
            # a delivery.
            record = _BroadcastRecord(
                bid=bid, sender=sender, payload=payload,
                start_time=self.now,
                overrides=overrides,
            )
            # Inline batch of EventQueue.push_light: one seq/live
            # update for the whole fan-out (see EventQueue docstring).
            queue = self._queue
            heap = queue._heap
            seq = queue._next_seq
            if schedule is not None:
                batched = []
                for when, receivers in schedule:
                    if len(receivers) == 1:
                        heappush(heap, (when, DELIVER_PRIORITY, seq,
                                        "deliver", receivers[0], bid,
                                        None))
                    else:
                        batched.extend(receivers)
                        heappush(heap, (when, DELIVER_PRIORITY, seq,
                                        "bdeliver", receivers, bid,
                                        None))
                    seq += 1
                record.batch_receivers = tuple(batched)
                queue._live += len(schedule) + 1
            else:
                for receiver, when in deliveries.items():
                    heappush(heap, (when, DELIVER_PRIORITY, seq,
                                    "deliver", receiver, bid, None))
                    seq += 1
                queue._live += len(deliveries) + 1
            heappush(heap, (plan.ack_time, ACK_PRIORITY, seq, "ack",
                            sender, bid, None))
            queue._next_seq = seq + 1
            if self.unreliable_graph is not None:
                self._schedule_unreliable(record, payload, plan.ack_time,
                                          set(neighbors))
        self._inflight[sender] = record
        process._mac_pending = True
        self._records.append(record)
        if self._trace_mac:
            self.trace.record(self.now, "broadcast", sender,
                              broadcast_id=bid, payload=payload)
        else:
            self.trace.bump("broadcast", sender)
        if self._tel_spans is not None:
            self._tel_spans[bid] = [self.now, -1.0, -1.0]
        return True

    def note_decision(self, process: Process, value: Any) -> None:
        label = process._label
        if label is None:
            label = self._labels[id(process)]
        if label not in self._crashed:
            self._undecided_alive -= 1
        self.trace.record(self.now, "decide", label, payload=value)

    def _schedule_unreliable(self, record: _BroadcastRecord,
                             payload: Any, ack_time: float,
                             reliable: set) -> None:
        """Schedule deliveries over the dual graph's unreliable links.

        Unreliable receivers never gate the ack (they are excluded
        from ``record.pending``); a dropped delivery simply never
        happens -- the defining behaviour of the model variant.
        """
        if (self.unreliable_graph is None
                or not self.unreliable_graph.has_node(record.sender)):
            return
        extra = tuple(v for v in
                      self.unreliable_graph.neighbors(record.sender)
                      if v not in reliable)
        if not extra:
            return
        deliveries = self.scheduler.plan_unreliable(
            sender=record.sender, message=payload,
            start_time=record.start_time, ack_time=ack_time,
            neighbors=extra)
        for receiver, when in deliveries.items():
            if receiver not in extra:
                raise ModelViolationError(
                    f"unreliable delivery to {receiver!r}, not an "
                    f"unreliable neighbor of {record.sender!r}")
            if not record.start_time <= when <= ack_time + 1e-9:
                raise ModelViolationError(
                    f"unreliable delivery at {when} outside broadcast "
                    f"window [{record.start_time}, {ack_time}]")
            if self._cancellable:
                event = self._queue.push(when, DELIVER_PRIORITY,
                                         "deliver", node=receiver,
                                         broadcast_id=record.bid)
                record.delivery_events[receiver] = event
            else:
                self._queue.push_light(when, DELIVER_PRIORITY, "deliver",
                                       node=receiver,
                                       broadcast_id=record.bid)

    # ------------------------------------------------------------------
    # Multiplexing API
    # ------------------------------------------------------------------
    @property
    def all_decided(self) -> bool:
        """Whether every non-crashed process has decided.

        Mirrors the ``stop_when_all_decided`` condition checked at the
        top of :meth:`run`'s loop, so external multiplexers can detect
        completion between time slices without spending a ``run`` call.
        """
        return self._undecided_alive == 0

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None`` when
        the simulation is quiescent.

        Accounts for a half-consumed ``bdeliver`` batch cursor (whose
        remaining deliveries are ordered before anything left on the
        heap), so the value is exact even when a previous ``run`` call
        stopped mid-batch. This is the shared-scheduling hook that lets
        a multi-group runtime interleave several simulators in global
        time order without reaching into their queues.
        """
        batch = self._pending_batch
        if batch is not None:
            return batch[0]
        return self._queue.peek_time()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, *, max_events: int = DEFAULT_MAX_EVENTS,
            max_time: Optional[float] = None,
            stop_when_all_decided: bool = True,
            stop_predicate: Optional[Callable[["Simulator"], bool]] = None,
            raise_on_limit: bool = False) -> RunResult:
        """Execute until quiescence, decision, or a limit.

        ``stop_predicate`` (checked after every event) allows callers to
        stop mid-execution, e.g. once a particular node decides.

        ``run()`` may be invoked repeatedly on the same simulator to
        resume after an event/time limit; ``on_finish`` observers fire
        only once, at the end of the first invocation.
        """
        if max_time is None:
            max_time = DEFAULT_MAX_TIME_FACTOR * self.scheduler.f_ack

        if not self._started:
            self._started = True
            for label in self.graph.nodes:
                process = self._processes[label]
                if label not in self._crashed:
                    process.on_start()

        # Hot loop: everything per-event is O(1); hoist lookups once.
        # The queue pop and the crash-free delivery dispatch are
        # inlined (see EventQueue's docstring): accounting is updated
        # on the queue object at each step, so any observer or stop
        # predicate sees a consistent engine mid-run.
        queue = self._queue
        heap = queue._heap
        heappop_ = heappop
        dispatch_ack = self._dispatch_ack
        dispatch_crash = self._dispatch_crash
        time_hooks = self._time_hooks
        records = self._records
        processes = self._processes
        kind_counts = self._kind_counts
        trace_bump = self.trace.bump
        trace_record = self.trace.record
        trace_mac = self._trace_mac
        fast_deliver = not self._cancellable and not self._fault_active
        dynamics_on = self.dynamics is not None
        tel = self.telemetry
        tel_spans = self._tel_spans
        wall_start = perf_counter() if tel is not None else 0.0

        events_processed = 0
        stop_reason = "quiescent"
        try:
          while True:
            if stop_when_all_decided and self._undecided_alive == 0:
                stop_reason = "all_decided"
                break
            if stop_predicate is not None and stop_predicate(self):
                stop_reason = "predicate"
                break
            # -- delivery-batch cursor -----------------------------------
            # A popped ``bdeliver`` entry expands here, one receiver per
            # loop iteration, before the heap is touched again. Nothing
            # in the heap can be ordered before the remaining receivers
            # (they share the popped entry's key), so consuming the
            # cursor first preserves exact event order while each
            # delivery still counts as one processed event.
            batch = self._pending_batch
            if batch is not None:
                event_time = batch[0]
                if event_time > max_time:
                    stop_reason = "max_time"
                    if raise_on_limit:
                        raise SimulationLimitError(
                            f"exceeded max_time={max_time}")
                    break
                bid = batch[1]
                receivers = batch[2]
                i = batch[3]
                receiver = receivers[i]
                i += 1
                if i == len(receivers):
                    self._pending_batch = None
                else:
                    batch[3] = i
                record = records[bid]
                cancelled = record.batch_cancelled
                if cancelled is not None and receiver in cancelled:
                    continue
                if fast_deliver:
                    if trace_mac:
                        trace_record(event_time, "deliver", receiver,
                                     broadcast_id=bid,
                                     peer=record.sender,
                                     payload=record.payload)
                    elif kind_counts is not None:
                        kind_counts["deliver"] += 1
                    else:
                        trace_bump("deliver", receiver)
                    if tel_spans is not None:
                        span = tel_spans.get(bid)
                        if span is not None:
                            if span[1] < 0.0:
                                span[1] = event_time
                            span[2] = event_time
                    processes[receiver].on_receive(record.payload)
                else:
                    self._dispatch_delivery(receiver, bid)
                events_processed += 1
                if events_processed >= max_events:
                    stop_reason = "max_events"
                    if raise_on_limit:
                        raise SimulationLimitError(
                            f"exceeded max_events={max_events}")
                    break
                continue
            # -- inline EventQueue.pop_entry -----------------------------
            entry = None
            while heap:
                entry = heappop_(heap)
                handle = entry[6]
                if handle is not None and handle.cancelled:
                    queue._dead -= 1
                    entry = None
                    continue
                queue._live -= 1
                break
            if entry is None:
                stop_reason = ("quiescent_all_decided"
                               if self._undecided_alive == 0
                               else "quiescent")
                break
            event_time = entry[0]
            if event_time > max_time:
                stop_reason = "max_time"
                if raise_on_limit:
                    raise SimulationLimitError(
                        f"exceeded max_time={max_time}")
                break
            if event_time + 1e-12 < self.now:
                raise ModelViolationError(
                    f"time went backwards: {event_time} < {self.now}")
            if event_time > self.now:
                # Topology epochs fire at time-advance boundaries:
                # every epoch at or before the next event's timestamp
                # is applied (in order) before that event runs, so
                # broadcasts started at the event see the new graph.
                if dynamics_on:
                    next_epoch = self._next_epoch
                    if next_epoch is not None \
                            and next_epoch <= event_time:
                        self._advance_topology(event_time)
                if event_time > self.now:
                    if time_hooks:
                        for hook in time_hooks:
                            hook(self, event_time)
                    self.now = event_time

            kind = entry[3]
            if kind == "deliver":
                if fast_deliver:
                    # -- inline _dispatch_delivery, crash-free case ------
                    record = records[entry[5]]
                    receiver = entry[4]
                    if trace_mac:
                        trace_record(event_time, "deliver", receiver,
                                     broadcast_id=record.bid,
                                     peer=record.sender,
                                     payload=record.payload)
                    elif kind_counts is not None:
                        kind_counts["deliver"] += 1
                    else:
                        trace_bump("deliver", receiver)
                    if tel_spans is not None:
                        span = tel_spans.get(entry[5])
                        if span is not None:
                            if span[1] < 0.0:
                                span[1] = event_time
                            span[2] = event_time
                    processes[receiver].on_receive(record.payload)
                else:
                    self._dispatch_delivery(entry[4], entry[5])
            elif kind == "bdeliver":
                # Expand the batch into the cursor; the deliveries are
                # processed (and counted) one per iteration above.
                self._pending_batch = [event_time, entry[5], entry[4], 0]
                continue
            elif kind == "ack":
                dispatch_ack(entry[4], entry[5])
            elif kind == "crash":
                dispatch_crash(entry[4])
            elif kind == "wakeup":
                self._callbacks[entry[5]](self)
            else:  # pragma: no cover - defensive
                raise ModelViolationError(f"unknown event kind {kind!r}")
            events_processed += 1
            if events_processed >= max_events:
                stop_reason = "max_events"
                if raise_on_limit:
                    raise SimulationLimitError(
                        f"exceeded max_events={max_events}")
                break
        except BaseException as exc:
            # Engine-raised exceptions (SpillBudgetError mid-flush, a
            # crashing handler, a model violation) flush a *partial*
            # telemetry snapshot before propagating, so aborted runs
            # keep their counters for post-mortems.
            if tel is not None:
                tel.note_events(events_processed)
                tel.wall_seconds += perf_counter() - wall_start
                tel.record_abort(self, exc)
            raise

        if tel is not None:
            tel.note_events(events_processed)
            tel.wall_seconds += perf_counter() - wall_start
            tel.finalize(self)

        if not self._finish_notified:
            self._finish_notified = True
            for hook in self._finish_hooks:
                hook(self)

        return RunResult(
            trace=self.trace,
            decisions=self.trace.decisions(),
            decision_times=self.trace.decision_times(),
            end_time=self.now,
            events_processed=events_processed,
            stop_reason=stop_reason,
        )

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _dispatch_delivery(self, receiver: Any, bid: int) -> None:
        record = self._records[bid]
        if self._cancellable:
            crashed = self._crashed
            if crashed and receiver in crashed:
                record.pending.discard(receiver)
                return
            # (Deliveries from a crashed sender were re-validated at
            # crash time; reaching here means this one was allowed.)
        payload = record.payload
        if self._fault_active:
            # Delivery boundary: apply the sender-side override map,
            # then give the model a chance to drop/substitute on the
            # receiver side (receive omission).
            overrides = record.overrides
            if overrides is not None:
                payload = overrides.get(receiver, payload)
            fault_deliver = self._fault_deliver
            if fault_deliver is not None and payload is not DROP:
                tel = self.telemetry
                if tel is None:
                    payload = fault_deliver(record.sender, receiver,
                                            payload, self.now)
                else:
                    t0 = perf_counter()
                    fault_payload = fault_deliver(record.sender, receiver,
                                                  payload, self.now)
                    tel.phase_add("fault_hooks", perf_counter() - t0)
                    if fault_payload is not payload:
                        tel.fault_injections += 1
                    payload = fault_payload
            if payload is DROP:
                # The drop never gates the sender's ack: the faulty
                # endpoint is exempt from the coverage rule.
                if self._cancellable:
                    record.pending.discard(receiver)
                    record.delivery_events.pop(receiver, None)
                self.trace.record(self.now, "drop", receiver,
                                  broadcast_id=record.bid,
                                  peer=record.sender,
                                  payload=record.payload)
                return
        if self._cancellable:
            record.pending.discard(receiver)
            record.delivered.add(receiver)
            record.delivery_events.pop(receiver, None)
        if self._trace_mac:
            self.trace.record(self.now, "deliver", receiver,
                              broadcast_id=record.bid, peer=record.sender,
                              payload=payload)
        elif self._kind_counts is not None:
            self._kind_counts["deliver"] += 1
        else:
            self.trace.bump("deliver", receiver)
        if self._tel_spans is not None:
            span = self._tel_spans.get(bid)
            if span is not None:
                if span[1] < 0.0:
                    span[1] = self.now
                span[2] = self.now
        self._processes[receiver].on_receive(payload)

    def _dispatch_ack(self, sender: Any, bid: int) -> None:
        record = self._records[bid]
        if record.orphaned:
            # The sender's process was reset (node-churn rejoin) while
            # this broadcast was in flight: no ack is observed.
            return
        crashed = self._crashed
        if crashed and sender in crashed:
            return
        if record.pending:
            outstanding = {v for v in record.pending if v not in crashed}
            if outstanding:
                raise ModelViolationError(
                    f"ack for broadcast {record.bid} of {sender!r} before "
                    f"non-faulty neighbors "
                    f"{sorted(map(str, outstanding))} received")
        # Free the MAC layer before the handler so the process can
        # immediately start its next broadcast from within on_ack().
        if self._inflight.get(sender) is record:
            del self._inflight[sender]
            self._processes[sender]._mac_pending = False
        if self._trace_mac:
            self.trace.record(self.now, "ack", sender,
                              broadcast_id=record.bid)
        elif self._kind_counts is not None:
            self._kind_counts["ack"] += 1
        else:
            self.trace.bump("ack", sender)
        if self._tel_spans is not None:
            # Eviction-at-ack: the span closes here and later deliveries
            # (possible on unreliable-overlay runs) belong to no span --
            # mirroring the invariant checker's replay model so derived
            # and live histograms agree.
            span = self._tel_spans.pop(bid, None)
            if span is not None:
                self.telemetry.close_span(span[0], span[1], span[2],
                                          self.now)
        self._processes[sender].on_ack()
        # With validated plans the ack is a broadcast's final event
        # (deliveries are bounded by the ack time; cancelled ones are
        # tombstoned before the record is touched), so its book-keeping
        # can be freed -- long runs keep O(n) broadcast records in RAM,
        # not O(events). Unvalidated (trusted-scheduler) runs keep the
        # records: a plan could, in principle, deliver after its ack.
        # Dual-graph runs keep them too: _schedule_unreliable's window
        # tolerates deliveries up to ack_time + 1e-9, which sort after
        # the ack.
        if self._validate_plans and self.unreliable_graph is None:
            self._records[bid] = None

    def _dispatch_crash(self, node: Any) -> None:
        if node in self._crashed:
            return
        plan = self._crash_by_node[node]
        self._crashed.add(node)
        if not self._processes[node].decided:
            self._undecided_alive -= 1
        self.trace.record(self.now, "crash", node)
        self._processes[node].crashed = True

        record = self._inflight.pop(node, None)
        if record is not None:
            self._processes[node]._mac_pending = False
            if record.ack_event is not None:
                self._queue.cancel(record.ack_event)
            for receiver, delivery in list(record.delivery_events.items()):
                if not plan.allows_delivery(receiver):
                    self._queue.cancel(delivery)
                    record.delivery_events.pop(receiver, None)
                    record.pending.discard(receiver)
            if record.batch_receivers is not None:
                # Batched deliveries have no per-receiver events to
                # cancel; the expansion cursor filters this set.
                cancelled = record.batch_cancelled
                for receiver in record.batch_receivers:
                    if not plan.allows_delivery(receiver):
                        if cancelled is None:
                            cancelled = record.batch_cancelled = set()
                        cancelled.add(receiver)
                        record.pending.discard(receiver)

    # ------------------------------------------------------------------
    # Topology dynamics
    # ------------------------------------------------------------------
    def _advance_topology(self, up_to: float) -> None:
        """Apply every topology epoch at or before ``up_to``.

        Simulated time advances *to each epoch* (firing time-advance
        observers) before its delta is applied, so processes reset by
        the epoch start -- and broadcast -- at the epoch's own
        timestamp.
        """
        dynamics = self.dynamics
        time_hooks = self._time_hooks
        tel = self.telemetry
        while True:
            when = self._next_epoch
            if when is None or when > up_to:
                return
            if when > self.now:
                if time_hooks:
                    for hook in time_hooks:
                        hook(self, when)
                self.now = when
            if tel is None:
                delta = dynamics.advance(when, self.graph)
                if delta:
                    self._apply_topology_delta(when, delta)
            else:
                t0 = perf_counter()
                delta = dynamics.advance(when, self.graph)
                if delta:
                    self._apply_topology_delta(when, delta)
                tel.topo_epochs += 1
                tel.phase_add("dynamics_epochs", perf_counter() - t0)
            following = dynamics.next_epoch_time(when)
            if following is not None and following <= when:
                raise ConfigurationError(
                    f"{type(dynamics).__name__} produced a "
                    f"non-advancing epoch time {following} after "
                    f"{when}")
            self._next_epoch = following

    def _apply_topology_delta(self, when: float, delta) -> None:
        """Rewrite the live graph and every topology-derived cache."""
        edges = self._edge_set
        graph = self.graph
        record = self.trace.record
        for node in delta.departed:
            if not graph.has_node(node):
                raise ConfigurationError(
                    f"dynamics departed unknown node {node!r}")
            record(when, "topo", node, broadcast_id=TOPO_NODE_DOWN)
        removed = []
        for u, v in delta.removed:
            key = _edge_key(u, v)
            if key in edges:
                edges.discard(key)
                removed.append(key)
        # Departure isolates the node (the documented contract): any
        # incident edge the model did not already list is removed too,
        # so custom models may return bare ``departed`` tuples.
        for node in delta.departed:
            for peer in graph.neighbors(node):
                key = _edge_key(node, peer)
                if key in edges:
                    edges.discard(key)
                    removed.append(key)
        added = []
        for u, v in delta.added:
            if u == v or not graph.has_node(u) or not graph.has_node(v):
                raise ConfigurationError(
                    f"dynamics added invalid edge {(u, v)!r}")
            key = _edge_key(u, v)
            if key not in edges:
                edges.add(key)
                added.append(key)
        for u, v in removed:
            record(when, "topo", u, broadcast_id=TOPO_EDGE_DOWN, peer=v)
        for u, v in added:
            record(when, "topo", u, broadcast_id=TOPO_EDGE_UP, peer=v)
        if removed or added:
            # The node set never changes: departed nodes are isolated,
            # not deleted, so every label keeps its process.
            new_graph = Graph(edges, nodes=graph.nodes)
            self.graph = new_graph
            self._neighbors = {v: tuple(new_graph.neighbors(v))
                               for v in new_graph.nodes}
            hook = self._scheduler_topo_hook
            if hook is not None:
                hook()
        for node in delta.arrived:
            if not graph.has_node(node):
                raise ConfigurationError(
                    f"dynamics rejoined unknown node {node!r}")
            record(when, "topo", node, broadcast_id=TOPO_NODE_UP)
            self._reset_process(node)

    def _reset_process(self, label: Any) -> None:
        """Rebuild ``label``'s process fresh (node-churn rejoin).

        The node's volatile protocol state is lost: a new process is
        created from the factory, bound and started. An in-flight
        broadcast of the old process is orphaned (its scheduled
        deliveries still complete -- they were covered by the topology
        as of the broadcast -- but no ack is observed).
        """
        if label in self._crashed:
            return
        factory = self._process_factory
        if factory is None:
            raise ConfigurationError(
                "dynamics reset a process but no process factory is "
                "available; construct the simulator via "
                "build_simulation (or pass process_factory=)")
        old = self._processes[label]
        record = self._inflight.pop(label, None)
        if record is not None:
            record.orphaned = True
        fresh = factory(label)
        fresh._bind(self, label)
        self._processes[label] = fresh
        del self._labels[id(old)]
        self._labels[id(fresh)] = label
        if old.decided:
            # The node is undecided again; note_decision will balance
            # this when (if) the fresh process decides.
            self._undecided_alive += 1
        if self._started:
            fresh.on_start()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_size(self, payload: Any) -> None:
        footprint = getattr(payload, "id_footprint", None)
        if footprint is None:
            return
        count = footprint()
        if count > self.id_budget:
            raise ModelViolationError(
                f"message carries {count} ids, exceeding the O(1) budget "
                f"of {self.id_budget}: {payload!r}")


def build_simulation(graph, process_factory: Callable[[Any], Process],
                     scheduler: Scheduler, *,
                     crashes: Iterable[CrashPlan] = (),
                     fault_model: Optional[FaultModel] = None,
                     strict_sizes: bool = True,
                     id_budget: int = DEFAULT_ID_BUDGET,
                     unreliable_graph=None,
                     validate_plans: Optional[bool] = None,
                     trace_level: "TraceLevel | str" = TraceLevel.FULL,
                     trace_sink: Optional[TraceSink] = None,
                     batch_deliveries: bool = True,
                     dynamics=None,
                     telemetry: "Telemetry | bool | None" = None,
                     ) -> Simulator:
    """Construct a simulator, creating one process per graph node.

    ``process_factory(label)`` must return the process for ``label``.
    This is the convenience entry point used throughout the tests,
    examples and experiments. The factory is retained by the simulator
    so topology-dynamics models can rebuild a process on node rejoin.
    """
    processes = {label: process_factory(label) for label in graph.nodes}
    return Simulator(graph, processes, scheduler, crashes=crashes,
                     fault_model=fault_model,
                     strict_sizes=strict_sizes, id_budget=id_budget,
                     unreliable_graph=unreliable_graph,
                     validate_plans=validate_plans,
                     trace_level=trace_level,
                     trace_sink=trace_sink,
                     batch_deliveries=batch_deliveries,
                     dynamics=dynamics,
                     process_factory=process_factory,
                     telemetry=telemetry)
