"""Group placement and churn-driven rebalancing.

Groups are pinned to hosts (engine shards, in this repo's deployment)
with **rendezvous hashing** (highest random weight): each
``(group, host)`` pair gets a deterministic sha256 score and the group
lives on its highest-scoring live host. Rendezvous gives the two
properties a consensus service needs from placement for free:

* **Determinism** -- the assignment is a pure function of the group
  and host ids, identical on every machine and every run.
* **Minimal movement** -- when a host departs, exactly the groups it
  held move (each to its next-best survivor); when a host arrives,
  the only groups that move are those whose top score the newcomer
  now holds. Nothing else is shuffled.

:class:`GroupPlacement` tracks the live host set and exposes
``rebalance`` for deltas; :func:`placement_under_churn` drives it from
the existing :class:`~repro.macsim.dynamics.NodeChurn` model over a
host graph, so service placement composes with the same churn
machinery the engine's dynamic topologies use.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["GroupPlacement", "PlacementMove", "placement_under_churn",
           "rendezvous_host", "rendezvous_place"]


def _score(group: Any, host: Any) -> int:
    digest = hashlib.sha256(
        f"{group!r}|{host!r}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_host(group: Any, hosts: Sequence[Any]) -> Any:
    """The group's highest-random-weight host among ``hosts``."""
    if not hosts:
        raise ValueError("no hosts to place on")
    return max(hosts, key=lambda host: (_score(group, host), repr(host)))


def rendezvous_place(groups: Iterable[Any],
                     hosts: Sequence[Any]) -> Dict[Any, Any]:
    """Deterministic group -> host assignment over the host set."""
    hosts = list(hosts)
    return {group: rendezvous_host(group, hosts) for group in groups}


@dataclass(frozen=True)
class PlacementMove:
    """One group migration caused by a rebalance."""

    group: Any
    #: ``None`` when the group was previously unplaced (new group) or
    #: its host departed taking the assignment with it.
    source: Optional[Any]
    target: Any


@dataclass
class GroupPlacement:
    """Live assignment of groups to hosts with delta rebalancing."""

    hosts: List[Any]
    groups: List[Any] = field(default_factory=list)
    assignment: Dict[Any, Any] = field(default_factory=dict)
    moves_applied: int = 0

    def __post_init__(self) -> None:
        self.hosts = list(self.hosts)
        if not self.hosts:
            raise ValueError("placement needs at least one host")
        self.groups = list(self.groups)
        if self.groups and not self.assignment:
            self.assignment = rendezvous_place(self.groups, self.hosts)

    # ------------------------------------------------------------------
    def place(self, groups: Iterable[Any]) -> List[PlacementMove]:
        """Add (and place) new groups; returns their placement moves."""
        moves = []
        for group in groups:
            if group in self.assignment:
                continue
            self.groups.append(group)
            target = rendezvous_host(group, self.hosts)
            self.assignment[group] = target
            moves.append(PlacementMove(group, None, target))
        return moves

    def hosted_by(self, host: Any) -> List[Any]:
        return [g for g in self.groups if self.assignment.get(g) == host]

    def load(self) -> Dict[Any, int]:
        """Groups per live host (hosts with zero groups included)."""
        counts = {host: 0 for host in self.hosts}
        for host in self.assignment.values():
            counts[host] += 1
        return counts

    # ------------------------------------------------------------------
    def rebalance(self, *, departed: Iterable[Any] = (),
                  arrived: Iterable[Any] = ()) -> List[PlacementMove]:
        """Apply a host-set delta and migrate the minimal group set.

        Departed hosts evict their groups to each group's best
        surviving host; an arriving host pulls exactly the groups
        whose rendezvous winner it now is. Returns the migrations in
        deterministic (group registration) order.
        """
        departed = [h for h in departed if h in self.hosts]
        arrived = [h for h in arrived if h not in self.hosts]
        if not departed and not arrived:
            return []
        survivors = [h for h in self.hosts if h not in set(departed)]
        new_hosts = survivors + list(arrived)
        if not new_hosts:
            raise ValueError("rebalance would leave zero hosts")
        gone = set(departed)
        moves: List[PlacementMove] = []
        for group in self.groups:
            old = self.assignment.get(group)
            new = rendezvous_host(group, new_hosts)
            if old == new:
                continue
            # Either the old host departed, or the arriving host won
            # the group's rendezvous; survivors never trade groups
            # among themselves.
            source = None if old in gone else old
            moves.append(PlacementMove(group, source, new))
            self.assignment[group] = new
        self.hosts = new_hosts
        self.moves_applied += len(moves)
        return moves


def placement_under_churn(placement: GroupPlacement, churn: Any,
                          host_graph: Any, *, epochs: int,
                          ) -> List[Tuple[float, List[PlacementMove]]]:
    """Drive a placement from :class:`NodeChurn` epochs on a host
    graph.

    ``churn`` is bound to the host graph (a shim exposing ``.graph``
    is enough for :meth:`NodeChurn.bind`) and advanced epoch by
    epoch; each delta's ``departed``/``arrived`` hosts feed
    :meth:`GroupPlacement.rebalance`. Returns the per-epoch timeline
    of migrations -- epochs with no topology change contribute empty
    move lists, so the timeline length always equals ``epochs``.
    """

    class _Shim:
        def __init__(self, graph: Any) -> None:
            self.graph = graph

    churn.bind(_Shim(host_graph))
    timeline: List[Tuple[float, List[PlacementMove]]] = []
    t = 0.0
    for _ in range(epochs):
        t = churn.next_epoch_time(t)
        delta = churn.advance(t, host_graph)
        moves: List[PlacementMove] = []
        if delta is not None and (delta.departed or delta.arrived):
            moves = placement.rebalance(departed=delta.departed,
                                        arrived=delta.arrived)
        timeline.append((t, moves))
    return timeline
