"""Closed-loop client workload with heavy-tailed structure.

Models a large population of clients (the generator is O(1) memory per
*request in flight*, so millions of clients are just an integer range):
each client repeatedly submits a proposal to one consensus group, waits
for the commit, thinks for a while, and submits again. Two heavy tails
shape the load, matching what replicated-log deployments see:

* **Zipf group popularity** -- a client picks its group once, for its
  whole session, from a Zipf(s) distribution over group ranks, so a
  few hot groups absorb most of the traffic.
* **Lognormal think time** -- the pause between a commit and the
  client's next request is lognormal, so a minority of slow clients
  stretches the arrival tail.

Determinism and shard independence
----------------------------------

Every draw is produced by a dedicated ``random.Random`` seeded from
``(seed, client, draw-index)`` -- no shared RNG stream exists. A
client's behaviour is therefore a pure function of the workload seed
and its id, which is what makes sharding exact: a shard serving a
subset of groups replays precisely the clients whose (deterministic)
group choice lands in that subset, and the union over shards is
byte-identical to an unsharded run.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Optional, Sequence

__all__ = ["WorkloadGenerator"]

_GROUP_SALT = 0x9E3779B97F4A7C15
_CLIENT_SALT = 0xC2B2AE3D27D4EB4F
_DRAW_SALT = 0x165667B19E3779F9
_MASK = (1 << 63) - 1


def _draw_seed(seed: int, client: int, draw: int) -> int:
    return ((seed + 1) * _GROUP_SALT
            ^ (client + 1) * _CLIENT_SALT
            ^ (draw + 1) * _DRAW_SALT) & _MASK


class WorkloadGenerator:
    """Deterministic closed-loop arrival process.

    Parameters
    ----------
    groups:
        Number of consensus groups (Zipf ranks ``1..groups``).
    clients:
        Client population size.
    seed:
        Workload seed; every client stream derives from it.
    zipf_s:
        Zipf skew exponent for group popularity (1.0 = classic Zipf;
        higher = hotter head).
    think_mu, think_sigma:
        Parameters of the lognormal think-time distribution, in
        virtual time units (the same units as the engine's ``F_ack``).
        The median think time is ``exp(think_mu)``.
    requests_per_client:
        Session length: each client submits exactly this many
        proposals, then leaves. Keeping the budget *per client* (not
        global) is what keeps sharded runs exactly equal to unsharded
        runs -- admission never depends on other groups' timing.
    """

    def __init__(self, *, groups: int, clients: int, seed: int = 0,
                 zipf_s: float = 1.1, think_mu: float = 3.0,
                 think_sigma: float = 1.0,
                 requests_per_client: int = 2) -> None:
        if groups < 1:
            raise ValueError("groups must be >= 1")
        if clients < 0:
            raise ValueError("clients must be >= 0")
        if requests_per_client < 1:
            raise ValueError("requests_per_client must be >= 1")
        self.groups = groups
        self.clients = clients
        self.seed = seed
        self.zipf_s = zipf_s
        self.think_mu = think_mu
        self.think_sigma = think_sigma
        self.requests_per_client = requests_per_client
        # Zipf CDF over ranks 1..groups, normalized.
        weights = [1.0 / (rank ** zipf_s) for rank in range(1, groups + 1)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            cdf.append(acc / total)
        cdf[-1] = 1.0
        self._cdf = cdf

    # ------------------------------------------------------------------
    # Per-client streams
    # ------------------------------------------------------------------
    def client_group(self, client: int) -> int:
        """The group this client is pinned to for its whole session."""
        u = random.Random(_draw_seed(self.seed, client, 0)).random()
        return bisect_left(self._cdf, u)

    def think_time(self, client: int, request: int) -> float:
        """Think time preceding the client's ``request``-th proposal
        (``request`` counts from 0; draw 0 is the session's initial
        stagger, so arrivals don't all land at time zero)."""
        rng = random.Random(_draw_seed(self.seed, client, request + 1))
        return rng.lognormvariate(self.think_mu, self.think_sigma)

    def clients_for_groups(
            self, groups: Sequence[int]) -> List[int]:
        """Client ids whose pinned group is in ``groups`` -- the exact
        client subset a shard serving those groups must replay."""
        wanted = set(groups)
        return [c for c in range(self.clients)
                if self.client_group(c) in wanted]

    def expected_share(self, group: int) -> float:
        """The Zipf probability mass of ``group`` -- the expected
        fraction of clients (hence closed-loop traffic) pinned to it.
        The observability surfaces show it next to the *observed*
        share so placement skew reads directly off `repro top`."""
        if not 0 <= group < self.groups:
            return 0.0
        lo = self._cdf[group - 1] if group > 0 else 0.0
        return self._cdf[group] - lo

    def total_requests(self,
                       groups: Optional[Sequence[int]] = None) -> int:
        """Requests the workload will submit (optionally restricted to
        clients pinned to ``groups``)."""
        if groups is None:
            return self.clients * self.requests_per_client
        return len(self.clients_for_groups(groups)) \
            * self.requests_per_client

    def describe(self) -> str:
        return (f"clients={self.clients} groups={self.groups} "
                f"zipf_s={self.zipf_s} "
                f"think~lognormal(mu={self.think_mu}, "
                f"sigma={self.think_sigma}) "
                f"requests/client={self.requests_per_client}")
