"""The consensus service: a closed-loop virtual-time serve driver.

Ties the pieces together: a :class:`WorkloadGenerator` produces client
arrivals, the :class:`ServiceFrontend` batches proposals into per-group
consensus *slots*, and a :class:`GroupRuntime` multiplexes the slots'
engines over one loop. Each slot is a fresh consensus instance whose
scenario derives deterministically from the base scenario and the
``(group, slot)`` coordinate (see :func:`slot_scenario`), so any slot
-- and therefore the whole service run -- is reproducible from the
seeds alone.

A request's end-to-end latency is ``commit - arrival`` in virtual time
(the engine's ``F_ack`` units): queueing delay behind the group's
current slot plus the consensus decision time of the slot that carries
it. Throughput is committed requests per virtual time unit.

Determinism: byte-identity anchor
---------------------------------

``slot_scenario(base, group, 0)`` for the first group **is** ``base``
(group 0, slot 0 derives the identity seed), so a 1-group service run
with ``capture_first_slot=True`` holds a trace byte-identical to
``base.simulate()`` -- the acceptance pin the tests and the
``repro serve --trace-out`` path enforce.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

from .frontend import Request, ServiceFrontend
from .runtime import GroupRun, GroupRuntime
from .tracing import MetricsRegistry, RequestTracer, latency_summary
from .workload import WorkloadGenerator

__all__ = ["ConsensusService", "GroupStats", "ServiceReport",
           "latency_summary", "slot_scenario", "slot_seed"]

_SLOT_GROUP_SALT = 2654435761
_SLOT_INDEX_SALT = 2246822519
_SEED_MASK = (1 << 31) - 1


def slot_seed(seed: int, group: int, slot: int) -> int:
    """Derive the consensus seed for ``(group, slot)``.

    ``slot_seed(seed, 0, 0) == seed``: the first slot of group 0 runs
    the base scenario unchanged, which anchors the service's
    byte-identity contract against ``Scenario.simulate()``.
    """
    return seed ^ ((group * _SLOT_GROUP_SALT
                    + slot * _SLOT_INDEX_SALT) & _SEED_MASK)


def slot_scenario(base: Any, group: int, slot: int) -> Any:
    """The scenario a given slot executes: ``base`` reseeded for the
    ``(group, slot)`` coordinate (identity for group 0, slot 0)."""
    seed = slot_seed(base.seed, group, slot)
    if seed == base.seed:
        return base
    return base.override({"seed": seed})


@dataclass
class GroupStats:
    """Per-group accounting (the attribution side of the contract)."""

    requests: int = 0
    failed: int = 0
    slots: int = 0
    events: int = 0
    last_commit: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"requests": self.requests, "failed": self.failed,
                "slots": self.slots, "events": self.events,
                "last_commit": self.last_commit}


@dataclass
class ServiceReport:
    """Outcome of one service run (shard-mergeable)."""

    groups: int
    clients: int
    requests: int
    failed: int
    slots: int
    events: int
    virtual_time: float
    wall_seconds: float
    latencies: List[float] = field(default_factory=list)
    per_group: Dict[int, GroupStats] = field(default_factory=dict)
    telemetry: Optional[Dict[str, Any]] = None
    shards: Optional[List[Dict[str, Any]]] = None
    #: ``service-spans/v1`` snapshot when request tracing was on.
    tracing: Optional[Dict[str, Any]] = None
    #: ``service-metrics/v1`` snapshot when the metrics registry was on.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def latency(self) -> Dict[str, Any]:
        return latency_summary(self.latencies)

    @property
    def throughput(self) -> float:
        """Committed requests per virtual time unit."""
        if self.virtual_time <= 0.0:
            return 0.0
        return self.requests / self.virtual_time

    @property
    def wall_throughput(self) -> float:
        """Committed requests per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.requests / self.wall_seconds

    def to_dict(self, *, include_latencies: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "groups": self.groups,
            "clients": self.clients,
            "requests": self.requests,
            "failed": self.failed,
            "slots": self.slots,
            "events": self.events,
            "virtual_time": self.virtual_time,
            "wall_seconds": self.wall_seconds,
            "latency": self.latency,
            "throughput": self.throughput,
            "wall_throughput": self.wall_throughput,
            "per_group": {str(gid): stats.to_dict()
                          for gid, stats in sorted(self.per_group.items())},
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        if self.shards is not None:
            out["shards"] = self.shards
        if self.tracing is not None:
            out["tracing"] = self.tracing
        if self.metrics is not None:
            out["metrics"] = self.metrics
        if include_latencies:
            out["latencies"] = list(self.latencies)
        return out


class ConsensusService:
    """Serve a closed-loop workload over multiplexed consensus groups.

    Parameters
    ----------
    base:
        The :class:`~repro.scenario.Scenario` every slot derives from
        (its seed is re-derived per slot; everything else -- algorithm,
        topology, scheduler, faults -- is shared service configuration).
    workload:
        The arrival process. Only clients pinned (by the workload's own
        deterministic choice) to a group in ``group_ids`` are replayed,
        which is how a shard serves its subset exactly.
    group_ids:
        Groups this instance serves; defaults to all of
        ``workload.groups``. A shard passes its placement slice.
    batch_size:
        Frontend batch window per slot.
    slot_trace_level:
        Trace level for slot scenarios (default ``"decisions"`` keeps
        long serve runs lean); ``None`` keeps the base scenario's
        level. The captured first slot always keeps the base level so
        byte-identity compares full traces.
    telemetry:
        When true, every slot runs with its own
        :class:`~repro.macsim.telemetry.Telemetry` and the per-group
        accumulated counters land in ``report.telemetry``.
    capture_first_slot:
        Keep the first served group's slot-0 trace (and its scenario)
        on ``self.first_slot_trace`` / ``self.first_slot_scenario``
        for export/byte-identity checks.
    horizon:
        Optional virtual-time admission deadline: arrivals past it are
        dropped (in-flight and queued work still drains).
    tracer:
        Optional :class:`~repro.macsim.service.tracing.RequestTracer`;
        when set, every committed slot records one span per request
        and the runtime runs with its scheduler profile on, both
        landing in ``report.tracing``.
    metrics:
        Optional
        :class:`~repro.macsim.service.tracing.MetricsRegistry`; when
        set, arrivals and commits feed its windowed time series and
        the snapshot lands in ``report.metrics``.
    """

    def __init__(self, base: Any, workload: WorkloadGenerator, *,
                 group_ids: Optional[Sequence[int]] = None,
                 batch_size: int = 8,
                 slot_trace_level: Optional[str] = "decisions",
                 telemetry: bool = False,
                 capture_first_slot: bool = False,
                 horizon: Optional[float] = None,
                 tracer: Optional[RequestTracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.base = base
        self.workload = workload
        self.tracer = tracer
        self.metrics = metrics
        if group_ids is None:
            group_ids = range(workload.groups)
        self.group_ids = sorted(group_ids)
        if not self.group_ids:
            raise ValueError("service needs at least one group")
        self.batch_size = batch_size
        self.slot_trace_level = slot_trace_level
        self.telemetry_enabled = telemetry
        self.capture_first_slot = capture_first_slot
        self.horizon = horizon
        self.first_slot_trace: Any = None
        self.first_slot_scenario: Any = None

    # ------------------------------------------------------------------
    def run(self) -> ServiceReport:
        wall_start = perf_counter()
        wl = self.workload
        tracer = self.tracer
        metrics = self.metrics
        frontend = ServiceFrontend(batch_size=self.batch_size)
        runtime = GroupRuntime(profile=tracer is not None)
        served = self.group_ids
        stats: Dict[int, GroupStats] = {g: GroupStats() for g in served}
        slot_counts: Dict[int, int] = {g: 0 for g in served}
        busy: Dict[int, bool] = {g: False for g in served}
        latencies: List[float] = []
        tel_groups: Dict[int, Dict[str, Any]] = {}
        committed = 0
        failed = 0
        total_slots = 0
        total_events = 0
        virtual_end = 0.0
        capture_group = served[0] if self.capture_first_slot else None

        # (wake_time, client, request_index) -- the closed loop's heap.
        heap: List[Any] = []
        for client in wl.clients_for_groups(served):
            wake = wl.think_time(client, 0)
            if self.horizon is not None and wake > self.horizon:
                continue
            heapq.heappush(heap, (wake, client, 0))

        def start_slot(gid: int, now: float) -> None:
            batch = frontend.next_batch(gid)
            if not batch:
                return
            slot = slot_counts[gid]
            slot_counts[gid] = slot + 1
            scenario = slot_scenario(self.base, gid, slot)
            capture = (gid == capture_group and slot == 0)
            if (self.slot_trace_level is not None and not capture
                    and scenario.trace_level != self.slot_trace_level):
                scenario = scenario.override(
                    {"trace_level": self.slot_trace_level})
            if capture:
                self.first_slot_scenario = scenario
            tel = True if self.telemetry_enabled else None
            runtime.add_group(scenario, group_id=gid, start_time=now,
                              telemetry=tel,
                              context=(batch, slot, capture))
            busy[gid] = True

        def commit(run: GroupRun) -> None:
            nonlocal committed, failed, total_slots, total_events
            nonlocal virtual_end
            gid = run.group_id
            batch, _slot, capture = run.context
            busy[gid] = False
            t_commit = run.finish_time
            ok = bool(run.result.decisions)
            gstats = stats[gid]
            gstats.slots += 1
            gstats.events += run.result.events_processed
            gstats.last_commit = max(gstats.last_commit, t_commit)
            total_slots += 1
            total_events += run.result.events_processed
            virtual_end = max(virtual_end, t_commit)
            if capture:
                self.first_slot_trace = run.result.trace
            if run.telemetry is not None:
                self._accumulate_telemetry(tel_groups, gid, run)
            if tracer is not None:
                times = run.result.decision_times
                t_decide = (run.start_time + max(times.values())
                            if times else t_commit)
                tracer.record_slot(group=gid, slot=_slot, batch=batch,
                                   start=run.start_time,
                                   decide=t_decide, reply=t_commit,
                                   ok=ok)
            for req in batch:
                if ok:
                    committed += 1
                    gstats.requests += 1
                    latencies.append(t_commit - req.arrival)
                    if metrics is not None:
                        metrics.record_commit(t_commit, gid,
                                              t_commit - req.arrival)
                else:
                    failed += 1
                    gstats.failed += 1
                    if metrics is not None:
                        metrics.record_failure(t_commit, gid)
                nxt = req.index + 1
                if nxt < wl.requests_per_client:
                    wake = t_commit + wl.think_time(req.client, nxt)
                    if self.horizon is not None and wake > self.horizon:
                        continue
                    heapq.heappush(heap, (wake, req.client, nxt))
            if frontend.pending(gid):
                start_slot(gid, t_commit)

        while heap or runtime.active_groups:
            t_wake = heap[0][0] if heap else None
            t_slot = runtime.next_time()
            if t_slot is not None and (t_wake is None or t_slot <= t_wake):
                for run in runtime.advance(until=t_wake):
                    commit(run)
                continue
            wake, client, index = heapq.heappop(heap)
            gid = wl.client_group(client)
            frontend.submit(Request(client=client, index=index,
                                    group=gid, arrival=wake))
            virtual_end = max(virtual_end, wake)
            if metrics is not None:
                metrics.record_arrival(wake, gid)
            if not busy[gid]:
                start_slot(gid, wake)

        telemetry = None
        if self.telemetry_enabled:
            telemetry = self._telemetry_snapshot(tel_groups)
        tracing = None
        if tracer is not None:
            tracing = tracer.snapshot(
                scheduler=runtime.scheduler_profile())
        metrics_doc = None
        if metrics is not None:
            metrics.set_queue_peaks(frontend.queue_peaks())
            metrics.add_counter("frontend_submitted", frontend.submitted)
            metrics.add_counter("slots_committed", total_slots)
            metrics.add_counter("engine_events", total_events)
            if telemetry is not None:
                heap_keys = ("events_pushed", "events_popped",
                             "events_cancelled", "heap_compactions",
                             "heap_compacted_entries")
                counters = telemetry["totals"]["counters"]
                for key in heap_keys:
                    if key in counters:
                        metrics.add_counter(f"engine_{key}",
                                            counters[key])
            metrics_doc = metrics.snapshot()
            metrics.flush()
        return ServiceReport(
            groups=len(served),
            clients=wl.clients,
            requests=committed,
            failed=failed,
            slots=total_slots,
            events=total_events,
            virtual_time=virtual_end,
            wall_seconds=perf_counter() - wall_start,
            latencies=latencies,
            per_group=stats,
            telemetry=telemetry,
            tracing=tracing,
            metrics=metrics_doc,
        )

    # ------------------------------------------------------------------
    # Telemetry attribution
    # ------------------------------------------------------------------
    @staticmethod
    def _accumulate_telemetry(tel_groups: Dict[int, Dict[str, Any]],
                              gid: int, run: GroupRun) -> None:
        tel = run.telemetry
        acc = tel_groups.get(gid)
        if acc is None:
            acc = tel_groups[gid] = {
                "slots": 0, "events_processed": 0,
                "wall_seconds": 0.0, "counters": {},
            }
        acc["slots"] += 1
        acc["events_processed"] += tel.events_processed
        acc["wall_seconds"] += tel.wall_seconds
        counters = acc["counters"]
        for key, value in tel.counters.items():
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                counters[key] = counters.get(key, 0) + value

    @staticmethod
    def _telemetry_snapshot(
            tel_groups: Dict[int, Dict[str, Any]]) -> Dict[str, Any]:
        totals = {"slots": 0, "events_processed": 0,
                  "wall_seconds": 0.0}
        counters: Dict[str, Any] = {}
        for acc in tel_groups.values():
            totals["slots"] += acc["slots"]
            totals["events_processed"] += acc["events_processed"]
            totals["wall_seconds"] += acc["wall_seconds"]
            for key, value in acc["counters"].items():
                counters[key] = counters.get(key, 0) + value
        totals["counters"] = counters
        return {
            "schema": "service-telemetry/v1",
            "groups": {str(gid): acc
                       for gid, acc in sorted(tel_groups.items())},
            "totals": totals,
        }
