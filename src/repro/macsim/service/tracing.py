"""Request-level tracing and windowed service metrics.

Two opt-in observers for the serve path, in the Dapper tradition of
span-per-request tracing applied to the service's virtual-time world:

* :class:`RequestTracer` stamps every client proposal with a span tree
  -- ``enqueue -> batch_admit -> slot_start -> decide -> reply`` -- in
  virtual time, attributed to ``(group, slot, shard)``. The reduction
  side (queueing-delay vs service-time breakdowns, per-group latency
  histograms) lives in :mod:`repro.analysis.service_stats`; the raw
  artifact is schema ``service-spans/v1``.
* :class:`MetricsRegistry` keeps a ring buffer of fixed-width
  virtual-time windows -- arrivals, commits, RPS, in-flight, per-window
  latency percentiles -- plus cumulative per-group series and free-form
  counters (frontend queue peaks, serve-heap churn, engine heap
  counters when telemetry rides along). Snapshots carry schema
  ``service-metrics/v1`` and render to Prometheus text via
  :func:`prometheus_text`.

Both observers follow the telemetry subsystem's design contract:

* **Byte-identity.** Neither ever touches the engines or the closed
  loop's event order; a serve run with tracing on produces traces and
  reports identical to tracing off (pinned by the test suite).
* **No-op fast path.** Disabled observers cost the serve loop one
  ``is None`` check per arrival/commit; the overhead gate in
  ``BENCH_PR10.json`` pins the enabled cost at <= 5%.
* **Shard-exact merging.** Span records are pure virtual time, so the
  merge of per-shard snapshots is *identical* (modulo the wall-clock
  ``scheduler`` section) to a serial run's snapshot: records sort on a
  canonical key, window counts add, and per-group series union
  (placement partitions groups across shards). Wall-clock scheduler
  profiles are kept under a separate ``scheduler`` key precisely so
  identity comparisons can strip them, mirroring ``wall_seconds``.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["RequestTracer", "MetricsRegistry", "latency_summary",
           "prometheus_text", "SPAN_SCHEMA", "METRICS_SCHEMA",
           "SPAN_STAGES"]

#: Schema tag for span artifacts (``repro serve --trace-requests``).
SPAN_SCHEMA = "service-spans/v1"
#: Schema tag for windowed metrics snapshots (``--metrics-out``).
METRICS_SCHEMA = "service-metrics/v1"
#: A request's span stages, in causal order. ``batch_admit`` and
#: ``slot_start`` coincide today (the frontend closes a batch exactly
#: when its slot starts); both are recorded so the schema survives a
#: future slot-pipelining split.
SPAN_STAGES = ("enqueue", "batch_admit", "slot_start", "decide", "reply")

#: Canonical sort key for span records: merge of per-shard snapshots
#: equals the serial snapshot because both sort on it.
_SPAN_KEY = ("group", "slot", "client", "index")


def latency_summary(latencies: Sequence[float]) -> Dict[str, Any]:
    """Nearest-rank percentile summary of a latency sample."""
    n = len(latencies)
    if n == 0:
        return {"count": 0}
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        return ordered[max(0, math.ceil(q * n) - 1)]

    return {
        "count": n,
        "mean": sum(ordered) / n,
        "p50": pct(0.50),
        "p95": pct(0.95),
        "p99": pct(0.99),
        "max": ordered[-1],
    }


def _span_sort_key(record: Dict[str, Any]):
    return tuple(record[k] for k in _SPAN_KEY)


class RequestTracer:
    """Collect one span record per client proposal.

    The serve loop calls :meth:`record_slot` once per committed slot
    (it already holds every timestamp a span needs: the request's
    arrival, the slot's start, the engine's decision time and the
    commit instant), so tracing adds one dict append per request and
    zero work per event.
    """

    __slots__ = ("shard", "records")

    def __init__(self, *, shard: int = 0) -> None:
        self.shard = shard
        self.records: List[Dict[str, Any]] = []

    def record_slot(self, *, group: int, slot: int, batch: Iterable[Any],
                    start: float, decide: float, reply: float,
                    ok: bool) -> None:
        """Record the spans of every request carried by one slot.

        ``start`` is the global instant the slot's engine began (batch
        admission and slot start coincide), ``decide`` the global
        instant the slot's last correct node decided, ``reply`` the
        commit instant the service stamps latencies with.
        """
        shard = self.shard
        for req in batch:
            self.records.append({
                "client": req.client,
                "index": req.index,
                "group": group,
                "slot": slot,
                "shard": shard,
                "ok": ok,
                "enqueue": req.arrival,
                "batch_admit": start,
                "slot_start": start,
                "decide": decide,
                "reply": reply,
            })

    def snapshot(self, *, scheduler: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
        """``service-spans/v1`` artifact: canonically sorted records
        plus the (wall-clock, hence identity-exempt) scheduler profile."""
        doc: Dict[str, Any] = {
            "schema": SPAN_SCHEMA,
            "stages": list(SPAN_STAGES),
            "shards": [self.shard],
            "requests": sorted(self.records, key=_span_sort_key),
        }
        if scheduler is not None:
            doc["scheduler"] = {
                "shards": {str(self.shard): scheduler},
                "totals": dict(scheduler),
            }
        return doc

    @staticmethod
    def merge_snapshots(parts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        """Merge per-shard span snapshots into one artifact.

        Virtual-time records concatenate and re-sort (== a serial
        run's snapshot); wall-clock scheduler profiles sum per field
        with the overhead fraction recomputed from the summed split.
        """
        parts = [p for p in parts if p is not None]
        if not parts:
            return {}
        records: List[Dict[str, Any]] = []
        shards: List[int] = []
        sched_shards: Dict[str, Any] = {}
        for part in parts:
            records.extend(part.get("requests", ()))
            shards.extend(part.get("shards", ()))
            sched_shards.update(part.get("scheduler", {}).get("shards", {}))
        doc: Dict[str, Any] = {
            "schema": SPAN_SCHEMA,
            "stages": list(SPAN_STAGES),
            "shards": sorted(set(shards)),
            "requests": sorted(records, key=_span_sort_key),
        }
        if sched_shards:
            totals: Dict[str, float] = {}
            for prof in sched_shards.values():
                for key, value in prof.items():
                    if key == "overhead_fraction":
                        continue
                    totals[key] = totals.get(key, 0) + value
            advance = totals.get("advance_seconds", 0.0)
            totals["overhead_fraction"] = (
                totals.get("overhead_seconds", 0.0) / advance
                if advance > 0.0 else 0.0)
            doc["scheduler"] = {
                "shards": {k: sched_shards[k]
                           for k in sorted(sched_shards, key=int)},
                "totals": totals,
            }
        return doc


class MetricsRegistry:
    """Windowed time-series + cumulative counters for a serve run.

    Windows are fixed-width intervals of *virtual* time, keyed by
    ``int(t // window)`` and bounded by ``capacity`` (a ring buffer:
    the oldest window is evicted once the buffer is full, its counts
    folded into the eviction base so in-flight derivation stays exact).
    Because windows are virtual-time-aligned, per-shard registries
    merge exactly: same-key windows add, per-group series union.

    When ``out_path`` is set, every window rollover rewrites the
    snapshot atomically (tmp + rename), which is what makes
    ``repro top --follow`` live against a running serve.
    """

    __slots__ = ("window", "capacity", "shard", "out_path",
                 "_windows", "_order", "dropped_windows",
                 "_evicted_arrivals", "_evicted_commits",
                 "_arrivals", "_commits", "_failed",
                 "_group_arrivals", "_group_commits", "_group_failed",
                 "_group_latencies", "counters", "queue_peaks")

    def __init__(self, *, window: float = 50.0, capacity: int = 256,
                 shard: int = 0, out_path: Optional[str] = None) -> None:
        if window <= 0.0:
            raise ValueError("metrics window must be positive")
        if capacity < 1:
            raise ValueError("metrics capacity must be >= 1")
        self.window = window
        self.capacity = capacity
        self.shard = shard
        self.out_path = out_path
        self._windows: Dict[int, Dict[str, Any]] = {}
        self._order: List[int] = []  # insertion order == time order
        self.dropped_windows = 0
        self._evicted_arrivals = 0
        self._evicted_commits = 0
        self._arrivals = 0
        self._commits = 0
        self._failed = 0
        self._group_arrivals: Dict[int, int] = {}
        self._group_commits: Dict[int, int] = {}
        self._group_failed: Dict[int, int] = {}
        self._group_latencies: Dict[int, List[float]] = {}
        self.counters: Dict[str, Any] = {}
        self.queue_peaks: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording (serve-loop hot path: dict lookups and int adds only)
    # ------------------------------------------------------------------
    def _window_for(self, t: float) -> Dict[str, Any]:
        idx = int(t // self.window)
        win = self._windows.get(idx)
        if win is None:
            win = self._windows[idx] = {
                "arrivals": 0, "commits": 0, "latencies": [],
                "groups": {},
            }
            self._order.append(idx)
            if len(self._order) > self.capacity:
                oldest = min(self._order)
                self._order.remove(oldest)
                evicted = self._windows.pop(oldest)
                self.dropped_windows += 1
                self._evicted_arrivals += evicted["arrivals"]
                self._evicted_commits += evicted["commits"]
            if self.out_path is not None:
                self.flush()
        return win

    def _group_cell(self, win: Dict[str, Any], group: int) -> Dict[str, int]:
        cell = win["groups"].get(group)
        if cell is None:
            cell = win["groups"][group] = {"arrivals": 0, "commits": 0}
        return cell

    def record_arrival(self, t: float, group: int) -> None:
        self._arrivals += 1
        self._group_arrivals[group] = self._group_arrivals.get(group, 0) + 1
        win = self._window_for(t)
        win["arrivals"] += 1
        self._group_cell(win, group)["arrivals"] += 1

    def record_commit(self, t: float, group: int, latency: float) -> None:
        self._commits += 1
        self._group_commits[group] = self._group_commits.get(group, 0) + 1
        self._group_latencies.setdefault(group, []).append(latency)
        win = self._window_for(t)
        win["commits"] += 1
        win["latencies"].append(latency)
        self._group_cell(win, group)["commits"] += 1

    def record_failure(self, t: float, group: int) -> None:
        self._failed += 1
        self._group_failed[group] = self._group_failed.get(group, 0) + 1

    def add_counter(self, name: str, value) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_queue_peaks(self, peaks: Dict[int, int]) -> None:
        self.queue_peaks = dict(peaks)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        windows: List[Dict[str, Any]] = []
        in_flight = self._evicted_arrivals - self._evicted_commits
        for idx in sorted(self._windows):
            win = self._windows[idx]
            in_flight += win["arrivals"] - win["commits"]
            windows.append({
                "start": idx * self.window,
                "end": (idx + 1) * self.window,
                "arrivals": win["arrivals"],
                "commits": win["commits"],
                "rps": win["commits"] / self.window,
                "in_flight": in_flight,
                "latencies": sorted(win["latencies"]),
                "latency": latency_summary(win["latencies"]),
                "groups": {str(g): dict(cell) for g, cell
                           in sorted(win["groups"].items())},
            })
        groups: Dict[str, Any] = {}
        for gid in sorted(set(self._group_arrivals)
                          | set(self._group_commits)
                          | set(self._group_failed)):
            groups[str(gid)] = {
                "arrivals": self._group_arrivals.get(gid, 0),
                "commits": self._group_commits.get(gid, 0),
                "failed": self._group_failed.get(gid, 0),
                "queue_peak": self.queue_peaks.get(gid, 0),
                "latency": latency_summary(
                    self._group_latencies.get(gid, ())),
            }
        return {
            "schema": METRICS_SCHEMA,
            "window": self.window,
            "capacity": self.capacity,
            "shards": [self.shard],
            "dropped_windows": self.dropped_windows,
            "windows": windows,
            "groups": groups,
            "totals": {
                "arrivals": self._arrivals,
                "commits": self._commits,
                "failed": self._failed,
                "in_flight_final": self._arrivals - self._commits
                - self._failed,
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def flush(self) -> None:
        """Atomically rewrite ``out_path`` with the current snapshot."""
        if self.out_path is None:
            return
        tmp = self.out_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2)
            fh.write("\n")
        os.replace(tmp, self.out_path)

    @staticmethod
    def merge_snapshots(parts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        """Merge per-shard metrics snapshots exactly.

        Windows align on virtual time, so same-start windows add their
        counts and pool their latency samples; per-group series union
        (groups are shard-disjoint); in-flight gauges add because the
        client population partitions across shards.
        """
        parts = [p for p in parts if p is not None]
        if not parts:
            return {}
        window = parts[0]["window"]
        merged_windows: Dict[float, Dict[str, Any]] = {}
        groups: Dict[str, Any] = {}
        shards: List[int] = []
        totals = {"arrivals": 0, "commits": 0, "failed": 0,
                  "in_flight_final": 0}
        counters: Dict[str, Any] = {}
        dropped = 0
        for part in parts:
            if part["window"] != window:
                raise ValueError("cannot merge metrics snapshots with "
                                 "different window widths")
            shards.extend(part.get("shards", ()))
            dropped += part.get("dropped_windows", 0)
            for win in part["windows"]:
                acc = merged_windows.get(win["start"])
                if acc is None:
                    acc = merged_windows[win["start"]] = {
                        "start": win["start"], "end": win["end"],
                        "arrivals": 0, "commits": 0, "in_flight": 0,
                        "latencies": [], "groups": {},
                    }
                acc["arrivals"] += win["arrivals"]
                acc["commits"] += win["commits"]
                acc["in_flight"] += win["in_flight"]
                acc["latencies"].extend(win["latencies"])
                for g, cell in win["groups"].items():
                    gacc = acc["groups"].setdefault(
                        g, {"arrivals": 0, "commits": 0})
                    gacc["arrivals"] += cell["arrivals"]
                    gacc["commits"] += cell["commits"]
            groups.update(part.get("groups", {}))
            for key in totals:
                totals[key] += part["totals"].get(key, 0)
            for key, value in part.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
        windows = []
        # A shard records windows only while *its* groups are active;
        # in-flight gauges must carry forward through windows a shard
        # did not record, so re-derive each shard's carried gauge.
        carried: Dict[int, int] = {}
        per_shard_windows: Dict[float, Dict[int, int]] = {}
        for part in parts:
            sid = part.get("shards", [0])[0]
            for win in part["windows"]:
                per_shard_windows.setdefault(
                    win["start"], {})[sid] = win["in_flight"]
        for start in sorted(merged_windows):
            win = merged_windows[start]
            for sid, gauge in per_shard_windows.get(start, {}).items():
                carried[sid] = gauge
            win["in_flight"] = sum(carried.values())
            win["latencies"].sort()
            win["rps"] = win["commits"] / window
            win["latency"] = latency_summary(win["latencies"])
            win["groups"] = {g: win["groups"][g]
                             for g in sorted(win["groups"], key=int)}
            windows.append(win)
        return {
            "schema": METRICS_SCHEMA,
            "window": window,
            "capacity": max(p.get("capacity", 0) for p in parts),
            "shards": sorted(set(shards)),
            "dropped_windows": dropped,
            "windows": windows,
            "groups": {g: groups[g] for g in sorted(groups, key=int)},
            "totals": totals,
            "counters": dict(sorted(counters.items())),
        }


# ----------------------------------------------------------------------
# Prometheus-style text export
# ----------------------------------------------------------------------
_PROM_PREFIX = "macsim_service"


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def prometheus_text(doc: Dict[str, Any]) -> str:
    """Render a ``service-metrics/v1`` snapshot as Prometheus text.

    Latencies are in virtual-time units (the engine's ``F_ack``
    scale), not seconds -- the unit suffix says so.
    """
    if doc.get("schema") != METRICS_SCHEMA:
        raise ValueError(f"expected {METRICS_SCHEMA} snapshot, "
                         f"got {doc.get('schema')!r}")
    lines: List[str] = []

    def header(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    totals = doc.get("totals", {})
    header(f"{_PROM_PREFIX}_requests_committed_total", "counter",
           "Requests committed by the consensus service.")
    lines.append(f"{_PROM_PREFIX}_requests_committed_total "
                 f"{totals.get('commits', 0)}")
    header(f"{_PROM_PREFIX}_requests_failed_total", "counter",
           "Requests on slots that failed to decide.")
    lines.append(f"{_PROM_PREFIX}_requests_failed_total "
                 f"{totals.get('failed', 0)}")
    header(f"{_PROM_PREFIX}_in_flight", "gauge",
           "Requests admitted but not yet committed.")
    lines.append(f"{_PROM_PREFIX}_in_flight "
                 f"{totals.get('in_flight_final', 0)}")

    groups = doc.get("groups", {})
    if groups:
        header(f"{_PROM_PREFIX}_group_commits_total", "counter",
               "Committed requests per consensus group.")
        for gid, cell in groups.items():
            lines.append(f"{_PROM_PREFIX}_group_commits_total"
                         f'{{group="{gid}"}} {cell.get("commits", 0)}')
        header(f"{_PROM_PREFIX}_group_queue_peak", "gauge",
               "Peak frontend queue depth per group.")
        for gid, cell in groups.items():
            lines.append(f"{_PROM_PREFIX}_group_queue_peak"
                         f'{{group="{gid}"}} {cell.get("queue_peak", 0)}')
        header(f"{_PROM_PREFIX}_group_latency_vt", "summary",
               "Request latency per group, virtual-time units.")
        for gid, cell in groups.items():
            latency = cell.get("latency", {})
            for q, key in (("0.5", "p50"), ("0.95", "p95"),
                           ("0.99", "p99")):
                value = latency.get(key)
                if value is not None:
                    lines.append(
                        f"{_PROM_PREFIX}_group_latency_vt"
                        f'{{group="{gid}",quantile="{q}"}} {value}')

    windows = doc.get("windows", ())
    if windows:
        last = windows[-1]
        header(f"{_PROM_PREFIX}_window_rps", "gauge",
               "Committed requests per virtual-time unit, last window.")
        lines.append(f"{_PROM_PREFIX}_window_rps {last['rps']}")
        header(f"{_PROM_PREFIX}_window_in_flight", "gauge",
               "In-flight requests at last window close.")
        lines.append(f"{_PROM_PREFIX}_window_in_flight "
                     f"{last['in_flight']}")

    counters = doc.get("counters", {})
    if counters:
        header(f"{_PROM_PREFIX}_counter_total", "counter",
               "Free-form service counters.")
        for name, value in counters.items():
            lines.append(f"{_PROM_PREFIX}_counter_total"
                         f'{{name="{_prom_name(name)}"}} {value}')
    return "\n".join(lines) + "\n"
