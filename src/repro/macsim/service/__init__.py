"""Consensus as a service: multi-group runtime over the MAC-layer engine.

The engine (`repro.macsim`) executes one consensus instance per
simulator; this package turns it into a long-lived *service* in the
sense of the fault-tolerant follow-up work (Newport-Robinson,
arXiv:1810.02848): many independent consensus groups multiplexed over
shared scheduling, fed by a closed-loop client workload, sharded
across forked engines one per core.

Layers (bottom up):

* :mod:`.runtime` -- :class:`GroupRuntime`: interleaves many
  simulators in global virtual-time order with byte-identical
  per-group traces (1 group == a standalone ``Scenario.simulate()``).
* :mod:`.frontend` -- per-group proposal queues batching client
  requests into consensus *slots*.
* :mod:`.workload` -- :class:`WorkloadGenerator`: deterministic
  closed-loop clients, Zipf group popularity, lognormal think times.
* :mod:`.loop` -- :class:`ConsensusService`: the virtual-time serve
  loop (latency = commit - arrival) with per-group telemetry
  attribution.
* :mod:`.placement` -- rendezvous group placement and
  ``NodeChurn``-driven rebalancing.
* :mod:`.sharded` -- :class:`ShardedService`: fork one engine per
  core, aggregate exactly.
* :mod:`.tracing` -- :class:`RequestTracer` span trees
  (``service-spans/v1``) and the windowed :class:`MetricsRegistry`
  (``service-metrics/v1``) behind ``repro serve --trace-requests`` /
  ``--metrics-out`` / ``repro top``.
"""

from .frontend import Request, ServiceFrontend
from .loop import (ConsensusService, GroupStats, ServiceReport,
                   latency_summary, slot_scenario, slot_seed)
from .placement import (GroupPlacement, PlacementMove,
                        placement_under_churn, rendezvous_host,
                        rendezvous_place)
from .runtime import GroupRun, GroupRuntime
from .sharded import ShardedService, run_service
from .tracing import (METRICS_SCHEMA, SPAN_SCHEMA, SPAN_STAGES,
                      MetricsRegistry, RequestTracer, prometheus_text)
from .workload import WorkloadGenerator

__all__ = [
    "ConsensusService",
    "GroupPlacement",
    "GroupRun",
    "GroupRuntime",
    "GroupStats",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "PlacementMove",
    "Request",
    "RequestTracer",
    "SPAN_SCHEMA",
    "SPAN_STAGES",
    "ServiceFrontend",
    "ServiceReport",
    "ShardedService",
    "WorkloadGenerator",
    "latency_summary",
    "prometheus_text",
    "placement_under_churn",
    "rendezvous_host",
    "rendezvous_place",
    "run_service",
    "slot_scenario",
    "slot_seed",
]
