"""Multi-group runtime: many consensus instances, one event loop.

The engine runs one consensus instance per :class:`Simulator`; a
service runs thousands of *groups* concurrently. :class:`GroupRuntime`
multiplexes independent simulators over a single virtual-time loop:
per-group state (graph, processes, queue, trace sink, telemetry) stays
on each group's own simulator -- built exactly the way
``ResolvedScenario.simulate()`` builds it -- while the runtime owns
only the shared schedule: which group's next event is globally
earliest, and how far that group may advance before another group's
event is due.

Determinism contract
--------------------

* Each group is advanced with ``stop_predicate`` time slices, never
  with ``max_time`` limits (the engine's ``max_time`` check discards
  the popped heap entry, so it is terminal-only; the predicate is
  checked *before* the pop and is safe to resume from). The predicate
  stops a slice once the group's next event would pass the granted
  window, so slicing never perturbs which events run or in what order.
* A group's trace is therefore byte-identical to the trace of an
  unsliced ``scenario.simulate()`` of the same scenario, and its final
  :class:`RunResult` carries the same decisions, end time, accumulated
  event count and terminal stop reason. With a single group the
  runtime degenerates to exactly one uninterrupted engine call.
* Groups are fully independent: K groups under one runtime produce
  the same per-group results as K standalone runs, regardless of how
  the runtime interleaves them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from ..simulator import RunResult, Simulator
from ..telemetry import MonotonicProfile

__all__ = ["GroupRun", "GroupRuntime"]


@dataclass
class GroupRun:
    """Completed execution of one group's consensus instance."""

    group_id: Any
    scenario: Any
    result: RunResult
    #: Global (service virtual-time) instant the instance started.
    start_time: float
    #: Engine ``run()`` invocations spent advancing this group.
    slices: int
    #: The group's :class:`~repro.macsim.telemetry.Telemetry`
    #: instance when telemetry was enabled, else ``None``.
    telemetry: Any = None
    #: Opaque caller data attached at ``add_group`` time (the serve
    #: layer stores the batch of client requests riding this slot).
    context: Any = None

    @property
    def finish_time(self) -> float:
        """Global instant the instance's last event ran."""
        return self.start_time + self.result.end_time


def _stop_immediately(sim: Simulator) -> bool:
    return True


class _Group:
    """Per-group bookkeeping the runtime keeps between slices."""

    __slots__ = ("group_id", "order", "scenario", "sim", "offset",
                 "remaining", "consumed", "slices", "context")

    def __init__(self, group_id: Any, order: int, scenario: Any,
                 sim: Simulator, offset: float, context: Any) -> None:
        self.group_id = group_id
        self.order = order
        self.scenario = scenario
        self.sim = sim
        self.offset = offset
        self.remaining = scenario.max_events
        self.consumed = 0
        self.slices = 0
        self.context = context


class GroupRuntime:
    """Interleave many independent consensus simulations in global
    virtual-time order.

    Groups are registered with :meth:`add_group` (each carries its own
    :class:`~repro.scenario.Scenario`, optional trace sink and
    telemetry) and advanced with :meth:`advance`, which processes all
    pending events up to a global horizon -- always picking the group
    whose next event is globally earliest -- and returns the groups
    that ran to completion. ``advance(None)`` drains everything.
    """

    def __init__(self, *, profile: bool = False) -> None:
        self._active: List[_Group] = []
        self._finished: List[GroupRun] = []
        self._order = 0
        self._in_advance = False
        #: Opt-in wall-clock split of :meth:`advance` into time spent
        #: *inside* engine ``run()`` calls vs the cross-group
        #: scheduling loop around them -- the number the ROADMAP's
        #: 10-100x scale item needs. ``None`` (the default) keeps the
        #: hot path free of clock reads.
        self.profile: Optional[MonotonicProfile] = (
            MonotonicProfile(("advance", "engine", "startup"))
            if profile else None)

    def scheduler_profile(self) -> Optional[Dict[str, Any]]:
        """Snapshot of the opt-in advance/engine wall-clock split.

        ``overhead_seconds`` is the time :meth:`advance` spent picking
        the globally earliest group and computing slice windows --
        everything *except* the engine calls it issued. ``startup`` is
        engine time spent outside ``advance`` (the ``on_start`` slices
        :meth:`add_group` fires). Returns ``None`` when profiling is
        off.
        """
        if self.profile is None:
            return None
        snap = self.profile.snapshot()
        advance = snap["advance"]["seconds"]
        engine = snap["engine"]["seconds"]
        overhead = max(0.0, advance - engine)
        return {
            "advance_calls": snap["advance"]["calls"],
            "advance_seconds": advance,
            "engine_slices": snap["engine"]["calls"],
            "engine_seconds": engine,
            "startup_slices": snap["startup"]["calls"],
            "startup_seconds": snap["startup"]["seconds"],
            "overhead_seconds": overhead,
            "overhead_fraction": (overhead / advance) if advance > 0.0
            else 0.0,
        }

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_group(self, scenario: Any, *, group_id: Any = None,
                  start_time: float = 0.0, trace_sink: Any = None,
                  telemetry: Any = None, context: Any = None) -> None:
        """Register one consensus instance.

        ``start_time`` offsets the group's local clock: its events run
        at global time ``start_time + local_time``. The instance is
        built from ``scenario`` exactly as ``scenario.simulate()``
        would build it, and its ``on_start`` hooks fire here (without
        processing any events), so the group immediately has a defined
        next-event time for the shared schedule.
        """
        if group_id is None:
            group_id = self._order
        resolved = scenario.resolve()
        sim = resolved.build(trace_sink=trace_sink, telemetry=telemetry)
        group = _Group(group_id, self._order, scenario, sim,
                       start_time, context)
        self._order += 1
        self._active.append(group)
        # Fire on_start (queueing the initial broadcasts) without
        # consuming events; the engine checks the predicate before
        # every pop, so this costs zero events and leaves the trace
        # exactly as a standalone run's first call would.
        self._slice(group, local_limit=None,
                    predicate=_stop_immediately)
        if group in self._active and sim.next_event_time() is None:
            # Nothing was scheduled at start: one more call lets the
            # engine return its own quiescent verdict (zero events).
            self._slice(group, local_limit=None, predicate=None)

    # ------------------------------------------------------------------
    # Shared scheduling
    # ------------------------------------------------------------------
    def next_time(self) -> Optional[float]:
        """Global timestamp of the earliest pending event across all
        active groups, or ``None`` when nothing is left to run."""
        best: Optional[float] = None
        for group in self._active:
            t = group.offset + group.sim.next_event_time()
            if best is None or t < best:
                best = t
        return best

    @property
    def active_groups(self) -> int:
        return len(self._active)

    def advance(self, until: Optional[float] = None) -> List[GroupRun]:
        """Process every pending event with global time ``<= until``
        (all of them when ``until`` is ``None``), interleaving groups
        in global time order, ties broken by registration order.

        Returns the :class:`GroupRun` records of groups that reached a
        terminal state (decided, quiescent, or out of budget) since
        the previous call.
        """
        profile = self.profile
        t_enter = perf_counter() if profile is not None else 0.0
        self._in_advance = True
        inf = math.inf
        while self._active:
            best: Optional[_Group] = None
            best_t = inf
            next_t = inf
            for group in self._active:
                t = group.offset + group.sim.next_event_time()
                if best is None or t < best_t:
                    if best is not None and best_t < next_t:
                        next_t = best_t
                    best, best_t = group, t
                elif t < next_t:
                    next_t = t
            if until is not None and best_t > until:
                break
            limit = next_t if until is None else min(next_t, until)
            if limit is inf:
                # Last group standing with no horizon: run it to its
                # terminal state in one uninterrupted engine call --
                # the single-group path is literally a standalone run.
                self._slice(best, local_limit=None, predicate=None)
            else:
                self._slice(best, local_limit=limit - best.offset,
                            predicate=None)
        self._in_advance = False
        if profile is not None:
            profile.add("advance", perf_counter() - t_enter)
        finished, self._finished = self._finished, []
        return finished

    def run(self) -> List[GroupRun]:
        """Drain every group to completion and return their runs,
        ordered by completion."""
        return self.advance(None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _slice(self, group: _Group, *, local_limit: Optional[float],
               predicate: Optional[Callable[[Simulator], bool]]) -> None:
        """Advance one group by a bounded engine call and absorb the
        outcome (event budget, terminal detection)."""
        sim = group.sim
        if predicate is None and local_limit is not None:
            def predicate(s: Simulator, _limit=local_limit) -> bool:
                t = s.next_event_time()
                return t is not None and t > _limit
        profile = self.profile
        if profile is None:
            res = sim.run(max_events=group.remaining,
                          max_time=group.scenario.max_time,
                          stop_predicate=predicate)
        else:
            t_run = perf_counter()
            res = sim.run(max_events=group.remaining,
                          max_time=group.scenario.max_time,
                          stop_predicate=predicate)
            profile.add("engine" if self._in_advance else "startup",
                        perf_counter() - t_run)
        group.consumed += res.events_processed
        group.remaining -= res.events_processed
        group.slices += 1
        if res.stop_reason != "predicate":
            self._finish(group, res, res.stop_reason)
        elif group.remaining <= 0:
            # The slice ended exactly on the scenario's event budget; a
            # standalone run would have stopped on ``max_events`` at
            # this same event.
            self._finish(group, res, "max_events")
        elif sim.all_decided:
            # Completion is detected between slices exactly where the
            # standalone loop would have stopped: before the next event.
            self._finish(group, res, "all_decided")

    def _finish(self, group: _Group, res: RunResult, reason: str) -> None:
        final = RunResult(trace=group.sim.trace,
                          decisions=res.decisions,
                          decision_times=res.decision_times,
                          end_time=res.end_time,
                          events_processed=group.consumed,
                          stop_reason=reason)
        final.trace.close()
        self._active.remove(group)
        self._finished.append(GroupRun(
            group_id=group.group_id,
            scenario=group.scenario,
            result=final,
            start_time=group.offset,
            slices=group.slices,
            telemetry=group.sim.telemetry,
            context=group.context,
        ))
