"""Client-facing frontend: per-group proposal queues and slot batching.

Real replicated-log services do not run one consensus instance per
client request -- the frontend accumulates proposals while a group's
current slot is deciding and folds the backlog into the next slot
(batching is where log throughput comes from). This module is the
bookkeeping half of that story: FIFO queues per group, batch windows
bounded by ``batch_size``, and arrival timestamps kept so the service
can account end-to-end latency (commit time minus arrival) per
request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List

__all__ = ["Request", "ServiceFrontend"]


@dataclass(frozen=True)
class Request:
    """One client proposal as the frontend sees it."""

    client: int
    #: Per-client request sequence number (0-based).
    index: int
    group: int
    #: Virtual-time instant the proposal arrived at the frontend.
    arrival: float


class ServiceFrontend:
    """Per-group FIFO proposal queues with bounded batch windows."""

    def __init__(self, *, batch_size: int = 8) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._queues: Dict[int, Deque[Request]] = {}
        self.submitted = 0
        self._peaks: Dict[int, int] = {}

    def submit(self, request: Request) -> None:
        """Queue one proposal for its group."""
        queue = self._queues.get(request.group)
        if queue is None:
            queue = self._queues[request.group] = deque()
        queue.append(request)
        self.submitted += 1
        depth = len(queue)
        if depth > self._peaks.get(request.group, 0):
            self._peaks[request.group] = depth

    def queue_peaks(self) -> Dict[int, int]:
        """Peak queue depth observed per group (queueing-pressure
        gauge for the metrics registry)."""
        return dict(self._peaks)

    def pending(self, group: int) -> int:
        queue = self._queues.get(group)
        return len(queue) if queue is not None else 0

    def total_pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def next_batch(self, group: int) -> List[Request]:
        """Pop the oldest ``batch_size`` proposals queued for
        ``group`` (possibly fewer; empty when the queue is idle)."""
        queue = self._queues.get(group)
        if not queue:
            return []
        take = min(self.batch_size, len(queue))
        return [queue.popleft() for _ in range(take)]
