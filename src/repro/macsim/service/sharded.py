"""Sharded service: groups pinned across forked engine shards.

One engine process per core (``saturating_workers()``), each running
its own :class:`ConsensusService` over the groups the placement pins
to it. Because the workload derives every client's behaviour from
``(seed, client)`` alone (see :mod:`.workload`), a shard can replay
exactly its clients without coordination, and the aggregated report is
**identical** to an unsharded run of the same configuration -- the
shard count is a pure wall-clock knob, which the equivalence tests
pin.

Shard lifecycle reuses the sweep fabric's conventions: fork-based
workers, :class:`~repro.analysis.sweeps.SweepProgress` heartbeats (one
per shard completion, with the closing per-worker utilization line)
and the same :data:`~repro.analysis.sweeps.STRAGGLER_FACTOR` rule for
flagging shards that ran far slower than the median -- the placement
skew signal.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

from ...analysis.sweeps import (STRAGGLER_FACTOR, SweepProgress,
                                _progress_enabled, saturating_workers)
from .loop import ConsensusService, GroupStats, ServiceReport
from .placement import rendezvous_place
from .tracing import MetricsRegistry, RequestTracer
from .workload import WorkloadGenerator

__all__ = ["ShardedService", "run_service"]


def _observers(shard: int, trace_requests: bool,
               metrics_window: Optional[float],
               out_path: Optional[str] = None):
    """Per-shard tracer/metrics instances (``None`` when disabled)."""
    tracer = RequestTracer(shard=shard) if trace_requests else None
    metrics = None
    if metrics_window is not None:
        metrics = MetricsRegistry(window=metrics_window, shard=shard,
                                  out_path=out_path)
    return tracer, metrics


def _shard_worker(conn, shard, base, workload, group_ids,
                  service_kwargs, trace_requests,
                  metrics_window) -> None:
    """Child entry point: serve one shard's groups, ship the report."""
    try:
        tracer, metrics = _observers(shard, trace_requests,
                                     metrics_window)
        service = ConsensusService(base, workload, group_ids=group_ids,
                                   tracer=tracer, metrics=metrics,
                                   **service_kwargs)
        report = service.run()
        conn.send(("ok", report))
    except BaseException as exc:  # pragma: no cover - child crash path
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass
        raise
    finally:
        conn.close()


class ShardedService:
    """Run a consensus service with groups placed across forked
    engine shards.

    ``shards=None`` saturates the machine
    (``min(groups, saturating_workers())``); ``shards=1`` runs inline
    in-process (no fork), which is also the automatic fallback on
    platforms without ``fork``. Placement is rendezvous hashing of
    group ids over shard ids -- deterministic and minimally disruptive
    (see :mod:`.placement`).
    """

    def __init__(self, base: Any, workload: WorkloadGenerator, *,
                 shards: Optional[int] = None,
                 group_ids: Optional[Sequence[int]] = None,
                 batch_size: int = 8,
                 slot_trace_level: Optional[str] = "decisions",
                 telemetry: bool = False,
                 capture_first_slot: bool = False,
                 horizon: Optional[float] = None,
                 progress: Optional[bool] = None,
                 trace_requests: bool = False,
                 metrics_window: Optional[float] = None,
                 metrics_out: Optional[str] = None) -> None:
        self.base = base
        self.workload = workload
        if group_ids is None:
            group_ids = range(workload.groups)
        self.group_ids = sorted(group_ids)
        if shards is None:
            shards = max(1, min(len(self.group_ids),
                                saturating_workers()))
        self.shards = max(1, int(shards))
        self.progress = progress
        #: Request tracing + windowed metrics (``None`` window =
        #: metrics off). ``metrics_out`` live-flushes the JSON
        #: snapshot on window rollovers -- inline (single-shard) runs
        #: only; forked runs write one merged snapshot at the end.
        self.trace_requests = bool(trace_requests)
        self.metrics_window = metrics_window
        self.metrics_out = metrics_out
        self._service_kwargs: Dict[str, Any] = {
            "batch_size": batch_size,
            "slot_trace_level": slot_trace_level,
            "telemetry": telemetry,
            "horizon": horizon,
        }
        self.capture_first_slot = capture_first_slot
        self.first_slot_trace: Any = None
        self.first_slot_scenario: Any = None

    # ------------------------------------------------------------------
    def placement(self) -> Dict[int, List[int]]:
        """Shard id -> sorted group ids pinned to it."""
        if self.shards == 1:
            return {0: list(self.group_ids)}
        assignment = rendezvous_place(self.group_ids,
                                      list(range(self.shards)))
        by_shard: Dict[int, List[int]] = {s: [] for s in
                                          range(self.shards)}
        for group, shard in assignment.items():
            by_shard[shard].append(group)
        for groups in by_shard.values():
            groups.sort()
        return by_shard

    def run(self) -> ServiceReport:
        started = perf_counter()
        by_shard = self.placement()
        populated = [(shard, groups)
                     for shard, groups in sorted(by_shard.items())
                     if groups]
        if len(populated) <= 1 or not _can_fork():
            report = self._run_inline()
        else:
            report = self._run_forked(populated)
        report.wall_seconds = perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _run_inline(self) -> ServiceReport:
        tracer, metrics = _observers(0, self.trace_requests,
                                     self.metrics_window,
                                     out_path=self.metrics_out)
        service = ConsensusService(
            self.base, self.workload, group_ids=self.group_ids,
            capture_first_slot=self.capture_first_slot,
            tracer=tracer, metrics=metrics,
            **self._service_kwargs)
        report = service.run()
        self.first_slot_trace = service.first_slot_trace
        self.first_slot_scenario = service.first_slot_scenario
        report.shards = [{
            "shard": 0, "groups": len(self.group_ids),
            "requests": report.requests,
            "wall_seconds": report.wall_seconds,
            "utilization": 1.0, "straggler": False,
        }]
        return report

    def _run_forked(self, populated) -> ServiceReport:
        import multiprocessing as mp
        ctx = mp.get_context("fork")
        reporter = None
        if _progress_enabled(self.progress):
            reporter = SweepProgress(name="serve", total=len(populated))
        children = []
        for shard, groups in populated:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, shard, self.base, self.workload,
                      groups, self._service_kwargs,
                      self.trace_requests, self.metrics_window))
            proc.start()
            child_conn.close()
            children.append((shard, groups, proc, parent_conn))
        shard_reports: List[ServiceReport] = []
        shard_rows: List[Dict[str, Any]] = []
        worker_stats: List[Dict[str, Any]] = []
        for shard, groups, proc, conn in children:
            try:
                status, payload = conn.recv()
            except EOFError:
                status, payload = "error", "shard died without a report"
            proc.join()
            if status != "ok":
                raise RuntimeError(
                    f"service shard {shard} failed: {payload}")
            report: ServiceReport = payload
            shard_reports.append(report)
            shard_rows.append({
                "shard": shard, "groups": len(groups),
                "requests": report.requests,
                "wall_seconds": report.wall_seconds,
            })
            worker_stats.append({
                "worker": shard, "points": len(groups),
                "chunks": report.slots,
                "busy_seconds": report.wall_seconds,
            })
            if reporter is not None:
                reporter.point_done(f"shard{shard}",
                                    report.wall_seconds)
        walls = sorted(row["wall_seconds"] for row in shard_rows)
        median_wall = walls[len(walls) // 2]
        total_wall = max(walls) if walls else 0.0
        for row in shard_rows:
            wall = row["wall_seconds"]
            row["utilization"] = (wall / total_wall
                                  if total_wall > 0 else 0.0)
            row["straggler"] = (median_wall > 0.0
                                and wall > STRAGGLER_FACTOR
                                * median_wall)
        if reporter is not None:
            reporter.finish(worker_stats=worker_stats)
        merged = _merge_reports(self.workload, shard_reports)
        merged.shards = shard_rows
        return merged


def _can_fork() -> bool:
    return hasattr(os, "fork")


def _merge_reports(workload: WorkloadGenerator,
                   reports: List[ServiceReport]) -> ServiceReport:
    """Aggregate disjoint-group shard reports into one service report.

    Latency percentiles are computed over the union sample, so the
    merge is exact -- not an average of per-shard percentiles.
    """
    per_group: Dict[int, GroupStats] = {}
    latencies: List[float] = []
    telemetry_parts = [r.telemetry for r in reports
                       if r.telemetry is not None]
    tracing_parts = [r.tracing for r in reports
                     if r.tracing is not None]
    metrics_parts = [r.metrics for r in reports
                     if r.metrics is not None]
    for report in reports:
        per_group.update(report.per_group)
        latencies.extend(report.latencies)
    telemetry = None
    if telemetry_parts:
        groups: Dict[str, Any] = {}
        totals = {"slots": 0, "events_processed": 0,
                  "wall_seconds": 0.0}
        counters: Dict[str, Any] = {}
        for part in telemetry_parts:
            groups.update(part["groups"])
            part_totals = part["totals"]
            totals["slots"] += part_totals["slots"]
            totals["events_processed"] += \
                part_totals["events_processed"]
            totals["wall_seconds"] += part_totals["wall_seconds"]
            for key, value in part_totals["counters"].items():
                counters[key] = counters.get(key, 0) + value
        totals["counters"] = counters
        telemetry = {
            "schema": "service-telemetry/v1",
            "groups": dict(sorted(groups.items(),
                                  key=lambda kv: int(kv[0]))),
            "totals": totals,
        }
    return ServiceReport(
        groups=sum(r.groups for r in reports),
        clients=workload.clients,
        requests=sum(r.requests for r in reports),
        failed=sum(r.failed for r in reports),
        slots=sum(r.slots for r in reports),
        events=sum(r.events for r in reports),
        virtual_time=max((r.virtual_time for r in reports),
                         default=0.0),
        wall_seconds=0.0,  # refreshed by the caller
        latencies=latencies,
        per_group=per_group,
        telemetry=telemetry,
        tracing=(RequestTracer.merge_snapshots(tracing_parts)
                 if tracing_parts else None),
        metrics=(MetricsRegistry.merge_snapshots(metrics_parts)
                 if metrics_parts else None),
    )


def run_service(base: Any, *, groups: int, clients: int,
                shards: Optional[int] = 1, seed: int = 0,
                zipf_s: float = 1.1, think_mu: float = 3.0,
                think_sigma: float = 1.0,
                requests_per_client: int = 2, batch_size: int = 8,
                telemetry: bool = False,
                capture_first_slot: bool = False,
                horizon: Optional[float] = None,
                progress: Optional[bool] = None,
                trace_requests: bool = False,
                metrics_window: Optional[float] = None,
                metrics_out: Optional[str] = None) -> ServiceReport:
    """One-call service run: build the workload, shard, serve, merge."""
    workload = WorkloadGenerator(
        groups=groups, clients=clients, seed=seed, zipf_s=zipf_s,
        think_mu=think_mu, think_sigma=think_sigma,
        requests_per_client=requests_per_client)
    service = ShardedService(
        base, workload, shards=shards, batch_size=batch_size,
        telemetry=telemetry, capture_first_slot=capture_first_slot,
        horizon=horizon, progress=progress,
        trace_requests=trace_requests, metrics_window=metrics_window,
        metrics_out=metrics_out)
    return service.run()
