"""Opt-in run telemetry: engine counters, measured F_ack/F_prog spans,
and a wall-time phase profiler.

The paper's abstract MAC layer is *parameterized* by the ack/progress
bounds ``F_ack``/``F_prog``; every algorithm's time complexity is
stated against them. A :class:`Telemetry` object threaded through
:class:`~repro.macsim.simulator.Simulator` turns the realized bounds
into first-class observables: per-broadcast **causal spans**
(open -> first delivery -> last delivery -> ack) reduced into
empirical F_ack/F_prog/F_cover histograms, plus engine counters
(heap pushes/pops/cancellations, tombstone compactions, broadcasts
opened/acked, deliveries, drops, topology epochs, fault injections,
sink bytes/flushes) and a monotonic wall-clock profile of the
engine's phases (scheduler planning, plan validation, fault hooks,
dynamics epochs).

Design constraints, in priority order:

* **Byte-identity.** Telemetry never calls ``trace.record`` and never
  perturbs the event order: a run with telemetry on produces a trace
  byte-identical to the same run with telemetry off (pinned by the
  test suite).
* **No-op fast path.** Disabled telemetry costs the hot loop one
  ``is None`` check per delivery. Span bookkeeping is a dict update
  per delivery and one close per ack; the wall-clock profiler samples
  only at per-*broadcast* granularity (scheduler plan/validate, fault
  send hooks) and per-epoch granularity (dynamics), never per event.
  The overhead gate in ``BENCH_PR7.json`` pins the total at <= 5%.
* **Abort-safe.** Engine-raised exceptions
  (:class:`~repro.macsim.trace.SpillBudgetError`, a crashing process
  handler) flush a partial snapshot -- marked ``aborted`` with the
  error -- via :meth:`Telemetry.record_abort`, so post-mortems of
  straggling or budget-killed runs keep their counters.

Span semantics mirror the invariant checker's eviction-at-ack model
exactly: a span opens at the ``broadcast`` record, tracks the first
and last ``deliver`` times, and closes (emitting its samples) at the
``ack`` -- deliveries after the ack (possible on unreliable-overlay
runs) belong to no span. :mod:`repro.analysis.stats_report` derives
the same spans from saved trace records, so live telemetry, JSONL
replay and columnar replay of one seeded run summarize identically.

Summaries are computed from *sorted* samples with ``math.fsum`` for
the mean, so they are order-insensitive: any producer of the same
sample multiset (live engine, record stream, vectorized columnar
pass) reports bit-identical statistics.
"""

from __future__ import annotations

import json
import math
from array import array
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Telemetry", "TELEMETRY_SCHEMA", "PHASES", "quantile",
           "summarize_samples", "MonotonicProfile"]

#: Schema tag stamped into telemetry snapshots and ``--telemetry``
#: JSON files (what ``repro stats`` keys its detection on).
TELEMETRY_SCHEMA = "telemetry/v1"

#: Wall-clock phases the profiler attributes. Everything else
#: (delivery dispatch, heap operations, per-record sink appends) is
#: the run-loop residual: ``wall_seconds`` minus the phase total.
PHASES = ("scheduler_plan", "plan_validate", "fault_hooks",
          "dynamics_epochs", "sink_flush")


def quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already *sorted* sequence."""
    n = len(ordered)
    if n == 1:
        return ordered[0]
    pos = q * (n - 1)
    lo = int(pos)
    hi = lo + 1
    if hi >= n:
        return ordered[-1]
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def summarize_samples(samples) -> Dict[str, Any]:
    """count/min/p50/p95/max/mean of a sample sequence.

    Sorts first, so producers of the same multiset in any order (live
    spans, streamed record derivation, vectorized columnar derivation)
    produce identical summaries -- the cross-source identity the
    acceptance tests pin.
    """
    data = sorted(samples)
    n = len(data)
    if not n:
        return {"count": 0, "min": None, "p50": None, "p95": None,
                "max": None, "mean": None}
    return {
        "count": n,
        "min": data[0],
        "p50": quantile(data, 0.50),
        "p95": quantile(data, 0.95),
        "max": data[-1],
        "mean": math.fsum(data) / n,
    }


class MonotonicProfile:
    """Named monotonic wall-clock accumulators.

    The phase-profiler primitive behind :attr:`Telemetry.phase_seconds`,
    factored out so other layers (the service's cross-group scheduler,
    request tracing) can accumulate coarse-grained wall time without
    carrying a full :class:`Telemetry`. Accumulation is two float adds
    per sample; reading the clock stays the caller's job so disabled
    profiles cost nothing.
    """

    __slots__ = ("seconds", "calls")

    def __init__(self, names: Sequence[str]):
        self.seconds: Dict[str, float] = {name: 0.0 for name in names}
        self.calls: Dict[str, int] = {name: 0 for name in names}

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] += seconds
        self.calls[name] += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in self.seconds
        }


def _sink_count(sink, kind: str) -> int:
    counts = getattr(sink, "_kind_counts", None)
    if counts is not None:
        return counts.get(kind, 0)
    counter = getattr(sink, "count_of_kind", None)
    return counter(kind) if counter is not None else 0


class Telemetry:
    """Low-overhead observability for one (possibly resumed) run.

    Create one, pass it as ``telemetry=`` to
    :func:`~repro.macsim.simulator.build_simulation` /
    :class:`~repro.macsim.simulator.Simulator` (or ``telemetry=True``
    to :func:`~repro.analysis.runner.run_consensus`, which creates
    it), and read :meth:`snapshot` after the run. ``Simulator.run``
    finalizes the engine counters on every exit -- normal completion
    *and* engine-raised exceptions (:meth:`record_abort`).
    """

    __slots__ = ("label", "context", "f_ack", "f_prog", "f_cover",
                 "phase_seconds", "phase_calls", "events_processed",
                 "fault_injections", "topo_epochs", "wall_seconds",
                 "counters", "aborted", "error", "out_path")

    def __init__(self, label: Optional[str] = None,
                 out_path: Optional[str] = None) -> None:
        self.label = label
        #: Attachment context (algorithm/scheduler/fault-model names);
        #: the runner fills it so histograms stay attributable when
        #: snapshots from many runs are archived together.
        self.context: Dict[str, Any] = {}
        self.f_ack = array("d")
        self.f_prog = array("d")
        self.f_cover = array("d")
        self.phase_seconds = {name: 0.0 for name in PHASES}
        self.phase_calls = {name: 0 for name in PHASES}
        self.events_processed = 0
        self.fault_injections = 0
        self.topo_epochs = 0
        self.wall_seconds = 0.0
        self.counters: Dict[str, Any] = {}
        self.aborted = False
        self.error: Optional[str] = None
        #: Best-effort snapshot destination for :meth:`record_abort`
        #: (set it when a crash of the host process would otherwise
        #: lose the snapshot, e.g. ``spill_smoke --telemetry-out``).
        self.out_path = out_path

    # -- engine hooks ---------------------------------------------------
    def close_span(self, start: float, first: float, last: float,
                   ack_time: float) -> None:
        """Close one broadcast span at its ack.

        ``first``/``last`` are negative when the broadcast had no
        deliveries before its ack (a single-node component): F_ack is
        still measured, F_prog/F_cover are not defined for it.
        """
        self.f_ack.append(ack_time - start)
        if first >= 0.0:
            self.f_prog.append(first - start)
            self.f_cover.append(last - start)

    def note_events(self, n: int) -> None:
        """Accumulate processed-event counts (resumable runs call
        ``Simulator.run`` more than once)."""
        self.events_processed += n

    def phase_add(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] += seconds
        self.phase_calls[name] += 1

    def finalize(self, sim) -> None:
        """Harvest the engine/sink counters from a simulator.

        Idempotent -- recomputes the counter dict from current engine
        state, so calling it again after more events (or after
        ``record_abort``) refreshes rather than double-counts.
        """
        queue = sim._queue
        pushed = queue._next_seq
        compacted = getattr(queue, "_compacted_entries", 0)
        sink = sim.trace
        counters: Dict[str, Any] = {
            # Heap-entry accounting: one batched `bdeliver` entry
            # covers a whole fan-out, so pushes count heap entries,
            # not logical occurrences.
            "events_pushed": pushed,
            "events_popped": pushed - len(queue._heap) - compacted,
            "events_cancelled": getattr(queue, "_cancelled_total", 0),
            "heap_compactions": getattr(queue, "_compactions", 0),
            "heap_compacted_entries": compacted,
            "events_processed": self.events_processed,
            "broadcasts_opened": _sink_count(sink, "broadcast"),
            "broadcasts_acked": _sink_count(sink, "ack"),
            "deliveries": _sink_count(sink, "deliver"),
            "drops": _sink_count(sink, "drop"),
            "decisions": _sink_count(sink, "decide"),
            "crashes": _sink_count(sink, "crash"),
            "discards": _sink_count(sink, "discard"),
            "topo_records": _sink_count(sink, "topo"),
            "topo_epochs": self.topo_epochs,
            "fault_injections": self.fault_injections,
            "spans_open": len(sim._tel_spans or ()),
        }
        spilled = getattr(sink, "spilled_bytes", None)
        if spilled is not None:
            counters["sink_bytes"] = spilled()
        chunk_paths = getattr(sink, "chunk_paths", None)
        if chunk_paths is not None:
            counters["sink_flushes"] = len(chunk_paths())
        self.counters = counters

    def record_abort(self, sim, exc: BaseException) -> None:
        """Flush a partial snapshot for an engine-raised exception.

        Marks the telemetry ``aborted``, refreshes the counters from
        whatever state the engine reached, and -- when ``out_path``
        is set -- writes the snapshot to disk best-effort, so
        ``SpillBudgetError``/straggler post-mortems keep their
        evidence even if the caller never regains control.
        """
        self.aborted = True
        self.error = f"{type(exc).__name__}: {exc}"
        self.finalize(sim)
        if self.out_path:
            try:
                self.write(self.out_path)
            except OSError:  # pragma: no cover - disk-full post-mortem
                pass

    # -- reporting ------------------------------------------------------
    def span_samples(self) -> Dict[str, List[float]]:
        """The raw span samples (``f_ack``/``f_prog``/``f_cover``)."""
        return {"f_ack": list(self.f_ack), "f_prog": list(self.f_prog),
                "f_cover": list(self.f_cover)}

    def snapshot(self) -> Dict[str, Any]:
        """The full JSON-serializable telemetry snapshot."""
        phase_total = math.fsum(self.phase_seconds.values())
        return {
            "schema": TELEMETRY_SCHEMA,
            "label": self.label,
            "context": dict(self.context),
            "aborted": self.aborted,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
            "counters": dict(self.counters),
            "phases": {
                name: {"seconds": self.phase_seconds[name],
                       "calls": self.phase_calls[name]}
                for name in PHASES},
            "phase_residual_seconds": max(
                0.0, self.wall_seconds - phase_total),
            "spans": {
                "f_ack": summarize_samples(self.f_ack),
                "f_prog": summarize_samples(self.f_prog),
                "f_cover": summarize_samples(self.f_cover),
            },
        }

    def write(self, path: str) -> None:
        """Write :meth:`snapshot` as an indented JSON document."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2)
            handle.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Telemetry(events={self.events_processed}, "
                f"spans={len(self.f_ack)}, aborted={self.aborted})")


#: Re-exported so the engine's no-op fast path can hoist it without a
#: second import site.
_perf_counter = perf_counter
