"""Exception hierarchy for the abstract MAC layer simulator.

Every failure mode of the simulator is reported through a subclass of
:class:`MacSimError` so callers can distinguish configuration mistakes
from genuine model violations detected at run time.
"""

from __future__ import annotations


class MacSimError(Exception):
    """Base class for all simulator errors."""


class ConfigurationError(MacSimError):
    """The simulation was assembled inconsistently.

    Examples: a process bound to a node that is not in the graph, a
    scheduler with a non-positive ``f_ack``, or a crash plan referring to
    an unknown node.
    """


class ModelViolationError(MacSimError):
    """The abstract MAC layer contract was violated.

    Raised when a scheduler produces a plan that breaks the model --
    e.g. an ack scheduled before all deliveries, an ack later than
    ``F_ack`` after the broadcast, or a delivery to a non-neighbor.
    The engine validates every plan, so schedulers cannot silently
    deviate from the model of Section 2 of the paper.
    """


class SimulationLimitError(MacSimError):
    """A run exceeded its configured event or time budget.

    This is how non-terminating executions (which the lower bounds
    deliberately construct) are surfaced to experiment code.
    """


class ProcessError(MacSimError):
    """An algorithm implementation misused the process API.

    Examples: deciding twice, or broadcasting from a crashed process.
    """
