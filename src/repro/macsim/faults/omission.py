"""Omission faults: nodes whose sends and/or receives are dropped.

An omission-faulty node runs its program correctly but the adversary
discards some of its traffic. Two directions, per
:class:`OmissionPlan`:

* **Send omission** -- the node's broadcasts are (probabilistically)
  dropped before reaching any neighbor. The MAC layer still acks the
  broadcast: the fault sits between the MAC and the air, so the sender
  cannot detect it (the defining property of omission faults).
* **Receive omission** -- deliveries *to* the node are dropped before
  its ``on_receive`` fires.

A dropped delivery never gates another sender's ack -- the dropped
receiver is faulty, so the model's "every non-faulty neighbor receives
before the ack" contract is untouched. The engine records each drop as
a ``drop`` trace record, which the scoped invariant checker verifies
only ever involves a faulty endpoint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Optional

from ..errors import ConfigurationError
from .base import DROP, DeliverHook, FaultModel, SendHook


@dataclass(frozen=True)
class OmissionPlan:
    """Omission behaviour for one node.

    Parameters
    ----------
    node:
        Graph label of the faulty node.
    send:
        Drop the node's outgoing deliveries.
    receive:
        Drop deliveries addressed to the node.
    start:
        Faults only apply from this simulated time on (the node is
        correct before it; models a component failing mid-run).
    drop_rate:
        Probability that any individual delivery is dropped. ``1.0``
        (default) is deterministic total omission.
    seed:
        RNG seed for ``drop_rate < 1`` sampling; runs stay
        deterministic for a fixed seed and scheduler.
    """

    node: Any
    send: bool = True
    receive: bool = False
    start: float = 0.0
    drop_rate: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not (self.send or self.receive):
            raise ConfigurationError(
                f"omission plan for {self.node!r} omits nothing")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ConfigurationError(
                f"drop_rate must lie in [0, 1], got {self.drop_rate}")


class OmissionFaultModel(FaultModel):
    """Per-node send/receive omission under an adversary policy."""

    name = "omission"

    def __init__(self, plans: Iterable[OmissionPlan] = ()) -> None:
        self._by_node: Dict[Any, OmissionPlan] = {}
        for plan in plans:
            if plan.node in self._by_node:
                raise ConfigurationError(
                    f"multiple omission plans for node {plan.node!r}")
            self._by_node[plan.node] = plan
        self._rngs: Dict[Any, random.Random] = {
            node: random.Random(plan.seed)
            for node, plan in self._by_node.items()
            if plan.drop_rate < 1.0}
        self._send_nodes = {n for n, p in self._by_node.items() if p.send}
        self._recv_nodes = {n for n, p in self._by_node.items()
                            if p.receive}

    def faulty_nodes(self) -> FrozenSet[Any]:
        return frozenset(self._by_node)

    def _drops(self, plan: OmissionPlan, now: float) -> bool:
        if now < plan.start:
            return False
        if plan.drop_rate >= 1.0:
            return True
        return self._rngs[plan.node].random() < plan.drop_rate

    def send_hook(self) -> Optional[SendHook]:
        if not self._send_nodes:
            return None
        by_node = self._by_node
        send_nodes = self._send_nodes

        def on_send(sender: Any, payload: Any, neighbors: tuple,
                    now: float) -> Optional[dict]:
            if sender not in send_nodes:
                return None
            plan = by_node[sender]
            overrides = {v: DROP for v in neighbors
                         if self._drops(plan, now)}
            return overrides or None

        return on_send

    def deliver_hook(self) -> Optional[DeliverHook]:
        if not self._recv_nodes:
            return None
        by_node = self._by_node
        recv_nodes = self._recv_nodes

        def on_deliver(sender: Any, receiver: Any, payload: Any,
                       now: float) -> Any:
            if receiver in recv_nodes and self._drops(by_node[receiver],
                                                      now):
                return DROP
            return payload

        return on_deliver

    def describe(self) -> str:
        return (f"omission(send={sorted(map(str, self._send_nodes))}, "
                f"receive={sorted(map(str, self._recv_nodes))})")
