"""Crash faults as a fault model.

:class:`CrashFaultModel` is the subsystem's wrapper around the engine's
original crash machinery: it contributes
:class:`~repro.macsim.crash.CrashPlan` instances (including
mid-broadcast partial-delivery semantics via ``still_delivered``) and
intercepts nothing. Because the engine schedules and cancels crash
events exactly as it did for the legacy ``crashes=`` argument -- which
is itself normalized into this model -- a crash-only execution is
byte-identical to the pre-subsystem engine, fast path included
(``tests/test_faults.py`` pins this equivalence property).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Tuple

from ..crash import CrashPlan
from ..errors import ConfigurationError
from .base import FaultModel


class CrashFaultModel(FaultModel):
    """Fail-stop faults: each plan crashes one node once.

    Parameters
    ----------
    plans:
        The :class:`CrashPlan` instances to inject. At most one per
        node (the engine enforces this too; failing early here gives a
        clearer message).
    """

    name = "crash"

    def __init__(self, plans: Iterable[CrashPlan] = ()) -> None:
        self._plans: Tuple[CrashPlan, ...] = tuple(plans)
        seen = set()
        for plan in self._plans:
            if plan.node in seen:
                raise ConfigurationError(
                    f"multiple crash plans for node {plan.node!r}")
            seen.add(plan.node)
        self._faulty = frozenset(seen)

    @property
    def plans(self) -> Tuple[CrashPlan, ...]:
        return self._plans

    def crash_plans(self) -> Tuple[CrashPlan, ...]:
        return self._plans

    def faulty_nodes(self) -> FrozenSet[Any]:
        return self._faulty

    def describe(self) -> str:
        return f"crash(f={len(self._plans)})"
