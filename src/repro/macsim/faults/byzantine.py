"""Byzantine adversaries: corruption, equivocation, forged decisions.

Following the abstract-MAC Byzantine line of work (Tseng & Sardina
2023; Zhang & Tseng 2024), a Byzantine node is still *physically*
bound by the MAC layer -- its broadcasts are scheduled, delivered and
acked like anyone else's, and it cannot exceed the O(1)-ids message
bound -- but the adversary controls the *content* of everything it
sends:

* **Corruption** -- rewrite the payload (e.g. flip the reported value)
  before it reaches any receiver.
* **Equivocation** -- send *different* payloads to different
  neighbors within one broadcast. Plain local broadcast makes
  equivocation impossible (every neighbor hears the same frame);
  modelling it as an explicit strategy lets experiments compare the
  non-equivocating adversary (n > 3f suffices for much more) with the
  stronger equivocating one the conservative thresholds defend
  against.
* **Forged decisions** -- a Byzantine node may "decide" any value at
  any time; the correct-node-scoped checkers ignore it.

Identity forgery (Sybil attacks -- claiming another node's id inside a
payload) is *out of scope*, matching the papers' oral-messages model
with authenticated local channels and known ids.

The adversary budget ``f`` is the number of Byzantine identities; the
model refuses plans exceeding an explicit budget so experiments state
their assumptions up front.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from ..errors import ConfigurationError, ProcessError
from .base import (DROP, DeliverHook, FaultModel, SendHook, forge_payload,
                   payload_value)


class ByzantineStrategy:
    """How one Byzantine node rewrites each outgoing delivery.

    ``mutate_all`` is called once per broadcast with the full receiver
    tuple and returns the per-receiver override map; the default
    delegates to ``mutate`` per (broadcast, receiver) pair, which
    returns the payload that receiver should observe, or :data:`DROP`.
    Strategies must be deterministic given ``rng`` (a per-node seeded
    generator) so executions stay reproducible.
    """

    name = "byzantine"

    def mutate(self, sender: Any, receiver: Any, payload: Any,
               now: float, rng: random.Random) -> Any:
        return payload

    def mutate_all(self, sender: Any, receivers: tuple, payload: Any,
                   now: float, rng: random.Random) -> dict:
        return {v: self.mutate(sender, v, payload, now, rng)
                for v in receivers}

    def describe(self) -> str:
        return self.name


class SilentStrategy(ByzantineStrategy):
    """Send nothing: the Byzantine node's broadcasts all vanish."""

    name = "silent"

    def mutate(self, sender, receiver, payload, now, rng):
        return DROP


class CorruptStrategy(ByzantineStrategy):
    """Rewrite every payload's value (consistently to all receivers).

    With ``value=None`` binary payloads are flipped and anything else
    is randomized over ``{0, 1}``; an explicit ``value`` forges that
    value always. Consistent corruption is exactly what a
    non-equivocating Byzantine node can do under local broadcast.
    """

    name = "corrupt"

    def __init__(self, value: Optional[Any] = None) -> None:
        self.value = value

    def _forged_value(self, payload, rng):
        if self.value is not None:
            return self.value
        current = payload_value(payload)
        if current in (0, 1):
            return 1 - current
        return rng.randint(0, 1)

    def mutate(self, sender, receiver, payload, now, rng):
        return forge_payload(payload, self._forged_value(payload, rng))

    def mutate_all(self, sender, receivers, payload, now, rng):
        # One draw per broadcast: every receiver sees the same forgery
        # (non-equivocation), even for payloads without a binary value.
        forged = forge_payload(payload, self._forged_value(payload, rng))
        return {v: forged for v in receivers}


class EquivocateStrategy(ByzantineStrategy):
    """Send different values to different neighbors.

    ``assignment`` maps receiver label -> forged value for targeted
    split-world attacks (the E12 violation construction). Without it,
    receivers are split by their position parity in the deterministic
    sort of the broadcast's receiver tuple: even positions see 0, odd
    positions see 1. (Python's salted ``hash`` is never used -- the
    split must be identical across interpreter runs.)
    """

    name = "equivocate"

    def __init__(self, assignment: Optional[Dict[Any, Any]] = None) -> None:
        self.assignment = dict(assignment) if assignment else None

    @staticmethod
    def _sort_key(label: Any):
        return (str(type(label)), str(label), repr(label))

    def mutate_all(self, sender, receivers, payload, now, rng):
        if self.assignment is not None:
            return {v: forge_payload(payload,
                                     self.assignment.get(v, 0))
                    for v in receivers}
        ordered = sorted(receivers, key=self._sort_key)
        return {v: forge_payload(payload, index % 2)
                for index, v in enumerate(ordered)}

    def mutate(self, sender, receiver, payload, now, rng):
        # Single-receiver fallback (the model always calls
        # mutate_all); without the full tuple, split on the label's
        # own parity via a stable, unsalted key.
        if self.assignment is not None:
            value = self.assignment.get(receiver, 0)
        elif isinstance(receiver, int):
            value = receiver % 2
        else:
            value = len(repr(receiver)) % 2
        return forge_payload(payload, value)


@dataclass
class ByzantinePlan:
    """One Byzantine node: its strategy plus optional forged decision."""

    node: Any
    strategy: ByzantineStrategy = field(default_factory=CorruptStrategy)
    seed: int = 0
    #: Forge an explicit ``decide`` at this time (None: never).
    decide_at: Optional[float] = None
    decide_value: Any = None


def _forge_decision(plan: ByzantinePlan):
    """A scheduled-callback closure firing one forged decision.

    Runs as a real event, so the decide record carries exactly
    ``plan.decide_at`` and fires even when no protocol event happens
    to follow it.
    """
    def fire(sim) -> None:
        process = sim.process_at(plan.node)
        if process.crashed:
            return
        try:
            process.decide(plan.decide_value)
        except ProcessError:
            # The adversary re-deciding a different value hits the
            # irrevocability guard; the first decision stands and
            # correct nodes never see the difference.
            pass

    return fire


class ByzantineFaultModel(FaultModel):
    """Up to ``budget`` Byzantine nodes, one strategy each.

    Parameters
    ----------
    plans:
        One :class:`ByzantinePlan` per Byzantine node.
    budget:
        Optional declared bound ``f``; more plans than budget is a
        configuration error. Defaults to ``len(plans)``.
    """

    name = "byzantine"

    def __init__(self, plans: Iterable[ByzantinePlan] = (),
                 budget: Optional[int] = None) -> None:
        self._plans: List[ByzantinePlan] = list(plans)
        by_node: Dict[Any, ByzantinePlan] = {}
        for plan in self._plans:
            if plan.node in by_node:
                raise ConfigurationError(
                    f"multiple Byzantine plans for node {plan.node!r}")
            by_node[plan.node] = plan
        if budget is not None and len(self._plans) > budget:
            raise ConfigurationError(
                f"{len(self._plans)} Byzantine plans exceed the "
                f"adversary budget f={budget}")
        self._by_node = by_node
        self._rngs = {node: random.Random(plan.seed)
                      for node, plan in by_node.items()}

    @property
    def f(self) -> int:
        """The adversary's identity budget actually in use."""
        return len(self._plans)

    def faulty_nodes(self) -> FrozenSet[Any]:
        return frozenset(self._by_node)

    def lying_nodes(self) -> FrozenSet[Any]:
        return frozenset(self._by_node)

    def send_hook(self) -> Optional[SendHook]:
        if not self._by_node:
            return None
        by_node = self._by_node
        rngs = self._rngs

        def on_send(sender: Any, payload: Any, neighbors: tuple,
                    now: float) -> Optional[dict]:
            plan = by_node.get(sender)
            if plan is None:
                return None
            return plan.strategy.mutate_all(sender, neighbors, payload,
                                            now, rngs[sender])

        return on_send

    def deliver_hook(self) -> Optional[DeliverHook]:
        return None

    def attach(self, sim) -> None:
        for node in self._by_node:
            if not sim.graph.has_node(node):
                raise ConfigurationError(
                    f"Byzantine plan for unknown node {node!r}")
        for plan in self._plans:
            if plan.decide_at is not None:
                sim.schedule_callback(plan.decide_at,
                                      _forge_decision(plan))

    def describe(self) -> str:
        kinds = sorted({p.strategy.describe() for p in self._plans})
        return f"byzantine(f={self.f}, strategies={kinds})"
