"""The adversary (fault model) interface.

A :class:`FaultModel` is the engine's second adversary, orthogonal to
the message scheduler: the scheduler controls *when* things happen,
the fault model controls *which nodes misbehave and how*. The
simulator consults the model at three boundaries:

* **Broadcast boundary** -- when a faulty node starts a broadcast, the
  model may rewrite the payload per receiver (Byzantine corruption and
  equivocation) or suppress individual deliveries (send omission) via
  :meth:`FaultModel.send_hook`.
* **Delivery boundary** -- just before a payload reaches a receiver's
  ``on_receive``, the model may drop or substitute it
  (:meth:`FaultModel.deliver_hook`), e.g. receive omission.
* **Step boundary** -- via :meth:`FaultModel.attach` a model may
  register simulator observers and act whenever simulated time
  advances (e.g. forge a Byzantine node's decision).

Crash semantics stay on the engine's existing crash machinery: a model
contributes :class:`~repro.macsim.crash.CrashPlan` instances through
:meth:`FaultModel.crash_plans` and the engine schedules/cancels events
exactly as it always has, so the crash-only path is byte-identical to
the legacy ``crashes=`` API.

Hook discipline: both hooks return ``None`` from the base class, which
tells the simulator the model never intercepts that boundary -- the
engine then keeps PR 1's inlined fast path. A model that *does*
intercept returns a callable once, at construction time; the engine
caches it so the hot loop pays one attribute test, never a dispatch
through the model object.

Batched delivery scheduling (PR 3) does not change the contract: a
broadcast whose fan-out shares one timestamp is *scheduled* as a
single heap entry, but it still expands into per-receiver dispatches,
so :meth:`FaultModel.deliver_hook` fires once per (sender, receiver)
delivery and ``drop``/substitution semantics are unchanged. The
send-hook override map is likewise applied per receiver at expansion
time, and crash plans cancel batched receivers individually.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass, replace
from typing import Any, Callable, FrozenSet, Iterable, Optional

from ..crash import CrashPlan


class _Drop:
    """Sentinel: the adversary swallows this delivery."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "DROP"


#: Returned by send/deliver hooks (or stored in a send-override map) to
#: drop a delivery instead of rewriting it.
DROP = _Drop()

#: Send hook signature: (sender, payload, neighbors, now) ->
#: ``None`` (send untouched) or a mapping receiver -> forged payload
#: (or :data:`DROP`). Receivers absent from the mapping get the
#: original payload.
SendHook = Callable[[Any, Any, tuple, float], Optional[dict]]

#: Deliver hook signature: (sender, receiver, payload, now) -> payload
#: to deliver, or :data:`DROP`.
DeliverHook = Callable[[Any, Any, Any, float], Any]


class FaultModel:
    """Base class for pluggable fault models.

    The default implementation is the fault-free model: no crash plans,
    no faulty nodes, no interception at any boundary. Subclasses
    override exactly the surface they need; see
    :class:`~repro.macsim.faults.crash.CrashFaultModel`,
    :class:`~repro.macsim.faults.omission.OmissionFaultModel` and
    :class:`~repro.macsim.faults.byzantine.ByzantineFaultModel`.
    """

    #: Human-readable model family name (experiment tables).
    name = "fault-free"

    def crash_plans(self) -> Iterable[CrashPlan]:
        """Crash plans to feed the engine's crash machinery."""
        return ()

    def faulty_nodes(self) -> FrozenSet[Any]:
        """Every node this model may make deviate from its program.

        Invariant and consensus checkers scope agreement/validity to
        the complement of this set (the *correct* nodes).
        """
        return frozenset()

    def lying_nodes(self) -> FrozenSet[Any]:
        """Nodes whose *claims* (including inputs) cannot be trusted.

        Distinct from :meth:`faulty_nodes`: crash- and omission-faulty
        nodes execute their program correctly -- their inputs remain
        legitimate decision values under the standard crash-fault
        validity -- whereas a Byzantine node's input is whatever the
        adversary claims it is. Validity checking excludes only the
        lying nodes' inputs.
        """
        return frozenset()

    def send_hook(self) -> Optional[SendHook]:
        """Broadcast-boundary interceptor, or ``None`` (fast path)."""
        return None

    def deliver_hook(self) -> Optional[DeliverHook]:
        """Delivery-boundary interceptor, or ``None`` (fast path)."""
        return None

    def attach(self, sim) -> None:
        """Called once when a simulator adopts this model.

        Subclasses may register observers (step-boundary behaviour) or
        validate that their target nodes exist in ``sim.graph``.
        """

    def describe(self) -> str:
        """One-line description for experiment reports."""
        return self.name


def forge_payload(payload: Any, value: Any) -> Any:
    """Best-effort rewrite of a protocol payload's value.

    The generic entry point Byzantine strategies use to corrupt
    messages without knowing every protocol's message classes:

    * payloads exposing ``forge(value)`` (the convention of
      :mod:`repro.core.byzantine`) are asked to forge themselves;
    * frozen dataclasses with a ``value`` field are rebuilt via
      :func:`dataclasses.replace`;
    * anything else is returned unchanged -- the adversary cannot
      usefully corrupt what it cannot parse.
    """
    forge = getattr(payload, "forge", None)
    if callable(forge):
        return forge(value)
    if is_dataclass(payload) and not isinstance(payload, type):
        if any(f.name == "value" for f in fields(payload)):
            return replace(payload, value=value)
    return payload


def payload_value(payload: Any) -> Any:
    """The adversary's read of a payload's value field (or ``None``)."""
    return getattr(payload, "value", None)
