"""Pluggable fault models for the abstract MAC layer engine.

The seed reproduced Newport's PODC 2014 results under crash faults
only. This package generalizes crash injection into an *adversary
interface* the simulator consults at three hook points, opening the
fault-tolerance axis the follow-on papers explore (Tseng & Sardina
2023, Byzantine consensus in the abstract MAC layer; Zhang & Tseng
2024, the abstract MAC layer from a fault-tolerance perspective):

Hook points
-----------
* **Broadcast boundary** (``FaultModel.send_hook``): when a faulty
  node starts a broadcast, the model may rewrite the payload per
  receiver (Byzantine corruption / equivocation) or drop individual
  deliveries (send omission). The engine applies the returned
  override map when each delivery fires.
* **Delivery boundary** (``FaultModel.deliver_hook``): just before a
  receiver's ``on_receive``, the model may drop or substitute the
  payload (receive omission).
* **Step boundary** (``FaultModel.attach`` + simulator observers): the
  model may act whenever simulated time advances, e.g. forge a
  Byzantine node's decision.

Crash semantics ride on the engine's original crash machinery via
``FaultModel.crash_plans`` -- :class:`CrashFaultModel` is a thin
wrapper whose executions are byte-identical to the legacy ``crashes=``
API (which the simulator now normalizes into it).

Fast-path contract
------------------
Models report interception by returning callables from
``send_hook``/``deliver_hook`` *once at construction*; returning
``None`` (the default) tells the engine that boundary is never
intercepted, and fault-free and crash-only runs keep the PR 1 inlined
hot path bit-for-bit.

Correct-node scoping
--------------------
``FaultModel.faulty_nodes()`` names every node the model may make
deviate. The checkers in :mod:`repro.macsim.invariants` take that set
via their ``faulty=`` parameter: under Byzantine faults, agreement and
validity are only meaningful *among correct (non-Byzantine) nodes* --
a Byzantine node may "decide" anything, deliver corrupted payloads,
and skip the ack coverage rule for its own broadcasts, none of which
counts against the protocol. Omission/crash drops are additionally
audited: a ``drop`` trace record whose sender *and* receiver are both
correct is a model violation.
"""

from .base import (DROP, FaultModel, forge_payload, payload_value)
from .byzantine import (ByzantineFaultModel, ByzantinePlan,
                        ByzantineStrategy, CorruptStrategy,
                        EquivocateStrategy, SilentStrategy)
from .crash import CrashFaultModel
from .omission import OmissionFaultModel, OmissionPlan

__all__ = [
    "DROP",
    "FaultModel",
    "forge_payload",
    "payload_value",
    "CrashFaultModel",
    "OmissionFaultModel",
    "OmissionPlan",
    "ByzantineFaultModel",
    "ByzantinePlan",
    "ByzantineStrategy",
    "SilentStrategy",
    "CorruptStrategy",
    "EquivocateStrategy",
]
