"""Message schedulers for the abstract MAC layer model.

The scheduler is the adversary: all timing non-determinism in the model
flows through it. See :mod:`repro.macsim.schedulers.base` for the
contract, and the paper's Section 2 for the model definition.
"""

from .base import DeliveryPlan, Scheduler
from .synchronous import SynchronousScheduler
from .random_delay import JitteredRoundScheduler, RandomDelayScheduler
from .adversarial import (MaxDelayScheduler, PartitionScheduler,
                          SilencingScheduler, StaggeredScheduler)
from .scripted import ScriptedScheduler, ScriptedStep
from .unreliable import (AdversarialUnreliableScheduler,
                         BernoulliUnreliableScheduler)
from .fprog import EagerDeliveryScheduler

__all__ = [
    "BernoulliUnreliableScheduler",
    "AdversarialUnreliableScheduler",
    "EagerDeliveryScheduler",
    "DeliveryPlan",
    "Scheduler",
    "SynchronousScheduler",
    "RandomDelayScheduler",
    "JitteredRoundScheduler",
    "MaxDelayScheduler",
    "SilencingScheduler",
    "StaggeredScheduler",
    "PartitionScheduler",
    "ScriptedScheduler",
    "ScriptedStep",
]
