"""Randomized schedulers.

These model well-behaved but unpredictable MAC layers: each neighbor
receives a broadcast after an independent random delay, and the ack
follows the last delivery after a further random lag, all within
``F_ack``. Deterministic under a fixed seed, which the property-based
tests exploit to explore many interleavings.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from .base import DeliveryPlan, Scheduler


class RandomDelayScheduler(Scheduler):
    """Independent uniform per-neighbor delivery delays.

    Parameters
    ----------
    f_ack:
        Upper bound on broadcast completion.
    seed:
        RNG seed; runs are reproducible for a fixed seed.
    min_fraction:
        Deliveries happen no earlier than ``min_fraction * f_ack`` after
        the broadcast (defaults to 0, i.e. arbitrarily fast deliveries).
    """

    trusted = True  # plans are in-bounds by construction

    def __init__(self, f_ack: float = 1.0, seed: Optional[int] = None,
                 min_fraction: float = 0.0) -> None:
        if f_ack <= 0:
            raise ValueError("f_ack must be positive")
        if not 0.0 <= min_fraction < 1.0:
            raise ValueError("min_fraction must lie in [0, 1)")
        self.f_ack = float(f_ack)
        self.min_fraction = float(min_fraction)
        self._rng = random.Random(seed)

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        lo = self.min_fraction * self.f_ack
        deliveries = {
            v: start_time + self._rng.uniform(lo, self.f_ack)
            for v in neighbors
        }
        latest = max(deliveries.values(), default=start_time)
        ack_time = self._rng.uniform(latest, start_time + self.f_ack)
        return DeliveryPlan(deliveries=deliveries, ack_time=ack_time)

    def describe(self) -> str:
        return (f"RandomDelayScheduler(f_ack={self.f_ack}, "
                f"min_fraction={self.min_fraction})")


class JitteredRoundScheduler(Scheduler):
    """Mostly-synchronous rounds with bounded per-delivery jitter.

    Models a TDMA-like MAC: deliveries cluster near round boundaries but
    individual receptions drift by up to ``jitter * round_length``. Used
    by robustness tests to confirm the algorithms do not secretly rely
    on exact lock-step timing.
    """

    trusted = True  # plans are clamped in-bounds by construction

    def __init__(self, round_length: float = 1.0, jitter: float = 0.25,
                 seed: Optional[int] = None) -> None:
        if round_length <= 0:
            raise ValueError("round_length must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        self.round_length = float(round_length)
        self.jitter = float(jitter)
        self.f_ack = float(round_length) * (1.0 + jitter)
        self._rng = random.Random(seed)

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        base = start_time + self.round_length * (1.0 - self.jitter)
        span = self.round_length * self.jitter
        deliveries = {
            v: base + self._rng.uniform(0.0, span) for v in neighbors
        }
        latest = max(deliveries.values(), default=start_time)
        ack_time = min(latest + self._rng.uniform(0.0, span),
                       start_time + self.f_ack)
        if ack_time < latest:
            ack_time = latest
        return DeliveryPlan(deliveries=deliveries, ack_time=ack_time)

    def describe(self) -> str:
        return (f"JitteredRoundScheduler(round_length={self.round_length}, "
                f"jitter={self.jitter})")
