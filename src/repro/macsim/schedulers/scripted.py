"""A fully scripted scheduler for hand-built adversarial executions.

Lower-bound arguments construct *specific* executions: this scheduler
lets a test spell one out. Each node's successive broadcasts are matched
against a list of :class:`ScriptedStep` entries giving per-neighbor
delivery offsets and the ack offset; broadcasts beyond the script fall
back to a default scheduler.

Used by the Two-Phase pseudocode-erratum regression test and by the
Theorem 3.2 (crash) counterexample construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from .base import DeliveryPlan, Scheduler


@dataclass(frozen=True)
class ScriptedStep:
    """Relative timing for one broadcast of one node.

    ``delivery_offsets`` maps neighbor label -> offset after the
    broadcast start; neighbors not listed receive at ``ack_offset``.
    """

    delivery_offsets: Mapping[Any, float]
    ack_offset: float


class ScriptedScheduler(Scheduler):
    """Replay scripted delivery plans per (sender, broadcast index).

    Parameters
    ----------
    scripts:
        Mapping from node label to the sequence of steps for that
        node's 1st, 2nd, ... broadcasts.
    fallback:
        Scheduler used for any broadcast without a scripted step.
    f_ack:
        Model bound; must dominate every scripted ack offset.
    """

    def __init__(self, scripts: Mapping[Any, Sequence[ScriptedStep]],
                 fallback: Optional[Scheduler] = None,
                 f_ack: float = 100.0) -> None:
        self.scripts: Dict[Any, list] = {
            node: list(steps) for node, steps in scripts.items()
        }
        self.fallback = fallback
        self.f_ack = float(f_ack)
        self._progress: Dict[Any, int] = {}
        for node, steps in self.scripts.items():
            for step in steps:
                offsets = list(step.delivery_offsets.values())
                worst = max(offsets + [step.ack_offset])
                if worst > self.f_ack:
                    raise ConfigurationError(
                        f"scripted step for {node!r} exceeds f_ack="
                        f"{self.f_ack}")
                if any(o > step.ack_offset for o in offsets):
                    raise ConfigurationError(
                        f"scripted step for {node!r} delivers after its "
                        f"own ack")

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        index = self._progress.get(sender, 0)
        steps = self.scripts.get(sender, ())
        if index < len(steps):
            self._progress[sender] = index + 1
            step = steps[index]
            deliveries = {
                v: start_time + step.delivery_offsets.get(
                    v, step.ack_offset)
                for v in neighbors
            }
            return DeliveryPlan(deliveries=deliveries,
                                ack_time=start_time + step.ack_offset)
        if self.fallback is not None:
            return self.fallback.plan(sender=sender, message=message,
                                      start_time=start_time,
                                      neighbors=neighbors)
        # Default: complete promptly, one time unit after start.
        deadline = start_time + 1.0
        return DeliveryPlan(deliveries={v: deadline for v in neighbors},
                            ack_time=deadline)
