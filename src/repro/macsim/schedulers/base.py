"""Scheduler interface.

A *message scheduler* is the source of all non-determinism in the
abstract MAC layer model (Section 2 of the paper). When a node starts a
broadcast, the engine asks the scheduler for a :class:`DeliveryPlan`:
one delivery time per neighbor plus an ack time. The engine then
validates the plan against the model contract:

* every delivery time is >= the broadcast start time;
* the ack time is >= every delivery time (the ack signals that the
  broadcast *completed*);
* the ack arrives within ``f_ack`` of the start -- ``F_ack`` is the
  scheduler's (node-invisible) bound on broadcast completion.

Schedulers may be adversarial; the constructions behind the paper's
lower bounds are all implemented as schedulers in this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import ModelViolationError


@dataclass(frozen=True)
class DeliveryPlan:
    """The scheduler's decision for one broadcast.

    ``deliveries`` maps each receiving neighbor to its delivery time;
    ``ack_time`` is when the sender's ack fires.
    """

    deliveries: Mapping[Any, float]
    ack_time: float

    def validate(self, *, start_time: float, neighbors: tuple,
                 f_ack: float) -> None:
        """Raise :class:`ModelViolationError` if the plan breaks the model."""
        planned = set(self.deliveries)
        expected = set(neighbors)
        if planned != expected:
            raise ModelViolationError(
                f"plan covers {sorted(map(str, planned))} but neighbors "
                f"are {sorted(map(str, expected))}")
        for receiver, t in self.deliveries.items():
            if t < start_time:
                raise ModelViolationError(
                    f"delivery to {receiver!r} at {t} precedes broadcast "
                    f"start {start_time}")
            if t > self.ack_time:
                raise ModelViolationError(
                    f"delivery to {receiver!r} at {t} is later than the "
                    f"ack at {self.ack_time}")
        if self.ack_time < start_time:
            raise ModelViolationError("ack precedes broadcast start")
        if self.ack_time - start_time > f_ack + 1e-9:
            raise ModelViolationError(
                f"ack delay {self.ack_time - start_time} exceeds "
                f"F_ack={f_ack}")


class Scheduler:
    """Base class for message schedulers.

    Subclasses implement :meth:`plan` and expose ``f_ack``, the bound on
    broadcast completion associated with this scheduler. ``f_ack`` is a
    property of the scheduler, *not* of the algorithm: nodes never see it
    (the paper's algorithms receive no timing information).

    Schedulers may additionally control *unreliable* deliveries via
    :meth:`plan_unreliable` when the simulation runs the dual-graph
    variant of the model (some abstract MAC layer definitions include a
    second topology of links that sometimes deliver and sometimes do
    not; the paper leaves algorithms for it as an open question). The
    default drops every unreliable delivery -- the adversary's
    prerogative.
    """

    #: Maximum broadcast-to-ack delay this scheduler will produce.
    f_ack: float = 1.0

    #: Trusted schedulers produce plans that are correct by
    #: construction; the engine skips :meth:`DeliveryPlan.validate`
    #: for them (overridable via ``Simulator(validate_plans=...)``).
    #: Adversarial/scripted schedulers stay untrusted: validation is
    #: exactly the guard that keeps hand-built plans honest.
    trusted: bool = False

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        """Return the delivery plan for a broadcast started now.

        Parameters
        ----------
        sender:
            Graph label of the broadcasting node.
        message:
            The payload (schedulers may not read algorithm payloads;
            it is passed only so content-oblivious policies can log it).
        start_time:
            Global time at which the broadcast was submitted.
        neighbors:
            The sender's neighbors at the moment of broadcast, in the
            graph's deterministic order.
        """
        raise NotImplementedError

    def on_topology_change(self) -> None:
        """Invalidate topology-derived caches (e.g. pooled plans).

        Called by the engine after every applied topology epoch of a
        dynamic-topology run (:mod:`repro.macsim.dynamics`). Stateless
        schedulers need nothing; schedulers that memoize per-neighbor
        structures must drop them here.
        """

    def plan_unreliable(self, *, sender: Any, message: Any,
                        start_time: float, ack_time: float,
                        neighbors: tuple) -> Mapping[Any, float]:
        """Delivery times over *unreliable* links (subset of neighbors).

        Called only in dual-graph simulations, after :meth:`plan` fixed
        the ack. Returned deliveries must land in
        ``[start_time, ack_time]``; omitted neighbors simply do not
        receive this broadcast -- no retransmission, no ack dependency.
        """
        return {}

    def describe(self) -> str:
        """Human-readable one-line description for experiment reports."""
        return f"{type(self).__name__}(f_ack={self.f_ack})"
