"""Adversarial schedulers used by the lower-bound reproductions.

Three adversaries appear in the paper's arguments:

* **Maximum delay** (Theorem 3.10): every broadcast takes the full
  ``F_ack`` to complete, so information crosses at most one hop per
  ``F_ack`` -- the engine of the ``Omega(D * F_ack)`` bound.
* **Silencing / semi-synchronous** (Theorems 3.3 and 3.9): the network
  runs synchronously except that the deliveries *from* a designated set
  of nodes are withheld until a release time. This is legal because the
  adversary's ``F_ack`` is simply larger than the silence window -- the
  nodes cannot tell a slow bridge from an absent one.
* **Staggered delivery**: neighbors receive one at a time in a fixed
  order, the timed analogue of the FLP proof's *valid steps*; used to
  stress order-sensitive logic such as Two-Phase Consensus's witness
  sets.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from .base import DeliveryPlan, Scheduler
from .synchronous import SynchronousScheduler


class MaxDelayScheduler(Scheduler):
    """Every delivery and ack at exactly ``start + f_ack``.

    The slowest scheduler the model admits; per-hop progress is exactly
    one ``F_ack``. Used to measure worst-case decision times against the
    Theorem 3.10 bound.
    """

    def __init__(self, f_ack: float = 1.0) -> None:
        if f_ack <= 0:
            raise ValueError("f_ack must be positive")
        self.f_ack = float(f_ack)

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        deadline = start_time + self.f_ack
        return DeliveryPlan(
            deliveries={v: deadline for v in neighbors},
            ack_time=deadline,
        )


class SilencingScheduler(Scheduler):
    """Wrap another scheduler, withholding deliveries from chosen nodes.

    Broadcasts by nodes in ``silenced`` are delivered (and acked) at the
    first inner-scheduler boundary at or after ``release_time`` instead
    of on their normal schedule. All other broadcasts are passed through
    to the inner scheduler untouched.

    This is the paper's semi-synchronous scheduler when the inner
    scheduler is :class:`SynchronousScheduler`: it isolates the
    sub-networks on either side of the silenced bridge for the first
    ``t`` rounds (Sections 3.2 and 3.3).
    """

    def __init__(self, inner: Scheduler, silenced: Iterable[Any],
                 release_time: float) -> None:
        if release_time < 0:
            raise ValueError("release_time must be non-negative")
        self.inner = inner
        self.silenced = frozenset(silenced)
        self.release_time = float(release_time)
        # The adversary's F_ack must cover the silence window.
        self.f_ack = float(release_time) + 2.0 * inner.f_ack

    def _release_boundary(self, start_time: float) -> float:
        release = max(self.release_time, start_time)
        if isinstance(self.inner, SynchronousScheduler):
            boundary = self.inner.next_boundary(release - 1e-9)
            return max(boundary, self.inner.next_boundary(start_time))
        return release + self.inner.f_ack

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        if sender in self.silenced and start_time < self.release_time:
            when = self._release_boundary(start_time)
            return DeliveryPlan(
                deliveries={v: when for v in neighbors},
                ack_time=when,
            )
        return self.inner.plan(sender=sender, message=message,
                               start_time=start_time, neighbors=neighbors)

    def describe(self) -> str:
        return (f"SilencingScheduler(inner={self.inner.describe()}, "
                f"silenced={sorted(map(str, self.silenced))}, "
                f"release_time={self.release_time})")


class StaggeredScheduler(Scheduler):
    """Deliver to neighbors one at a time, in graph order.

    Neighbor ``i`` (0-based, in the graph's deterministic neighbor
    order) receives at ``start + (i + 1) * step`` and the ack follows
    the last delivery by one further ``step``. This serializes
    receptions the way the FLP valid-step model does, exposing
    order-dependent behaviour that lock-step rounds hide.
    """

    def __init__(self, step: float = 1.0, max_degree: int = 64,
                 reverse: bool = False) -> None:
        if step <= 0:
            raise ValueError("step must be positive")
        if max_degree < 1:
            raise ValueError("max_degree must be at least 1")
        self.step = float(step)
        self.max_degree = int(max_degree)
        self.reverse = bool(reverse)
        self.f_ack = float(step) * (max_degree + 1)

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        if len(neighbors) > self.max_degree:
            raise ValueError(
                f"degree {len(neighbors)} exceeds max_degree="
                f"{self.max_degree}; raise max_degree for this graph")
        ordered = tuple(reversed(neighbors)) if self.reverse else neighbors
        deliveries = {
            v: start_time + (i + 1) * self.step
            for i, v in enumerate(ordered)
        }
        last = start_time + len(ordered) * self.step
        return DeliveryPlan(deliveries=deliveries, ack_time=last + self.step)


class PartitionScheduler(Scheduler):
    """Synchronous rounds with all cross-cut deliveries delayed.

    Messages between the two sides of a vertex bipartition flow only
    after ``release_time``; each side runs lock-step internally. Unlike
    :class:`SilencingScheduler` this delays *individual deliveries*
    crossing the cut rather than whole broadcasts, which is what the
    Theorem 3.10 partition argument needs on a line network.
    """

    def __init__(self, inner: SynchronousScheduler, side_a: Iterable[Any],
                 release_time: float) -> None:
        self.inner = inner
        self.side_a = frozenset(side_a)
        self.release_time = float(release_time)
        self.f_ack = float(release_time) + 2.0 * inner.f_ack

    def _crosses(self, sender: Any, receiver: Any) -> bool:
        return (sender in self.side_a) != (receiver in self.side_a)

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        base = self.inner.plan(sender=sender, message=message,
                               start_time=start_time, neighbors=neighbors)
        if start_time >= self.release_time:
            return base
        late = self.inner.next_boundary(
            max(self.release_time, start_time) - 1e-9)
        late = max(late, self.inner.next_boundary(start_time))
        deliveries = dict(base.deliveries)
        changed = False
        for receiver in neighbors:
            if self._crosses(sender, receiver):
                deliveries[receiver] = late
                changed = True
        if not changed:
            return base
        ack_time = max(base.ack_time, late)
        return DeliveryPlan(deliveries=deliveries, ack_time=ack_time)

    def describe(self) -> str:
        return (f"PartitionScheduler(side_a={sorted(map(str, self.side_a))},"
                f" release_time={self.release_time})")
