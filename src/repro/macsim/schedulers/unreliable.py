"""Schedulers for the dual-graph (unreliable links) model variant.

Some definitions of the abstract MAC layer (Kuhn, Lynch, Newport 2011)
include a second topology of *unreliable* links that sometimes deliver
and sometimes do not. The paper under reproduction omits them -- which
strengthens its lower bounds -- and explicitly leaves upper bounds for
the dual-graph variant as an open question (Section 5). Experiment E9
explores that question empirically; these wrappers provide the
unreliable-delivery policies it sweeps:

* :class:`BernoulliUnreliableScheduler` -- each unreliable delivery
  happens independently with probability ``deliver_prob``;
* :class:`AdversarialUnreliableScheduler` -- deterministic all-or-
  nothing per phase windows (deliver everything before ``cutoff``,
  nothing after), the worst-case "links die mid-protocol" adversary.
"""

from __future__ import annotations

import random
from typing import Any, Mapping, Optional

from .base import DeliveryPlan, Scheduler


class _Wrapper(Scheduler):
    """Delegate reliable planning to an inner scheduler."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.f_ack = inner.f_ack

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        return self.inner.plan(sender=sender, message=message,
                               start_time=start_time,
                               neighbors=neighbors)


class BernoulliUnreliableScheduler(_Wrapper):
    """Deliver over each unreliable link independently w.p. ``p``.

    Delivery times are sampled uniformly in the broadcast's window,
    so unreliable receptions interleave arbitrarily with reliable
    ones (they are *not* synchronized to round boundaries).
    """

    def __init__(self, inner: Scheduler, deliver_prob: float,
                 seed: Optional[int] = None) -> None:
        super().__init__(inner)
        if not 0.0 <= deliver_prob <= 1.0:
            raise ValueError("deliver_prob must lie in [0, 1]")
        self.deliver_prob = deliver_prob
        self._rng = random.Random(seed)

    def plan_unreliable(self, *, sender: Any, message: Any,
                        start_time: float, ack_time: float,
                        neighbors: tuple) -> Mapping[Any, float]:
        out = {}
        for v in neighbors:
            if self._rng.random() < self.deliver_prob:
                out[v] = self._rng.uniform(start_time, ack_time)
        return out

    def describe(self) -> str:
        return (f"BernoulliUnreliable(p={self.deliver_prob}, "
                f"inner={self.inner.describe()})")


class AdversarialUnreliableScheduler(_Wrapper):
    """Unreliable links work until ``cutoff``, then go silent forever.

    The classic trap for algorithms that let routing state form over
    unreliable links: the links behave perfectly while trees are
    built, then vanish when the traffic that matters flows.
    """

    def __init__(self, inner: Scheduler, cutoff: float) -> None:
        super().__init__(inner)
        self.cutoff = float(cutoff)

    def plan_unreliable(self, *, sender: Any, message: Any,
                        start_time: float, ack_time: float,
                        neighbors: tuple) -> Mapping[Any, float]:
        if start_time >= self.cutoff:
            return {}
        return {v: ack_time for v in neighbors}

    def describe(self) -> str:
        return (f"AdversarialUnreliable(cutoff={self.cutoff}, "
                f"inner={self.inner.describe()})")
