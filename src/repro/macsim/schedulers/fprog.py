"""The F_prog model refinement (Section 2's deferred second parameter).

Full abstract MAC layer definitions (Kuhn, Lynch, Newport 2011) carry
*two* timing bounds: ``F_ack`` on broadcast completion and a smaller
``F_prog`` on making *progress* -- receiving some message while
neighbors are transmitting. The paper under reproduction drops
``F_prog``, noting that re-deriving its upper bounds in the two-
parameter model "remains useful future work".

:class:`EagerDeliveryScheduler` realizes the two-parameter regime the
refinement cares about: every delivery lands within ``f_prog`` of the
broadcast start while the ack may lag until ``f_ack >> f_prog`` (think
CSMA: frames go out quickly; the sender's confirmation that the medium
cycle completed takes much longer). Experiment E11 measures which of
the paper's algorithms actually speed up when ``F_prog << F_ack`` --
quantifying how much the deferred refinement could buy.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from .base import DeliveryPlan, Scheduler


class EagerDeliveryScheduler(Scheduler):
    """Deliveries within ``f_prog``; acks delayed up to ``f_ack``.

    Parameters
    ----------
    f_prog:
        Bound on delivery (progress) delay.
    f_ack:
        Bound on broadcast completion (>= ``f_prog``).
    seed:
        RNG seed; ``None`` plus ``worst_case_acks=True`` gives the
        fully deterministic slowest-ack schedule.
    worst_case_acks:
        When true, every ack arrives exactly at ``start + f_ack``
        (the adversary maximizing the ack/progress gap); otherwise
        acks are sampled uniformly in ``[last delivery, f_ack]``.
    """

    def __init__(self, f_prog: float, f_ack: float,
                 seed: Optional[int] = None,
                 worst_case_acks: bool = True) -> None:
        if f_prog <= 0 or f_ack < f_prog:
            raise ValueError("need 0 < f_prog <= f_ack")
        self.f_prog = float(f_prog)
        self.f_ack = float(f_ack)
        self.worst_case_acks = worst_case_acks
        self._rng = random.Random(seed)

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        deliveries = {
            v: start_time + self._rng.uniform(0.0, self.f_prog)
            for v in neighbors
        }
        last = max(deliveries.values(), default=start_time)
        if self.worst_case_acks:
            ack_time = start_time + self.f_ack
        else:
            ack_time = self._rng.uniform(last, start_time + self.f_ack)
        return DeliveryPlan(deliveries=deliveries, ack_time=ack_time)

    def describe(self) -> str:
        return (f"EagerDeliveryScheduler(f_prog={self.f_prog}, "
                f"f_ack={self.f_ack}, "
                f"worst_case_acks={self.worst_case_acks})")
