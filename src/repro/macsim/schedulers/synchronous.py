"""The synchronous scheduler (Section 3.2 of the paper).

The paper defines the *synchronous scheduler* as the message scheduler
that delivers messages in lock-step rounds: it delivers every in-flight
message to all recipients, then provides every sender with an ack, and
then moves on to the next batch.

Here rounds are aligned to multiples of ``round_length``. A broadcast
submitted at time ``t`` is delivered to all neighbors at the next round
boundary strictly after ``t`` and acked at that same boundary. The
engine's event ordering (deliveries before acks at equal timestamps)
realizes the paper's "deliver all, then ack all" convention, so a node's
round ``r+1`` broadcast -- issued from its ack handler at boundary
``r`` -- lands in the next batch, exactly like a synchronous round model.

With ``round_length = F_ack`` this doubles as the slowest synchronous
adversary used by the Theorem 3.10 lower bound.
"""

from __future__ import annotations

import math
from typing import Any

from .base import DeliveryPlan, Scheduler

#: Tolerance used when snapping times to round boundaries.
_EPS = 1e-9


#: Plan-pool eviction bound; the pool is cleared wholesale when full
#: (time moves forward, so old boundaries never recur anyway).
_PLAN_POOL_MAX = 1024


class SynchronousScheduler(Scheduler):
    """Lock-step round delivery.

    Plans are *pooled*: every broadcast landing in the same round gets
    ``{neighbor: boundary}`` deliveries and ``ack_time = boundary``, so
    the plan is fully determined by ``(neighbors, boundary)`` -- one
    frozen :class:`DeliveryPlan` is built per such pair and shared
    across senders and re-broadcasts (``DeliveryPlan`` is immutable and
    the engine only reads it). The scheduler is also ``trusted``:
    pooled plans are correct by construction, so the engine skips the
    O(deg) ``validate`` per broadcast.

    Parameters
    ----------
    round_length:
        Wall-clock length of one synchronous round; also the scheduler's
        ``F_ack`` (every broadcast completes within one round).
    """

    trusted = True

    def __init__(self, round_length: float = 1.0) -> None:
        if round_length <= 0:
            raise ValueError("round_length must be positive")
        self.round_length = float(round_length)
        self.f_ack = float(round_length)
        self._plan_pool: dict = {}

    def next_boundary(self, after: float) -> float:
        """The first round boundary strictly later than ``after``."""
        k = math.floor(after / self.round_length + _EPS) + 1
        return k * self.round_length

    def round_of(self, time: float) -> int:
        """The round index whose boundary is at ``time`` (1-based)."""
        return int(round(time / self.round_length))

    def plan(self, *, sender: Any, message: Any, start_time: float,
             neighbors: tuple) -> DeliveryPlan:
        boundary = self.next_boundary(start_time)
        key = (neighbors, boundary)
        plan = self._plan_pool.get(key)
        if plan is None:
            if len(self._plan_pool) >= _PLAN_POOL_MAX:
                self._plan_pool.clear()
            plan = DeliveryPlan(
                deliveries=dict.fromkeys(neighbors, boundary),
                ack_time=boundary,
            )
            self._plan_pool[key] = plan
        return plan

    def on_topology_change(self) -> None:
        """Drop pooled plans: their neighbor-tuple keys may describe
        edges that no longer exist. (Keys would differ for the new
        tuples anyway, but stale entries must not accumulate across
        the epochs of a long dynamic run.)"""
        self._plan_pool.clear()

    def describe(self) -> str:
        return f"SynchronousScheduler(round_length={self.round_length})"
