"""Post-hoc model and consensus invariant checking.

These functions replay a trace sink and verify that an execution
respected the abstract MAC layer contract (Section 2) and, where
applicable, the three consensus properties (agreement, validity,
termination). The test-suite runs them over every simulation it
performs; the hypothesis property tests run them over thousands of
randomized schedules.

Bounded-memory replay
---------------------
:func:`check_model_invariants` consumes the trace as a single forward
stream (plus the O(crashes) crash index), and *evicts* a broadcast's
audit state -- payload, delivered set, last-delivery time -- as soon as
its ack has been checked: after the ack no further event may
legitimately reference the broadcast, and at most one broadcast per
node is in flight. Peak memory is therefore O(n + crashes), not
O(trace), which is what lets a
:class:`~repro.macsim.trace.SpillSink` replay a 10^7+-event run
without materializing it. (On a malformed trace, an event arriving
after its broadcast's ack is reported as referencing an unknown
broadcast -- still a violation, just attributed differently.)

Correct-node scoping
--------------------
Under the fault-model subsystem (:mod:`repro.macsim.faults`) both
checkers accept a ``faulty`` node set. Faulty nodes are exempt from
the obligations the model only imposes on correct ones -- a Byzantine
sender's broadcast need not reach every neighbor before its ack, its
delivered payloads may differ from what it "sent", and its decisions
are ignored -- while *new* checks hold the adversary to its license:
a ``drop`` record between two correct endpoints, or a payload
mutation on a correct sender's broadcast, is still a model violation.
Agreement and validity are judged among correct nodes only, the form
in which they are provable at all under Byzantine faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional

from .errors import ModelViolationError
from .trace import TOPO_EDGE_DOWN, TOPO_EDGE_UP, TraceSink


@dataclass
class InvariantReport:
    """Result of a model-invariant check."""

    ok: bool
    violations: list = field(default_factory=list)

    def add(self, message: str) -> None:
        self.ok = False
        self.violations.append(message)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ModelViolationError("; ".join(self.violations[:10]))


def check_model_invariants(graph, trace: TraceSink,
                           f_ack: Optional[float] = None,
                           unreliable_graph=None,
                           faulty: FrozenSet[Any] = frozenset()
                           ) -> InvariantReport:
    """Verify the MAC-layer contract over a completed trace.

    Checks, per broadcast:

    * deliveries only to graph neighbors of the sender (or unreliable
      neighbors, in dual-graph runs);
    * at most one delivery per (broadcast, receiver);
    * the ack (if present) follows every delivery of that broadcast;
    * the ack arrives within ``f_ack`` of the broadcast (if given);
    * every non-crashed *reliable* neighbor received the message
      before the ack (unreliable neighbors never gate the ack);
    * no activity by a node after its crash;
    * with a ``faulty`` set (fault-model runs): delivered payloads
      match the broadcast payload unless the sender is faulty, and
      ``drop`` records only ever involve a faulty endpoint. The ack
      coverage rule is not enforced for faulty senders or faulty
      neighbors (their deliveries may be legitimately dropped).

    Dynamic-topology runs (:mod:`repro.macsim.dynamics`) are audited
    against the graph **as of each broadcast**: ``topo`` records in
    the stream update a live adjacency, each broadcast snapshots its
    sender's neighbor set at that moment, and the delivery-target and
    ack-coverage checks use the snapshot -- a delivery scheduled over
    an edge that later churned away is legitimate; one over an edge
    absent at broadcast time is a violation. Traces without ``topo``
    records take the original static-graph path untouched.

    ``trace`` is any replayable :class:`~repro.macsim.trace.TraceSink`
    (or a plain iterable of records); the replay runs in O(n + crashes)
    memory -- see the module docstring (per-broadcast neighbor
    snapshots add O(deg) per in-flight broadcast on dynamic runs,
    evicted at ack like the rest).

    Columnar traces (:class:`~repro.macsim.columnar.ColumnarSink`)
    take a vectorized fast path when numpy is available: the same
    audit expressed as whole-column passes, ~an order of magnitude
    faster, with O(broadcasts) memory. The fast path covers the
    static-topology non-Byzantine shapes and silently falls back to
    this reference loop on anything else; verdict equivalence between
    the two is pinned by the test-suite.
    """
    if getattr(trace, "columnar", False) and not faulty \
            and unreliable_graph is None:
        from .columnar import try_vectorized_invariants
        fast_report = try_vectorized_invariants(graph, trace, f_ack)
        if fast_report is not None:
            return fast_report
    report = InvariantReport(ok=True)
    starts: dict[int, tuple[float, Any]] = {}
    payloads: dict[int, Any] = {}
    delivered: dict[int, set] = {}
    delivery_last: dict[int, float] = {}
    crash_time: dict[Any, float] = {}
    # Dynamic-topology state: a live adjacency built lazily at the
    # first topo record, plus the per-broadcast snapshot of the
    # sender's neighbors as of the broadcast (None => initial graph).
    adjacency: Optional[dict] = None
    neighbors_at_start: dict[int, frozenset] = {}

    # Crash times come from the sink's essential-kind index when it
    # has one (every sink does). A plain iterable is materialized
    # once so the pre-scan does not exhaust a generator before the
    # main replay pass.
    of_kind = getattr(trace, "of_kind", None)
    if of_kind is not None:
        crash_records = of_kind("crash")
    else:
        trace = list(trace)
        crash_records = [r for r in trace if r.kind == "crash"]
    for rec in crash_records:
        crash_time.setdefault(rec.node, rec.time)

    for rec in trace:
        if rec.kind == "topo":
            if rec.broadcast_id not in (TOPO_EDGE_UP, TOPO_EDGE_DOWN):
                continue  # node leave/join markers carry no edges
            if adjacency is None:
                adjacency = {v: set(graph.neighbors(v))
                             for v in graph.nodes}
            us = adjacency.setdefault(rec.node, set())
            vs = adjacency.setdefault(rec.peer, set())
            if rec.broadcast_id == TOPO_EDGE_UP:
                us.add(rec.peer)
                vs.add(rec.node)
            else:
                us.discard(rec.peer)
                vs.discard(rec.node)
        elif rec.kind == "broadcast":
            starts[rec.broadcast_id] = (rec.time, rec.node)
            payloads[rec.broadcast_id] = rec.payload
            delivered[rec.broadcast_id] = set()
            if adjacency is not None:
                neighbors_at_start[rec.broadcast_id] = frozenset(
                    adjacency.get(rec.node, ()))
            if rec.node in crash_time and rec.time > crash_time[rec.node]:
                report.add(f"crashed node {rec.node!r} broadcast at "
                           f"{rec.time}")
        elif rec.kind == "drop":
            bid = rec.broadcast_id
            if bid not in starts:
                report.add(f"drop for unknown or closed broadcast {bid}")
                continue
            _, sender = starts[bid]
            if sender not in faulty and rec.node not in faulty:
                report.add(
                    f"broadcast {bid} dropped between correct nodes "
                    f"{sender!r} -> {rec.node!r}")
            delivered[bid].add(rec.node)
        elif rec.kind == "deliver":
            bid = rec.broadcast_id
            if bid not in starts:
                report.add(f"delivery for unknown or closed (already acked) broadcast {bid}")
                continue
            start_time, sender = starts[bid]
            snapshot = neighbors_at_start.get(bid)
            if snapshot is not None:
                reachable = rec.node in snapshot
            else:
                reachable = graph.has_edge(sender, rec.node)
            reachable = reachable or (
                unreliable_graph is not None
                and unreliable_graph.has_edge(sender, rec.node))
            if not reachable:
                suffix = (" (as of the broadcast)"
                          if snapshot is not None else "")
                report.add(f"broadcast {bid} delivered to non-neighbor "
                           f"{rec.node!r} of {sender!r}{suffix}")
            if rec.node in delivered[bid]:
                report.add(f"duplicate delivery of broadcast {bid} to "
                           f"{rec.node!r}")
            if rec.time < start_time:
                report.add(f"delivery of broadcast {bid} precedes its "
                           f"start")
            if rec.node in crash_time and rec.time > crash_time[rec.node]:
                report.add(f"delivery to crashed node {rec.node!r}")
            if sender not in faulty and rec.payload != payloads.get(bid):
                report.add(
                    f"broadcast {bid} of correct node {sender!r} "
                    f"delivered mutated payload to {rec.node!r}")
            delivered[bid].add(rec.node)
            delivery_last[bid] = max(delivery_last.get(bid, rec.time),
                                     rec.time)
        elif rec.kind == "ack":
            bid = rec.broadcast_id
            if bid not in starts:
                report.add(f"ack for unknown or closed broadcast {bid}")
                continue
            start_time, sender = starts[bid]
            if rec.node != sender:
                report.add(f"ack for broadcast {bid} went to {rec.node!r} "
                           f"instead of sender {sender!r}")
            if bid in delivery_last and rec.time < delivery_last[bid] - 1e-9:
                report.add(f"ack for broadcast {bid} precedes its last "
                           f"delivery")
            if f_ack is not None and rec.time - start_time > f_ack + 1e-6:
                report.add(f"ack for broadcast {bid} took "
                           f"{rec.time - start_time} > F_ack={f_ack}")
            if sender not in faulty:
                # (A faulty sender's broadcast may be partially or
                # wholly suppressed; its ack gates nothing.) The
                # coverage obligation is the sender's neighbor set as
                # of the broadcast, not as of the ack.
                snapshot = neighbors_at_start.get(bid)
                obligated = (snapshot if snapshot is not None
                             else graph.neighbors(sender))
                for neighbor in obligated:
                    neighbor_crashed = (
                        neighbor in crash_time
                        and crash_time[neighbor] <= rec.time)
                    if (neighbor not in delivered[bid]
                            and not neighbor_crashed
                            and neighbor not in faulty):
                        report.add(
                            f"ack for broadcast {bid} of {sender!r} "
                            f"before non-faulty neighbor {neighbor!r} "
                            f"received")
            # The ack closes the broadcast: evict its audit state so
            # replay memory stays O(in-flight), not O(trace).
            del starts[bid]
            del delivered[bid]
            payloads.pop(bid, None)
            delivery_last.pop(bid, None)
            neighbors_at_start.pop(bid, None)
    return report


@dataclass
class ConsensusReport:
    """Result of checking the three consensus properties."""

    agreement: bool
    validity: bool
    termination: bool
    decisions: dict
    undecided: list

    @property
    def ok(self) -> bool:
        return self.agreement and self.validity and self.termination


def check_consensus(trace: TraceSink, initial_values: dict,
                    alive_nodes: Optional[list] = None,
                    faulty: FrozenSet[Any] = frozenset(),
                    untrusted: Optional[FrozenSet[Any]] = None
                    ) -> ConsensusReport:
    """Check agreement/validity/termination against a trace.

    ``initial_values`` maps node label -> consensus input. Termination
    is judged over ``alive_nodes`` (defaults to every node that did not
    crash in the trace and is not ``faulty``).

    With a non-empty ``faulty`` set, agreement and termination are
    scoped to *correct* nodes: faulty decisions are ignored.
    ``untrusted`` additionally names the nodes whose *inputs* do not
    validate a decision; it defaults to ``faulty`` (the Byzantine
    reading). Crash/omission callers pass
    ``untrusted=fault_model.lying_nodes()`` (empty for those models),
    because a crashed node executes its program correctly and its
    input remains a legitimate decision value.
    """
    if untrusted is None:
        untrusted = faulty
    decisions = trace.decisions()
    crashed = trace.crashed_nodes()
    if faulty:
        decisions = {node: value for node, value in decisions.items()
                     if node not in faulty}
    if alive_nodes is None:
        alive_nodes = [v for v in initial_values
                       if v not in crashed and v not in faulty]

    values = set(decisions.values())
    agreement = len(values) <= 1
    trusted_inputs = {value for node, value in initial_values.items()
                      if node not in untrusted}
    validity = all(v in trusted_inputs for v in values)
    undecided = [v for v in alive_nodes if v not in decisions]
    termination = not undecided
    return ConsensusReport(
        agreement=agreement,
        validity=validity,
        termination=termination,
        decisions=decisions,
        undecided=undecided,
    )
