"""Named-builder registries behind the declarative Scenario API.

Every axis of a consensus run -- which algorithm, which topology,
which scheduler, which fault model -- used to be spelled as a string
table somewhere: the CLI's ``ALGORITHMS`` tuple, ``parse_topology``'s
if-chain, each experiment driver's bespoke factory wiring. This module
replaces those tables with extensible :class:`Registry` instances that
the :mod:`repro.scenario` specs resolve through, so a new algorithm or
topology registered once is immediately available to the CLI, the
experiment drivers, sweep grids and trace replay alike::

    from repro import register_topology
    from repro.topology import Graph

    @register_topology("wheel")
    def wheel(n: int = 8) -> Graph:
        rim = [(i, (i + 1) % (n - 1)) for i in range(n - 1)]
        return Graph(rim + [(n - 1, i) for i in range(n - 1)])

    # now valid: TopologySpec("wheel", n=12), ``--topology wheel:12``

Builder contracts (enforced by convention, resolved by
:mod:`repro.scenario`):

* **topology** -- ``builder(**params) -> Graph``.
* **scheduler** -- ``builder(**params) -> Scheduler``; a ``seed``
  parameter, when present and not pinned by the spec, receives the
  scenario's seed.
* **algorithm** -- ``builder(graph, seed, **params) -> factory`` where
  ``factory(label, value)`` builds one process.
* **fault model** -- ``builder(graph, seed, **params) -> FaultModel``.
* **overlay** -- ``builder(graph, **params) -> Graph`` (the unreliable
  dual-graph edge set).
* **dynamics** -- ``builder(graph, seed, **params) ->
  TopologyDynamics`` (time-varying topology models; see
  :mod:`repro.macsim.dynamics`).
* **values** -- ``builder(graph) -> {label: value}`` initial values.

The built-in entries live at the bottom of :mod:`repro.scenario`
(which imports this module first, then registers the catalogue);
``repro/__init__`` imports it eagerly, so the registries are always
populated by the time user code can query them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class UnknownNameError(LookupError):
    """A name was not found in a registry.

    The message always lists what *is* registered, so CLI users and
    scenario authors see the live catalogue, not a stale hardcoded
    hint.
    """

    def __init__(self, kind: str, name: str, known: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.known = known
        super().__init__(
            f"unknown {kind} {name!r}; registered: "
            + (", ".join(known) if known else "(none)"))


class Registry:
    """A name -> builder table for one scenario axis."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._builders: Dict[str, Callable] = {}
        self._docs: Dict[str, str] = {}

    def register(self, name: str,
                 builder: Optional[Callable] = None) -> Callable:
        """Register ``builder`` under ``name``; usable as a decorator.

        Re-registering a name replaces the previous builder (so a user
        module may shadow a built-in deliberately).
        """
        def _decorate(fn: Callable) -> Callable:
            self._builders[str(name)] = fn
            doc = (fn.__doc__ or "").strip().splitlines()
            self._docs[str(name)] = doc[0] if doc else ""
            return fn

        if builder is not None:
            return _decorate(builder)
        return _decorate

    def get(self, name: str) -> Callable:
        """The builder for ``name``; raises :class:`UnknownNameError`."""
        try:
            return self._builders[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._builders)

    def describe(self, name: str) -> str:
        """The builder's one-line docstring summary (may be empty)."""
        return self._docs.get(name, "")

    def __contains__(self, name: str) -> bool:
        return name in self._builders

    def __repr__(self) -> str:
        return f"Registry({self.kind}, {len(self._builders)} entries)"


#: The five public scenario axes...
ALGORITHMS = Registry("algorithm")
TOPOLOGIES = Registry("topology")
SCHEDULERS = Registry("scheduler")
FAULT_MODELS = Registry("fault model")
DYNAMICS = Registry("dynamics")
#: ...plus the two auxiliary ones (dual-graph overlays and initial
#: value assignments).
OVERLAYS = Registry("overlay")
VALUES = Registry("values")

#: Decorator aliases -- ``@register_topology("wheel")`` etc.
register_algorithm = ALGORITHMS.register
register_topology = TOPOLOGIES.register
register_scheduler = SCHEDULERS.register
register_fault_model = FAULT_MODELS.register
register_dynamics = DYNAMICS.register
register_overlay = OVERLAYS.register
register_values = VALUES.register
