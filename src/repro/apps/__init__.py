"""Applications built on the consensus library.

The paper motivates consensus as the building block for reliable
distributed systems; this package provides the canonical one -- a
replicated command log (multi-decree wPAXOS).
"""

from .replicated_log import (LogMessage, ReplicatedLogNode, SlotDecide,
                             SlotMessage)

__all__ = [
    "ReplicatedLogNode",
    "LogMessage",
    "SlotMessage",
    "SlotDecide",
]
