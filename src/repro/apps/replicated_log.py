"""A replicated command log on top of wPAXOS (multi-decree).

The paper's introduction motivates consensus as "a fundamental
building block for developing reliable distributed systems"; the
canonical such system is a replicated log / state machine. This module
builds one over the abstract MAC layer by running a *sequence* of
wPAXOS decrees -- one per log slot -- multiplexed over the same
support services:

* **Shared services.** Leader election and the routing trees are
  slot-independent: one election, one set of trees, reused by every
  decree (this is exactly why Multi-Paxos amortizes well).
* **Per-slot PAXOS.** Each slot has its own proposer/acceptor pair
  (:class:`~repro.core.wpaxos.proposer.Proposer`,
  :class:`~repro.core.wpaxos.acceptor.AcceptorState`) and aggregating
  response queue; all slot messages are wrapped in
  :class:`SlotMessage` envelopes.
* **Sequential commitment.** A node participates in slot ``k + 1``
  once slot ``k`` is decided locally, and the leader proposes its next
  pending command for the new slot immediately. Decided slots flood
  ``(slot, value)`` announcements so trailing nodes catch up.

Nodes *decide* (in the consensus sense) when their whole log -- all
``log_length`` slots -- is committed; the decision value is the log
tuple itself, so the standard agreement checker verifies that every
replica ends with the identical command sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.base import ConsensusProcess
from ..core.wpaxos.acceptor import AcceptorState, ResponseQueue
from ..core.wpaxos.config import WPaxosConfig
from ..core.wpaxos.messages import (ChangePart, LeaderPart, PREPARE,
                                    ProposerPart, ResponsePart,
                                    SearchPart, proposition_key)
from ..core.wpaxos.proposer import Proposer
from ..core.wpaxos.services import (ChangeService,
                                    LeaderElectionService, TreeService)


@dataclass(frozen=True)
class SlotMessage:
    """A per-slot PAXOS part (proposer flood or routed response)."""

    slot: int
    part: object

    def id_footprint(self) -> int:
        return self.part.id_footprint()


@dataclass(frozen=True)
class SlotDecide:
    """Flooded announcement that ``slot`` committed ``value``."""

    slot: int
    value: Any

    def id_footprint(self) -> int:
        return 0


@dataclass(frozen=True)
class LogMessage:
    """One physical broadcast of the replicated-log protocol."""

    parts: Tuple[object, ...]

    def id_footprint(self) -> int:
        return sum(part.id_footprint() for part in self.parts)

    def __iter__(self):
        return iter(self.parts)


class _Slot:
    """Per-slot PAXOS state at one node."""

    def __init__(self, node: "ReplicatedLogNode", slot: int,
                 command: Any) -> None:
        self.slot = slot
        self.acceptor = AcceptorState(node.uid)
        self.response_queue = ResponseQueue(
            aggregation=node.config.aggregation)
        self.proposer = Proposer(
            node.uid, command, node.n, node.config,
            is_leader=lambda: node.leader_svc.leader == node.uid,
            flood=lambda part: node._handle_slot_proposer(slot, part),
            on_chosen=lambda value: node._on_slot_chosen(slot, value))
        self.seen_proposer_parts: set = set()
        self.flood_queue: List[ProposerPart] = []
        self.largest_from_leader = None


class ReplicatedLogNode(ConsensusProcess):
    """One replica of the wPAXOS-backed replicated log.

    Parameters
    ----------
    uid / n / config:
        As for :class:`~repro.core.wpaxos.node.WPaxosNode`.
    commands:
        This node's client workload: commands it wants committed.
        The leader proposes its own pending commands; committed slots
        may therefore carry any participant's commands (validity over
        the union of workloads).
    log_length:
        Number of slots to commit before the node "decides" on the
        full log.
    """

    def __init__(self, uid: int, n: int, commands: Sequence[Any],
                 log_length: int,
                 config: Optional[WPaxosConfig] = None) -> None:
        super().__init__(uid=uid, initial_value=tuple(commands),
                         allow_arbitrary_values=True)
        if log_length < 1:
            raise ValueError("log_length must be positive")
        self.n = n
        self.config = config or WPaxosConfig()
        self.log_length = log_length
        self.commands = list(commands)

        self.leader_svc = LeaderElectionService(
            uid, on_leader_change=self._on_leader_change)
        self.tree_svc = TreeService(
            uid, current_leader=lambda: self.leader_svc.leader,
            on_tree_change=lambda root: self._note_possible_change(),
            prioritize_leader=self.config.tree_priority)
        self.change_svc = ChangeService(
            uid, clock=self.now,
            is_leader=lambda: self.leader_svc.leader == uid,
            generate_proposal=self._generate_current)

        self.log: Dict[int, Any] = {}
        self.current_slot = 0
        self.decide_queue: List[SlotDecide] = []
        self._announced_slots: set = set()
        self._slots: Dict[int, _Slot] = {}
        self._last_change_state = None

    # ------------------------------------------------------------------
    def _slot(self, index: int) -> _Slot:
        if index not in self._slots:
            command = (self.commands[index % len(self.commands)]
                       if self.commands else ("noop", self.uid, index))
            self._slots[index] = _Slot(self, index, command)
        return self._slots[index]

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._note_possible_change(force=True)
        self._pump()

    def on_receive(self, message: Any) -> None:
        if not isinstance(message, LogMessage):
            return
        for part in message:
            if isinstance(part, LeaderPart):
                self.leader_svc.on_receive(part)
            elif isinstance(part, ChangePart):
                self.change_svc.on_receive(part)
            elif isinstance(part, SearchPart):
                self.tree_svc.on_receive(part)
            elif isinstance(part, SlotDecide):
                self._commit(part.slot, part.value)
            elif isinstance(part, SlotMessage):
                self._handle_slot_part(part.slot, part.part)
        self._note_possible_change()
        self._pump()

    def on_ack(self) -> None:
        self._pump()

    # ------------------------------------------------------------------
    # Slot PAXOS plumbing
    # ------------------------------------------------------------------
    def _handle_slot_part(self, slot_index: int, part: object) -> None:
        if slot_index in self.log:
            return  # already committed; late traffic is harmless
        slot = self._slot(slot_index)
        if isinstance(part, ProposerPart):
            self._handle_slot_proposer(slot_index, part)
        elif isinstance(part, ResponsePart):
            if part.dest != self.uid:
                return
            if part.proposer == self.uid:
                counted = slot.proposer.on_response(part)
                monitor = self.config.monitor
                if counted and monitor is not None:
                    monitor.note_counted(
                        (slot_index,) + proposition_key(
                            part.proposer, part.kind, part.number),
                        counted)
            else:
                slot.response_queue.add_part(part)

    def _handle_slot_proposer(self, slot_index: int,
                              part: ProposerPart) -> None:
        slot = self._slot(slot_index)
        key = (part.kind, part.number)
        if key in slot.seen_proposer_parts:
            return
        slot.seen_proposer_parts.add(key)
        slot.proposer.observe_number(part.number)

        proposer_id = part.number[1]
        if proposer_id == self.leader_svc.leader:
            if (slot.largest_from_leader is None
                    or part.number > slot.largest_from_leader):
                slot.largest_from_leader = part.number
                slot.flood_queue = [
                    p for p in slot.flood_queue
                    if p.number >= slot.largest_from_leader]
            if part.number >= slot.largest_from_leader:
                slot.flood_queue.append(part)

        if part.kind == PREPARE:
            seed = slot.acceptor.on_prepare(part.number, proposer_id)
        else:
            seed = slot.acceptor.on_propose(part.number, part.value,
                                            proposer_id)
        monitor = self.config.monitor
        if monitor is not None and seed.affirmative:
            monitor.note_generated(
                (slot_index,) + proposition_key(proposer_id, seed.kind,
                                                seed.number))
        if proposer_id == self.uid:
            response = ResponsePart(dest=self.uid, proposer=self.uid,
                                    kind=seed.kind, number=seed.number,
                                    count=1, prior=seed.prior,
                                    committed=seed.committed)
            counted = slot.proposer.on_response(response)
            if counted and monitor is not None:
                monitor.note_counted(
                    (slot_index,) + proposition_key(
                        self.uid, seed.kind, seed.number), counted)
        else:
            slot.response_queue.add_seed(seed)

    # ------------------------------------------------------------------
    # Commitment and decision
    # ------------------------------------------------------------------
    def _on_slot_chosen(self, slot_index: int, value: Any) -> None:
        self._commit(slot_index, value)

    def _commit(self, slot_index: int, value: Any) -> None:
        if slot_index in self.log:
            return
        self.log[slot_index] = value
        if slot_index not in self._announced_slots:
            self._announced_slots.add(slot_index)
            self.decide_queue.append(SlotDecide(slot=slot_index,
                                                value=value))
        self._slots.pop(slot_index, None)
        while self.current_slot in self.log:
            self.current_slot += 1
        if (not self.decided
                and all(i in self.log
                        for i in range(self.log_length))):
            self.decide(tuple(self.log[i]
                              for i in range(self.log_length)))
        elif self.leader_svc.leader == self.uid:
            self._generate_current()

    def _generate_current(self) -> None:
        if self.decided or self.current_slot >= self.log_length:
            return
        self._slot(self.current_slot).proposer.generate_new_proposal()

    # ------------------------------------------------------------------
    # Services glue
    # ------------------------------------------------------------------
    def _on_leader_change(self, old: int, new: int) -> None:
        if old == self.uid:
            for slot in self._slots.values():
                slot.proposer.abdicate()
        self._note_possible_change()

    def _note_possible_change(self, force: bool = False) -> None:
        leader = self.leader_svc.leader
        state = (leader, self.tree_svc.distance_to(leader))
        if force or state != self._last_change_state:
            self._last_change_state = state
            self.change_svc.on_local_change()

    def _parent_of(self, proposer: int) -> Optional[int]:
        parent = self.tree_svc.parent.get(proposer)
        if parent == self.uid:
            return None
        return parent

    # ------------------------------------------------------------------
    # Broadcast multiplexer
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self.crashed or self.ack_pending:
            return
        parts: List[object] = []
        if self.decide_queue:
            parts.append(self.decide_queue.pop(0))
        if not self.decided:
            lead = self.leader_svc.pop()
            if lead is not None:
                parts.append(lead)
            change = self.change_svc.pop()
            if change is not None:
                parts.append(change)
            search = self.tree_svc.pop()
            if search is not None:
                parts.append(search)
            slot = self._slots.get(self.current_slot)
            if slot is not None:
                if slot.flood_queue:
                    parts.append(SlotMessage(
                        slot=self.current_slot,
                        part=slot.flood_queue.pop(0)))
                response = slot.response_queue.pop_route(
                    self._parent_of)
                if response is not None:
                    parts.append(SlotMessage(slot=self.current_slot,
                                             part=response))
        if parts:
            self.broadcast(LogMessage(parts=tuple(parts)))

    def state_fingerprint(self) -> Tuple:
        return (self.leader_svc.leader, self.current_slot,
                tuple(sorted(self.log.items())), self.decided)
