"""Parameter sweep helpers.

Thin declarative layer over :func:`repro.analysis.runner.run_consensus`
for producing the (x, y) series the experiments fit lines through.
Keeping sweeps in one place makes the E-drivers short and gives users
a ready-made tool for their own measurements.

Two runners share one point-execution helper:

* :func:`sweep` -- sequential, one consensus execution per key.
* :func:`parallel_sweep` -- same contract and *identical results*, but
  sweep points fan out over ``multiprocessing`` workers. Results come
  back in the order of ``xs`` regardless of worker completion order,
  and each point is itself deterministic (fixed scheduler/seed), so a
  parallel sweep is byte-for-byte equivalent to the sequential one.

Structured sweep keys
---------------------
A sweep key may be a plain scalar (the classic ``x``) or any tuple --
``(x, seed)``, ``((n, f), seed)`` -- and ``build(key)`` receives it
verbatim. This is how seed-replicated series (one execution per
``(x, seed)`` pair, the shape of E1/E9/E10) fan out across workers
instead of looping seeds sequentially inside each x. The point's
scalar axis is the first numeric leaf of the key, unless ``build``
returns an explicit ``x`` entry; :meth:`SweepResult.by_x` regroups the
replicas for aggregation.

``parallel_sweep`` uses the ``fork`` start method so the (typically
unpicklable) ``build`` closures never cross a process boundary: workers
inherit them via fork and receive only point indexes; only the
:class:`SweepPoint` results (plain dataclasses of floats/strings) are
pickled back. On platforms without ``fork``, or inside daemon workers,
it transparently degrades to the sequential path.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..macsim.trace import TraceLevel
from .metrics import RunMetrics
from .runner import ProcessFactory, run_consensus
from .stats import linear_fit


@dataclass(slots=True)
class SweepPoint:
    """One measured point of a sweep."""

    x: float
    metrics: RunMetrics
    #: The full sweep key this point was built from (equal to ``x``
    #: for scalar sweeps; the ``(x, seed)``-style tuple otherwise).
    key: Any = None


@dataclass
class SweepResult:
    """A complete sweep with fitting helpers."""

    name: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def ys(self, attribute: str = "last_decision") -> List[float]:
        return [getattr(p.metrics, attribute) for p in self.points]

    def all_correct(self) -> bool:
        return all(p.metrics.correct for p in self.points)

    def by_x(self) -> Dict[float, List[SweepPoint]]:
        """Points regrouped by scalar axis, in first-seen x order.

        The aggregation view for seed-replicated sweeps: every
        ``(x, seed)`` replica of one x lands in one bucket.
        """
        groups: Dict[float, List[SweepPoint]] = {}
        for point in self.points:
            groups.setdefault(point.x, []).append(point)
        return groups

    def fit(self, attribute: str = "last_decision"):
        """Least-squares (slope, intercept) of ``attribute`` vs x."""
        return linear_fit(self.xs, self.ys(attribute))

    def rows(self, attribute: str = "last_decision") -> List[list]:
        """Table rows: one per point (x, correct, value)."""
        return [[p.x, p.metrics.correct,
                 getattr(p.metrics, attribute)] for p in self.points]


def _scalar_axis(key: Any) -> float:
    """The plotting axis of a sweep key: its first numeric leaf."""
    while isinstance(key, tuple):
        if not key:
            raise ValueError("empty tuple sweep key")
        key = key[0]
    if isinstance(key, bool) or not isinstance(key, (int, float)):
        raise ValueError(
            f"cannot derive a scalar axis from sweep key leaf {key!r}; "
            f"have build() return an explicit 'x' entry")
    return float(key)


def _run_point(name: str, key: Any,
               build: Callable[[Any], Dict[str, Any]],
               max_events: int, max_time: Optional[float],
               trace_level: "TraceLevel | str") -> SweepPoint:
    """Execute one sweep point; shared by both runners."""
    spec = dict(build(key))
    graph = spec.pop("graph")
    scheduler = spec.pop("scheduler")
    factory: ProcessFactory = spec.pop("factory")
    topology = spec.pop("topology", f"{name}@{key}")
    x = spec.pop("x", None)
    if x is None:
        x = _scalar_axis(key)
    metrics = run_consensus(
        algorithm=name, topology=topology, graph=graph,
        scheduler=scheduler, factory=factory,
        max_events=max_events, max_time=max_time,
        trace_level=trace_level, **spec)
    return SweepPoint(x=float(x), metrics=metrics, key=key)


def sweep(name: str, xs: Sequence[Any],
          build: Callable[[Any], Dict[str, Any]],
          *, max_events: int = 20_000_000,
          max_time: Optional[float] = None,
          trace_level: "TraceLevel | str" = TraceLevel.FULL) -> SweepResult:
    """Run one consensus execution per key in ``xs`` and collect metrics.

    ``build(key)`` returns the keyword arguments for
    :func:`run_consensus` at that sweep point: ``graph``,
    ``scheduler``, ``factory`` and optionally ``initial_values`` /
    ``topology`` / ``crashes`` / ``unreliable_graph`` /
    ``check_invariants`` / ``probe``, plus ``x`` to pin the point's
    scalar axis when the key alone does not determine it.

    Example::

        result = sweep(
            "time vs D", [4, 9, 19],
            lambda d: dict(
                graph=line(int(d) + 1),
                scheduler=SynchronousScheduler(1.0),
                factory=make_wpaxos_factory(line(int(d) + 1))))
        slope, intercept = result.fit()

    Seed-replicated series pass ``(x, seed)`` tuples::

        result = sweep(
            "time vs p", [(p, s) for p in probs for s in range(5)],
            lambda key: build_for(prob=key[0], seed=key[1]))
        for p, replicas in result.by_x().items(): ...
    """
    result = SweepResult(name=name)
    for x in xs:
        result.points.append(_run_point(name, x, build, max_events,
                                        max_time, trace_level))
    return result


# Sweep specification the forked workers inherit; indexed by
# _sweep_worker. Only valid between fork and pool teardown.
_FORK_STATE: Optional[tuple] = None


def _sweep_worker(index: int) -> SweepPoint:
    name, xs, build, max_events, max_time, trace_level = _FORK_STATE
    return _run_point(name, xs[index], build, max_events, max_time,
                      trace_level)


def default_workers() -> int:
    """Worker count for :func:`parallel_sweep` (half the cores, >=1)."""
    return max(1, (os.cpu_count() or 2) // 2)


def parallel_sweep(name: str, xs: Sequence[Any],
                   build: Callable[[Any], Dict[str, Any]],
                   *, max_events: int = 20_000_000,
                   max_time: Optional[float] = None,
                   trace_level: "TraceLevel | str" = TraceLevel.FULL,
                   workers: Optional[int] = None) -> SweepResult:
    """Like :func:`sweep`, but fan sweep points out over processes.

    Results are deterministic and identical to :func:`sweep`: points
    are returned in ``xs`` order (``Pool.map`` preserves input order)
    and each point's execution is fully determined by its scheduler
    and seed. Structured ``(x, seed)`` keys fan every replica out as
    its own worker task. Falls back to the sequential path when
    parallelism is unavailable (no ``fork``; nested inside a daemon
    worker) or not worth it (fewer than two points, ``workers=1``).
    """
    global _FORK_STATE
    xs = list(xs)
    if workers is None:
        workers = min(default_workers(), len(xs))
    use_parallel = (
        len(xs) > 1
        and workers > 1
        and "fork" in multiprocessing.get_all_start_methods()
        and not multiprocessing.current_process().daemon
    )
    if not use_parallel:
        return sweep(name, xs, build, max_events=max_events,
                     max_time=max_time, trace_level=trace_level)

    context = multiprocessing.get_context("fork")
    _FORK_STATE = (name, xs, build, max_events, max_time, trace_level)
    try:
        with context.Pool(processes=min(workers, len(xs))) as pool:
            points = pool.map(_sweep_worker, range(len(xs)))
    finally:
        _FORK_STATE = None
    return SweepResult(name=name, points=points)
