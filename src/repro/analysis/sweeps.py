"""Parameter sweep helpers.

Thin declarative layer over :func:`repro.analysis.runner.run_consensus`
for producing the (x, y) series the experiments fit lines through.
Keeping sweeps in one place makes the E-drivers short and gives users
a ready-made tool for their own measurements.

Two runners share one point-execution helper:

* :func:`sweep` -- sequential, one consensus execution per key.
* :func:`parallel_sweep` -- same contract and *identical results*, but
  sweep points fan out over ``multiprocessing`` workers. Results come
  back in the order of ``xs`` regardless of worker completion order,
  and each point is itself deterministic (fixed scheduler/seed), so a
  parallel sweep is byte-for-byte equivalent to the sequential one.

Structured sweep keys
---------------------
A sweep key may be a plain scalar (the classic ``x``) or any tuple --
``(x, seed)``, ``((n, f), seed)`` -- and ``build(key)`` receives it
verbatim. This is how seed-replicated series (one execution per
``(x, seed)`` pair, the shape of E1/E9/E10) fan out across workers
instead of looping seeds sequentially inside each x. The point's
scalar axis is the first numeric leaf of the key, unless ``build``
returns an explicit ``x`` entry; :meth:`SweepResult.by_x` regroups the
replicas for aggregation.

Executors
---------
``parallel_sweep`` takes ``executor=``:

* ``"steal"`` (default) -- a persistent fork-based worker pool whose
  workers *pull* point indexes from a shared counter in small chunks
  (guided self-scheduling: chunk size shrinks toward 1 near the tail),
  so an uneven grid -- E9/E13's deadlocking cells run orders of
  magnitude slower than their neighbors -- keeps every core busy
  instead of idling behind stragglers. Defaults to one worker per
  core (:func:`saturating_workers`). Supports an optional per-point
  wall-clock ``point_timeout`` with ``point_retries`` (SIGALRM-based,
  for deadlock-prone cells; deterministic non-termination is better
  bounded with ``max_time``/``max_events``).
* ``"pool"`` -- the pre-PR-8 ``multiprocessing.Pool.imap_unordered``
  path, one task per point, half-the-cores default
  (:func:`default_workers`). Kept as a comparison baseline and proof
  that all executors produce byte-identical results.
* ``"serial"`` -- force the sequential path.

All executors use the ``fork`` start method so the (typically
unpicklable) ``build`` closures never cross a process boundary: workers
inherit them via fork and receive only point indexes; only the
:class:`SweepPoint` results (plain dataclasses of floats/strings) are
pickled back. On platforms without ``fork``, or inside daemon workers,
both transparently degrade to the sequential path.

Progress telemetry
------------------
Long sweeps (E9/E13 grids) used to run dark: a deadlocking cell was
indistinguishable from a slow one until the whole pool drained. All
runners take ``progress=True`` (or the ``MACSIM_SWEEP_PROGRESS=1``
environment toggle, which reaches sweeps buried inside experiment
drivers; ``0``/``false``/``no``/``off``/empty disable it) and emit one
heartbeat line per completed point to stderr -- ``done/total``, the
point's ``SweepPoint.key``, its runtime, overall elapsed and ETA --
flagging stragglers whose runtime exceeds :data:`STRAGGLER_FACTOR` x
the median of completed points. After the last point a single summary
line reports total points, wall time, points/s, straggler count, cache
hit ratio (when a result cache was consulted) and, for the
work-stealing executor, per-worker utilization and chunk-steal counts.
Heartbeats are stderr-only and never alter results or point order.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..macsim.trace import TraceLevel
from .metrics import RunMetrics
from .runner import ProcessFactory, run_consensus
from .stats import linear_fit


class SweepError(RuntimeError):
    """A sweep could not complete."""


class SweepWorkerError(SweepError):
    """A sweep worker raised or died; carries the failing point."""


class SweepTimeoutError(SweepError):
    """A sweep point exceeded ``point_timeout`` on every attempt."""


@dataclass(slots=True)
class SweepPoint:
    """One measured point of a sweep."""

    x: float
    metrics: RunMetrics
    #: The full sweep key this point was built from (equal to ``x``
    #: for scalar sweeps; the ``(x, seed)``-style tuple otherwise).
    key: Any = None


@dataclass
class SweepResult:
    """A complete sweep with fitting helpers."""

    name: str
    points: List[SweepPoint] = field(default_factory=list)
    #: Executor telemetry (worker counts, per-worker points/chunks/
    #: busy-seconds, flagged ``stragglers`` keys) for parallel runs;
    #: ``None`` on sequential paths.
    #: Observability only -- never part of the measured results.
    executor_stats: Optional[Dict[str, Any]] = None

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def ys(self, attribute: str = "last_decision") -> List[float]:
        return [getattr(p.metrics, attribute) for p in self.points]

    def all_correct(self) -> bool:
        return all(p.metrics.correct for p in self.points)

    def by_x(self) -> Dict[float, List[SweepPoint]]:
        """Points regrouped by scalar axis, in first-seen x order.

        The aggregation view for seed-replicated sweeps: every
        ``(x, seed)`` replica of one x lands in one bucket.
        """
        groups: Dict[float, List[SweepPoint]] = {}
        for point in self.points:
            groups.setdefault(point.x, []).append(point)
        return groups

    def fit(self, attribute: str = "last_decision"):
        """Least-squares (slope, intercept) of ``attribute`` vs x."""
        return linear_fit(self.xs, self.ys(attribute))

    def rows(self, attribute: str = "last_decision") -> List[list]:
        """Table rows: one per point (x, correct, value)."""
        return [[p.x, p.metrics.correct,
                 getattr(p.metrics, attribute)] for p in self.points]


def _scalar_axis(key: Any) -> float:
    """The plotting axis of a sweep key: its first numeric leaf."""
    while isinstance(key, tuple):
        if not key:
            raise ValueError("empty tuple sweep key")
        key = key[0]
    if isinstance(key, bool) or not isinstance(key, (int, float)):
        raise ValueError(
            f"cannot derive a scalar axis from sweep key leaf {key!r}; "
            f"have build() return an explicit 'x' entry")
    return float(key)


#: A completed point is flagged as a straggler when its runtime
#: exceeds this multiple of the median completed-point runtime (and
#: :data:`STRAGGLER_MIN_SECONDS`, so micro-point jitter never flags).
STRAGGLER_FACTOR = 4.0
STRAGGLER_MIN_SECONDS = 0.5


def flag_stragglers(runtimes: Sequence[tuple]) -> List[Any]:
    """Post-hoc straggler detection over ``(key, seconds)`` pairs.

    Applies the same rule as the live heartbeat marker
    (:meth:`SweepProgress.is_straggler`) but against the *complete*
    runtime distribution, so the flagged set is deterministic rather
    than dependent on completion order: a key is a straggler when its
    runtime is at least :data:`STRAGGLER_MIN_SECONDS` and exceeds
    :data:`STRAGGLER_FACTOR` x the median runtime. Fewer than four
    points never flag (too little signal for a median to mean much).
    Returns the flagged keys in input order.
    """
    if len(runtimes) < 4:
        return []
    ordered = sorted(seconds for _, seconds in runtimes)
    median = ordered[len(ordered) // 2]
    return [key for key, seconds in runtimes
            if seconds >= STRAGGLER_MIN_SECONDS
            and seconds > STRAGGLER_FACTOR * median]

#: Environment values that disable ``MACSIM_SWEEP_PROGRESS`` (any
#: other non-empty value enables it).
_FALSY_ENV = frozenset({"", "0", "false", "no", "off"})


def _progress_enabled(progress: Optional[bool]) -> bool:
    if progress is None:
        value = os.environ.get("MACSIM_SWEEP_PROGRESS", "")
        return value.strip().lower() not in _FALSY_ENV
    return bool(progress)


class SweepProgress:
    """Heartbeat emitter for sweep runners (stderr by default).

    One :meth:`point_done` call per completed point prints the running
    tally, the point's key and runtime, total elapsed wall time, a
    completion-rate ETA for the remainder, and a ``** straggler``
    marker when the point ran :data:`STRAGGLER_FACTOR` x slower than
    the median completed point (E13's deadlocking-cell signature).
    :meth:`note_cached` accounts result-cache hits that skipped
    execution; :meth:`finish` prints the closing summary line (and a
    per-worker utilization line when the work-stealing executor hands
    over its stats). Pure observer: it never reorders or mutates
    results.
    """

    def __init__(self, name: str, total: int, stream=None) -> None:
        self.name = name
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.runtimes: List[float] = []
        self.stragglers: List[Any] = []
        self.started = perf_counter()

    def is_straggler(self, seconds: float) -> bool:
        if len(self.runtimes) < 3 or seconds < STRAGGLER_MIN_SECONDS:
            return False
        median = sorted(self.runtimes)[len(self.runtimes) // 2]
        return seconds > STRAGGLER_FACTOR * median

    def point_done(self, key: Any, seconds: float) -> None:
        straggler = self.is_straggler(seconds)
        self.done += 1
        self.runtimes.append(seconds)
        elapsed = perf_counter() - self.started
        eta = elapsed / self.done * (self.total - self.done)
        mark = ""
        if straggler:
            self.stragglers.append(key)
            mark = "  ** straggler"
        print(f"[sweep {self.name}] {self.done}/{self.total} "
              f"key={key!r} {seconds:.2f}s "
              f"(elapsed {elapsed:.1f}s, eta {eta:.1f}s){mark}",
              file=self.stream, flush=True)

    def note_cached(self, count: int) -> None:
        """Account ``count`` points served from the result cache."""
        if count <= 0:
            return
        self.cache_hits += count
        self.done += count
        print(f"[sweep {self.name}] {self.done}/{self.total} "
              f"({count} cached point{'s' if count != 1 else ''} "
              f"reused)", file=self.stream, flush=True)

    def note_misses(self, count: int) -> None:
        """Account ``count`` points a result cache could not serve.

        Silent (the misses' own heartbeats follow as they execute);
        the counter feeds the closing summary line so a cached sweep
        reports its hit/miss split explicitly rather than leaving
        misses to be inferred from the total.
        """
        if count > 0:
            self.cache_misses += count

    def finish(self, worker_stats: Optional[List[dict]] = None) -> None:
        """Print the closing summary line after the last heartbeat."""
        elapsed = perf_counter() - self.started
        rate = self.done / elapsed if elapsed > 0 else float("inf")
        hit_ratio = self.cache_hits / self.total if self.total else 0.0
        print(f"[sweep {self.name}] summary: {self.done}/{self.total} "
              f"points in {elapsed:.2f}s ({rate:.1f} points/s, "
              f"{len(self.stragglers)} stragglers, "
              f"cache {self.cache_hits}/{self.total} hits, "
              f"{self.cache_misses} misses "
              f"[{hit_ratio:.0%}])", file=self.stream, flush=True)
        if worker_stats:
            cells = []
            for entry in worker_stats:
                busy = entry.get("busy_seconds", 0.0)
                util = busy / elapsed if elapsed > 0 else 0.0
                cells.append(f"w{entry['worker']}="
                             f"{entry['points']}pt/"
                             f"{entry['chunks']}steals/"
                             f"{util:.0%}util")
            print(f"[sweep {self.name}] workers: {' '.join(cells)}",
                  file=self.stream, flush=True)


def _run_point(name: str, key: Any,
               build: Callable[[Any], Dict[str, Any]],
               max_events: int, max_time: Optional[float],
               trace_level: "TraceLevel | str") -> SweepPoint:
    """Execute one sweep point; shared by all runners."""
    spec = dict(build(key))
    graph = spec.pop("graph")
    scheduler = spec.pop("scheduler")
    factory: ProcessFactory = spec.pop("factory")
    topology = spec.pop("topology", f"{name}@{key}")
    x = spec.pop("x", None)
    if x is None:
        x = _scalar_axis(key)
    metrics = run_consensus(
        algorithm=name, topology=topology, graph=graph,
        scheduler=scheduler, factory=factory,
        max_events=max_events, max_time=max_time,
        trace_level=trace_level, **spec)
    return SweepPoint(x=float(x), metrics=metrics, key=key)


def sweep(name: str, xs: Sequence[Any],
          build: Callable[[Any], Dict[str, Any]],
          *, max_events: int = 20_000_000,
          max_time: Optional[float] = None,
          trace_level: "TraceLevel | str" = TraceLevel.FULL,
          progress: Optional[bool] = None,
          reporter: Optional[SweepProgress] = None,
          on_point: Optional[Callable[[SweepPoint], None]] = None,
          ) -> SweepResult:
    """Run one consensus execution per key in ``xs`` and collect metrics.

    ``build(key)`` returns the keyword arguments for
    :func:`run_consensus` at that sweep point: ``graph``,
    ``scheduler``, ``factory`` and optionally ``initial_values`` /
    ``topology`` / ``crashes`` / ``unreliable_graph`` /
    ``check_invariants`` / ``probe``, plus ``x`` to pin the point's
    scalar axis when the key alone does not determine it.

    Example::

        result = sweep(
            "time vs D", [4, 9, 19],
            lambda d: dict(
                graph=line(int(d) + 1),
                scheduler=SynchronousScheduler(1.0),
                factory=make_wpaxos_factory(line(int(d) + 1))))
        slope, intercept = result.fit()

    Seed-replicated series pass ``(x, seed)`` tuples::

        result = sweep(
            "time vs p", [(p, s) for p in probs for s in range(5)],
            lambda key: build_for(prob=key[0], seed=key[1]))
        for p, replicas in result.by_x().items(): ...

    ``progress`` (or ``MACSIM_SWEEP_PROGRESS=1``) emits one heartbeat
    line per completed point to stderr plus a closing summary line.
    ``on_point`` is called with each completed :class:`SweepPoint` in
    completion order (the result-cache store hook). A caller-owned
    ``reporter`` suppresses the summary (the caller finishes it).
    """
    xs = list(xs)
    owns_reporter = reporter is None
    if owns_reporter and _progress_enabled(progress):
        reporter = SweepProgress(name, len(xs))
    result = SweepResult(name=name)
    for x in xs:
        t0 = perf_counter()
        point = _run_point(name, x, build, max_events, max_time,
                           trace_level)
        if reporter is not None:
            reporter.point_done(point.key, perf_counter() - t0)
        result.points.append(point)
        if on_point is not None:
            on_point(point)
    if owns_reporter and reporter is not None:
        reporter.finish()
    return result


# Sweep specification the forked workers inherit: (name, xs, build,
# max_events, max_time, trace_level, point_timeout, point_retries).
# Only valid between fork and executor teardown.
_FORK_STATE: Optional[tuple] = None


def _sweep_worker(index: int) -> tuple:
    """Legacy pool-executor worker: one task per point index."""
    name, xs, build, max_events, max_time, trace_level = _FORK_STATE[:6]
    t0 = perf_counter()
    point = _run_point(name, xs[index], build, max_events, max_time,
                       trace_level)
    # (index, runtime, point): completion order carries the heartbeat;
    # the index restores deterministic xs order afterwards.
    return index, perf_counter() - t0, point


def default_workers() -> int:
    """Pool-executor worker count (half the cores, >= 1)."""
    return max(1, (os.cpu_count() or 2) // 2)


def saturating_workers() -> int:
    """Work-stealing worker count: one per *available* core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


#: Upper bound on a single work-stealing claim. Chunks amortize the
#: shared-counter lock and result-queue traffic on huge grids without
#: re-creating pool-sized head-of-line blocking: near the tail the
#: guided rule below shrinks claims back to single points.
CHUNK_MAX = 16


def _claim_chunk(counter, total: int, workers: int):
    """Claim the next chunk of point indexes (guided self-scheduling).

    Chunk size is ``remaining / (2 * workers)`` clamped to
    ``[1, CHUNK_MAX]``: big grids hand out multi-point chunks while
    plenty of work remains, and the final claims degrade to one point
    each so no worker gets stuck behind a straggler's tail.
    """
    with counter.get_lock():
        start = counter.value
        if start >= total:
            return None
        remaining = total - start
        size = min(max(1, min(CHUNK_MAX, remaining // (2 * workers))),
                   remaining)
        counter.value = start + size
    return start, size


class _PointTimeout(Exception):
    """Internal SIGALRM marker; never escapes the worker."""


def _raise_point_timeout(signum, frame):
    raise _PointTimeout()


def _run_point_guarded(name: str, key: Any, build, max_events: int,
                       max_time: Optional[float], trace_level,
                       timeout: Optional[float],
                       retries: int) -> SweepPoint:
    """Run one point under an optional wall-clock timeout + retries."""
    if timeout is None:
        return _run_point(name, key, build, max_events, max_time,
                          trace_level)
    attempts = max(1, int(retries) + 1)
    for _ in range(attempts):
        signal.setitimer(signal.ITIMER_REAL, float(timeout))
        try:
            return _run_point(name, key, build, max_events, max_time,
                              trace_level)
        except _PointTimeout:
            continue
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
    raise SweepTimeoutError(
        f"sweep point {key!r} exceeded point_timeout={timeout}s wall "
        f"clock on all {attempts} attempt(s); a *deterministic* "
        f"deadlock is better bounded with max_time/max_events")


def _steal_worker(worker_id: int, workers: int, total: int,
                  counter, results) -> None:
    """Work-stealing worker loop: claim chunks until the counter drains.

    Every completed point is shipped back immediately as
    ``("point", index, seconds, point, worker_id)``; a failure ships
    ``("error", index, kind, text)`` and stops this worker; the final
    ``("done", worker_id, points, chunks, busy_seconds)`` marker
    carries the utilization/steal telemetry.
    """
    (name, xs, build, max_events, max_time, trace_level,
     timeout, retries) = _FORK_STATE
    if timeout is not None:
        signal.signal(signal.SIGALRM, _raise_point_timeout)
    points = chunks = 0
    busy = 0.0
    try:
        while True:
            claim = _claim_chunk(counter, total, workers)
            if claim is None:
                break
            chunks += 1
            start, size = claim
            for index in range(start, start + size):
                t0 = perf_counter()
                try:
                    point = _run_point_guarded(
                        name, xs[index], build, max_events, max_time,
                        trace_level, timeout, retries)
                except SweepTimeoutError as exc:
                    results.put(("error", index, "timeout", str(exc)))
                    return
                except BaseException as exc:
                    results.put(("error", index, "exception",
                                 f"{type(exc).__name__}: {exc}"))
                    return
                seconds = perf_counter() - t0
                busy += seconds
                points += 1
                results.put(("point", index, seconds, point,
                             worker_id))
    finally:
        results.put(("done", worker_id, points, chunks, busy))


def _run_steal(name: str, xs: list, build, max_events: int,
               max_time: Optional[float], trace_level, workers: int,
               reporter: Optional[SweepProgress],
               on_point: Optional[Callable[[SweepPoint], None]],
               point_timeout: Optional[float],
               point_retries: int):
    """Parent side of the work-stealing executor.

    Forks ``workers`` persistent processes over a shared next-index
    counter, drains the result queue as points complete (heartbeats +
    ``on_point`` fire in completion order), then reassembles points
    into input-index order -- byte-identical to the sequential path.
    """
    global _FORK_STATE
    context = multiprocessing.get_context("fork")
    counter = context.Value("l", 0)
    results = context.Queue()
    _FORK_STATE = (name, xs, build, max_events, max_time, trace_level,
                   point_timeout, point_retries)
    procs = [context.Process(target=_steal_worker,
                             args=(i, workers, len(xs), counter,
                                   results),
                             daemon=True)
             for i in range(workers)]
    ordered: List[Optional[SweepPoint]] = [None] * len(xs)
    stats: List[Optional[dict]] = [None] * workers
    runtimes: List[tuple] = []
    failure: Optional[tuple] = None
    try:
        for proc in procs:
            proc.start()
        pending_workers = workers
        while pending_workers > 0 and failure is None:
            try:
                message = results.get(timeout=1.0)
            except queue_module.Empty:
                dead = [i for i, proc in enumerate(procs)
                        if stats[i] is None and not proc.is_alive()]
                if dead:
                    codes = [procs[i].exitcode for i in dead]
                    failure = ("worker", None,
                               f"sweep worker(s) {dead} died without "
                               f"reporting (exit codes {codes})")
                continue
            kind = message[0]
            if kind == "point":
                _, index, seconds, point, _worker = message
                ordered[index] = point
                runtimes.append((point.key, seconds))
                if on_point is not None:
                    on_point(point)
                if reporter is not None:
                    reporter.point_done(point.key, seconds)
            elif kind == "done":
                _, worker_id, points, chunks, busy = message
                stats[worker_id] = {
                    "worker": worker_id, "points": points,
                    "chunks": chunks,
                    "busy_seconds": round(busy, 4)}
                pending_workers -= 1
            else:  # "error"
                _, index, err_kind, text = message
                failure = (err_kind, xs[index], text)
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
        results.close()
        results.join_thread()
        _FORK_STATE = None
    if failure is not None:
        err_kind, key, text = failure
        if err_kind == "timeout":
            raise SweepTimeoutError(text)
        suffix = "" if key is None else f" (point {key!r})"
        raise SweepWorkerError(f"{text}{suffix}")
    missing = [i for i, p in enumerate(ordered) if p is None]
    if missing:
        raise SweepWorkerError(
            f"sweep lost points at indexes {missing}")
    return ordered, [s for s in stats if s is not None], runtimes


def _run_pool(name: str, xs: list, build, max_events: int,
              max_time: Optional[float], trace_level, workers: int,
              reporter: Optional[SweepProgress],
              on_point: Optional[Callable[[SweepPoint], None]]):
    """Legacy executor: ``Pool.imap_unordered``, one task per point."""
    global _FORK_STATE
    context = multiprocessing.get_context("fork")
    _FORK_STATE = (name, xs, build, max_events, max_time, trace_level,
                   None, 0)
    ordered: List[Optional[SweepPoint]] = [None] * len(xs)
    runtimes: List[tuple] = []
    try:
        with context.Pool(processes=min(workers, len(xs))) as pool:
            for index, seconds, point in pool.imap_unordered(
                    _sweep_worker, range(len(xs))):
                ordered[index] = point
                runtimes.append((point.key, seconds))
                if on_point is not None:
                    on_point(point)
                if reporter is not None:
                    reporter.point_done(point.key, seconds)
    finally:
        _FORK_STATE = None
    return ordered, runtimes


def parallel_sweep(name: str, xs: Sequence[Any],
                   build: Callable[[Any], Dict[str, Any]],
                   *, max_events: int = 20_000_000,
                   max_time: Optional[float] = None,
                   trace_level: "TraceLevel | str" = TraceLevel.FULL,
                   workers: Optional[int] = None,
                   progress: Optional[bool] = None,
                   executor: str = "steal",
                   point_timeout: Optional[float] = None,
                   point_retries: int = 0,
                   reporter: Optional[SweepProgress] = None,
                   on_point: Optional[Callable[[SweepPoint], None]]
                   = None) -> SweepResult:
    """Like :func:`sweep`, but fan sweep points out over processes.

    Results are deterministic and identical to :func:`sweep`: points
    come back tagged with their input index and are reassembled into
    ``xs`` order, and each point's execution is fully determined by
    its scheduler and seed. Structured ``(x, seed)`` keys fan every
    replica out as its own worker task. Falls back to the sequential
    path when parallelism is unavailable (no ``fork``; nested inside
    a daemon worker) or not worth it (fewer than two points,
    ``workers=1``).

    ``executor`` selects the fan-out strategy (module docstring):
    ``"steal"`` (chunked work stealing over all cores, the default),
    ``"pool"`` (the pre-PR-8 one-task-per-point pool at half the
    cores) or ``"serial"``. ``point_timeout``/``point_retries`` bound
    a point's wall clock on the stealing executor; exhausting the
    retries raises :class:`SweepTimeoutError`.

    ``progress`` (or ``MACSIM_SWEEP_PROGRESS=1``) heartbeats each
    point to stderr *as it completes* -- completion order, not input
    order -- so a straggling worker is visible while the rest of the
    pool drains around it, then prints a summary line. ``on_point``
    fires in the parent, in completion order, with each completed
    point (the result-cache store hook, so interrupted sweeps keep
    their finished work). A caller-owned ``reporter`` suppresses the
    summary (the caller finishes it).
    """
    xs = list(xs)
    if executor not in ("steal", "pool", "serial"):
        raise ValueError(
            f"unknown sweep executor {executor!r} "
            f"(expected 'steal', 'pool' or 'serial')")
    if workers is None:
        pool_size = (saturating_workers() if executor == "steal"
                     else default_workers())
        workers = min(pool_size, len(xs)) if xs else 1
    use_parallel = (
        executor != "serial"
        and len(xs) > 1
        and workers > 1
        and "fork" in multiprocessing.get_all_start_methods()
        and not multiprocessing.current_process().daemon
    )
    if not use_parallel:
        return sweep(name, xs, build, max_events=max_events,
                     max_time=max_time, trace_level=trace_level,
                     progress=progress, reporter=reporter,
                     on_point=on_point)

    owns_reporter = reporter is None
    if owns_reporter and _progress_enabled(progress):
        reporter = SweepProgress(name, len(xs))
    if executor == "pool":
        ordered, runtimes = _run_pool(
            name, xs, build, max_events, max_time, trace_level,
            workers, reporter, on_point)
        executor_stats = {"executor": "pool",
                          "workers": min(workers, len(xs)),
                          "stragglers": flag_stragglers(runtimes)}
        worker_stats = None
    else:
        ordered, worker_stats, runtimes = _run_steal(
            name, xs, build, max_events, max_time, trace_level,
            workers, reporter, on_point, point_timeout, point_retries)
        executor_stats = {"executor": "steal", "workers": workers,
                          "per_worker": worker_stats,
                          "stragglers": flag_stragglers(runtimes)}
    if owns_reporter and reporter is not None:
        reporter.finish(worker_stats=worker_stats)
    return SweepResult(name=name, points=ordered,
                       executor_stats=executor_stats)
