"""Parameter sweep helpers.

Thin declarative layer over :func:`repro.analysis.runner.run_consensus`
for producing the (x, y) series the experiments fit lines through.
Keeping sweeps in one place makes the E-drivers short and gives users
a ready-made tool for their own measurements.

Two runners share one point-execution helper:

* :func:`sweep` -- sequential, one consensus execution per key.
* :func:`parallel_sweep` -- same contract and *identical results*, but
  sweep points fan out over ``multiprocessing`` workers. Results come
  back in the order of ``xs`` regardless of worker completion order,
  and each point is itself deterministic (fixed scheduler/seed), so a
  parallel sweep is byte-for-byte equivalent to the sequential one.

Structured sweep keys
---------------------
A sweep key may be a plain scalar (the classic ``x``) or any tuple --
``(x, seed)``, ``((n, f), seed)`` -- and ``build(key)`` receives it
verbatim. This is how seed-replicated series (one execution per
``(x, seed)`` pair, the shape of E1/E9/E10) fan out across workers
instead of looping seeds sequentially inside each x. The point's
scalar axis is the first numeric leaf of the key, unless ``build``
returns an explicit ``x`` entry; :meth:`SweepResult.by_x` regroups the
replicas for aggregation.

``parallel_sweep`` uses the ``fork`` start method so the (typically
unpicklable) ``build`` closures never cross a process boundary: workers
inherit them via fork and receive only point indexes; only the
:class:`SweepPoint` results (plain dataclasses of floats/strings) are
pickled back. On platforms without ``fork``, or inside daemon workers,
it transparently degrades to the sequential path.

Progress telemetry
------------------
Long sweeps (E9/E13 grids) used to run dark: a deadlocking cell was
indistinguishable from a slow one until the whole pool drained. Both
runners now take ``progress=True`` (or the ``MACSIM_SWEEP_PROGRESS=1``
environment toggle, which reaches sweeps buried inside experiment
drivers) and emit one heartbeat line per completed point to stderr --
``done/total``, the point's ``SweepPoint.key``, its runtime, overall
elapsed and ETA -- flagging stragglers whose runtime exceeds
:data:`STRAGGLER_FACTOR` x the median of completed points. Heartbeats
are stderr-only and never alter results or point order.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..macsim.trace import TraceLevel
from .metrics import RunMetrics
from .runner import ProcessFactory, run_consensus
from .stats import linear_fit


@dataclass(slots=True)
class SweepPoint:
    """One measured point of a sweep."""

    x: float
    metrics: RunMetrics
    #: The full sweep key this point was built from (equal to ``x``
    #: for scalar sweeps; the ``(x, seed)``-style tuple otherwise).
    key: Any = None


@dataclass
class SweepResult:
    """A complete sweep with fitting helpers."""

    name: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def ys(self, attribute: str = "last_decision") -> List[float]:
        return [getattr(p.metrics, attribute) for p in self.points]

    def all_correct(self) -> bool:
        return all(p.metrics.correct for p in self.points)

    def by_x(self) -> Dict[float, List[SweepPoint]]:
        """Points regrouped by scalar axis, in first-seen x order.

        The aggregation view for seed-replicated sweeps: every
        ``(x, seed)`` replica of one x lands in one bucket.
        """
        groups: Dict[float, List[SweepPoint]] = {}
        for point in self.points:
            groups.setdefault(point.x, []).append(point)
        return groups

    def fit(self, attribute: str = "last_decision"):
        """Least-squares (slope, intercept) of ``attribute`` vs x."""
        return linear_fit(self.xs, self.ys(attribute))

    def rows(self, attribute: str = "last_decision") -> List[list]:
        """Table rows: one per point (x, correct, value)."""
        return [[p.x, p.metrics.correct,
                 getattr(p.metrics, attribute)] for p in self.points]


def _scalar_axis(key: Any) -> float:
    """The plotting axis of a sweep key: its first numeric leaf."""
    while isinstance(key, tuple):
        if not key:
            raise ValueError("empty tuple sweep key")
        key = key[0]
    if isinstance(key, bool) or not isinstance(key, (int, float)):
        raise ValueError(
            f"cannot derive a scalar axis from sweep key leaf {key!r}; "
            f"have build() return an explicit 'x' entry")
    return float(key)


#: A completed point is flagged as a straggler when its runtime
#: exceeds this multiple of the median completed-point runtime (and
#: :data:`STRAGGLER_MIN_SECONDS`, so micro-point jitter never flags).
STRAGGLER_FACTOR = 4.0
STRAGGLER_MIN_SECONDS = 0.5


def _progress_enabled(progress: Optional[bool]) -> bool:
    if progress is None:
        return bool(os.environ.get("MACSIM_SWEEP_PROGRESS"))
    return bool(progress)


class SweepProgress:
    """Heartbeat emitter for sweep runners (stderr by default).

    One :meth:`point_done` call per completed point prints the running
    tally, the point's key and runtime, total elapsed wall time, a
    completion-rate ETA for the remainder, and a ``** straggler``
    marker when the point ran :data:`STRAGGLER_FACTOR` x slower than
    the median completed point (E13's deadlocking-cell signature).
    Pure observer: it never reorders or mutates results.
    """

    def __init__(self, name: str, total: int, stream=None) -> None:
        self.name = name
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.runtimes: List[float] = []
        self.stragglers: List[Any] = []
        self.started = perf_counter()

    def is_straggler(self, seconds: float) -> bool:
        if len(self.runtimes) < 3 or seconds < STRAGGLER_MIN_SECONDS:
            return False
        median = sorted(self.runtimes)[len(self.runtimes) // 2]
        return seconds > STRAGGLER_FACTOR * median

    def point_done(self, key: Any, seconds: float) -> None:
        straggler = self.is_straggler(seconds)
        self.done += 1
        self.runtimes.append(seconds)
        elapsed = perf_counter() - self.started
        eta = elapsed / self.done * (self.total - self.done)
        mark = ""
        if straggler:
            self.stragglers.append(key)
            mark = "  ** straggler"
        print(f"[sweep {self.name}] {self.done}/{self.total} "
              f"key={key!r} {seconds:.2f}s "
              f"(elapsed {elapsed:.1f}s, eta {eta:.1f}s){mark}",
              file=self.stream, flush=True)


def _run_point(name: str, key: Any,
               build: Callable[[Any], Dict[str, Any]],
               max_events: int, max_time: Optional[float],
               trace_level: "TraceLevel | str") -> SweepPoint:
    """Execute one sweep point; shared by both runners."""
    spec = dict(build(key))
    graph = spec.pop("graph")
    scheduler = spec.pop("scheduler")
    factory: ProcessFactory = spec.pop("factory")
    topology = spec.pop("topology", f"{name}@{key}")
    x = spec.pop("x", None)
    if x is None:
        x = _scalar_axis(key)
    metrics = run_consensus(
        algorithm=name, topology=topology, graph=graph,
        scheduler=scheduler, factory=factory,
        max_events=max_events, max_time=max_time,
        trace_level=trace_level, **spec)
    return SweepPoint(x=float(x), metrics=metrics, key=key)


def sweep(name: str, xs: Sequence[Any],
          build: Callable[[Any], Dict[str, Any]],
          *, max_events: int = 20_000_000,
          max_time: Optional[float] = None,
          trace_level: "TraceLevel | str" = TraceLevel.FULL,
          progress: Optional[bool] = None) -> SweepResult:
    """Run one consensus execution per key in ``xs`` and collect metrics.

    ``build(key)`` returns the keyword arguments for
    :func:`run_consensus` at that sweep point: ``graph``,
    ``scheduler``, ``factory`` and optionally ``initial_values`` /
    ``topology`` / ``crashes`` / ``unreliable_graph`` /
    ``check_invariants`` / ``probe``, plus ``x`` to pin the point's
    scalar axis when the key alone does not determine it.

    Example::

        result = sweep(
            "time vs D", [4, 9, 19],
            lambda d: dict(
                graph=line(int(d) + 1),
                scheduler=SynchronousScheduler(1.0),
                factory=make_wpaxos_factory(line(int(d) + 1))))
        slope, intercept = result.fit()

    Seed-replicated series pass ``(x, seed)`` tuples::

        result = sweep(
            "time vs p", [(p, s) for p in probs for s in range(5)],
            lambda key: build_for(prob=key[0], seed=key[1]))
        for p, replicas in result.by_x().items(): ...

    ``progress`` (or ``MACSIM_SWEEP_PROGRESS=1``) emits one heartbeat
    line per completed point to stderr.
    """
    xs = list(xs)
    reporter = (SweepProgress(name, len(xs))
                if _progress_enabled(progress) else None)
    result = SweepResult(name=name)
    for x in xs:
        t0 = perf_counter()
        point = _run_point(name, x, build, max_events, max_time,
                           trace_level)
        if reporter is not None:
            reporter.point_done(point.key, perf_counter() - t0)
        result.points.append(point)
    return result


# Sweep specification the forked workers inherit; indexed by
# _sweep_worker. Only valid between fork and pool teardown.
_FORK_STATE: Optional[tuple] = None


def _sweep_worker(index: int) -> tuple:
    name, xs, build, max_events, max_time, trace_level = _FORK_STATE
    t0 = perf_counter()
    point = _run_point(name, xs[index], build, max_events, max_time,
                       trace_level)
    # (index, runtime, point): completion order carries the heartbeat;
    # the index restores deterministic xs order afterwards.
    return index, perf_counter() - t0, point


def default_workers() -> int:
    """Worker count for :func:`parallel_sweep` (half the cores, >=1)."""
    return max(1, (os.cpu_count() or 2) // 2)


def parallel_sweep(name: str, xs: Sequence[Any],
                   build: Callable[[Any], Dict[str, Any]],
                   *, max_events: int = 20_000_000,
                   max_time: Optional[float] = None,
                   trace_level: "TraceLevel | str" = TraceLevel.FULL,
                   workers: Optional[int] = None,
                   progress: Optional[bool] = None) -> SweepResult:
    """Like :func:`sweep`, but fan sweep points out over processes.

    Results are deterministic and identical to :func:`sweep`: points
    come back tagged with their input index and are reassembled into
    ``xs`` order, and each point's execution is fully determined by
    its scheduler and seed. Structured ``(x, seed)`` keys fan every
    replica out as its own worker task. Falls back to the sequential
    path when parallelism is unavailable (no ``fork``; nested inside
    a daemon worker) or not worth it (fewer than two points,
    ``workers=1``).

    ``progress`` (or ``MACSIM_SWEEP_PROGRESS=1``) heartbeats each
    point to stderr *as it completes* -- completion order, not input
    order -- so a straggling worker is visible while the rest of the
    pool drains around it.
    """
    global _FORK_STATE
    xs = list(xs)
    if workers is None:
        workers = min(default_workers(), len(xs))
    use_parallel = (
        len(xs) > 1
        and workers > 1
        and "fork" in multiprocessing.get_all_start_methods()
        and not multiprocessing.current_process().daemon
    )
    if not use_parallel:
        return sweep(name, xs, build, max_events=max_events,
                     max_time=max_time, trace_level=trace_level,
                     progress=progress)

    reporter = (SweepProgress(name, len(xs))
                if _progress_enabled(progress) else None)
    context = multiprocessing.get_context("fork")
    _FORK_STATE = (name, xs, build, max_events, max_time, trace_level)
    ordered: List[Optional[SweepPoint]] = [None] * len(xs)
    try:
        with context.Pool(processes=min(workers, len(xs))) as pool:
            for index, seconds, point in pool.imap_unordered(
                    _sweep_worker, range(len(xs))):
                ordered[index] = point
                if reporter is not None:
                    reporter.point_done(point.key, seconds)
    finally:
        _FORK_STATE = None
    return SweepResult(name=name, points=ordered)
