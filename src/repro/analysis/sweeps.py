"""Parameter sweep helpers.

Thin declarative layer over :func:`repro.analysis.runner.run_consensus`
for producing the (x, y) series the experiments fit lines through.
Keeping sweeps in one place makes the E-drivers short and gives users
a ready-made tool for their own measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .metrics import RunMetrics
from .runner import ProcessFactory, run_consensus
from .stats import linear_fit


@dataclass
class SweepPoint:
    """One measured point of a sweep."""

    x: float
    metrics: RunMetrics


@dataclass
class SweepResult:
    """A complete sweep with fitting helpers."""

    name: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    def ys(self, attribute: str = "last_decision") -> List[float]:
        return [getattr(p.metrics, attribute) for p in self.points]

    def all_correct(self) -> bool:
        return all(p.metrics.correct for p in self.points)

    def fit(self, attribute: str = "last_decision"):
        """Least-squares (slope, intercept) of ``attribute`` vs x."""
        return linear_fit(self.xs, self.ys(attribute))

    def rows(self, attribute: str = "last_decision") -> List[list]:
        """Table rows: one per point (x, correct, value)."""
        return [[p.x, p.metrics.correct,
                 getattr(p.metrics, attribute)] for p in self.points]


def sweep(name: str, xs: Sequence[float],
          build: Callable[[float], Dict[str, Any]],
          *, max_events: int = 20_000_000,
          max_time: Optional[float] = None) -> SweepResult:
    """Run one consensus execution per ``x`` and collect metrics.

    ``build(x)`` returns the keyword arguments for
    :func:`run_consensus` at that sweep point: ``graph``,
    ``scheduler``, ``factory`` and optionally ``initial_values`` /
    ``topology``.

    Example::

        result = sweep(
            "time vs D", [4, 9, 19],
            lambda d: dict(
                graph=line(int(d) + 1),
                scheduler=SynchronousScheduler(1.0),
                factory=make_wpaxos_factory(line(int(d) + 1))))
        slope, intercept = result.fit()
    """
    result = SweepResult(name=name)
    for x in xs:
        spec = dict(build(x))
        graph = spec.pop("graph")
        scheduler = spec.pop("scheduler")
        factory: ProcessFactory = spec.pop("factory")
        topology = spec.pop("topology", f"{name}@{x}")
        metrics = run_consensus(
            algorithm=name, topology=topology, graph=graph,
            scheduler=scheduler, factory=factory,
            max_events=max_events, max_time=max_time, **spec)
        result.points.append(SweepPoint(x=float(x), metrics=metrics))
    return result
