"""Scenario-native experiment manifests.

The E-drivers' report tables are built from *row blocks*: one base
:class:`~repro.scenario.Scenario` plus axes swept over it (a
:class:`~repro.scenario.ScenarioGrid`) or a single hand-built cell.
:class:`ManifestBlock` / :class:`ExperimentManifest` make that
structure a JSON document (schema ``manifest/v1``), so an experiment's
entire cell population can be written to a file, diffed, regenerated
from the :class:`~repro.analysis.cache.ResultCache`, resumed after an
interruption (every completed cell is already on disk) and re-run only
where a scenario or the cache salt changed.

Migrated drivers (``MANIFEST_SOURCES``) export a ``manifest()``
function returning their blocks built from the *same* module-level
scenario definitions their ``run()`` executes -- so ``repro regen E9``
and ``repro regen --manifest e9.manifest.json`` share cache entries
cell for cell.

:func:`regenerate` renders a deterministic per-block table (no
timings, no environment) -- two regenerations from the same cells are
byte-identical, which CI's ``regen-smoke`` job pins.
"""

from __future__ import annotations

import importlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..scenario import (Scenario, ScenarioError, ScenarioGrid,
                        _from_jsonable, _jsonable)
from .cache import ResultCache, cached_run
from .sweeps import SweepPoint, SweepResult
from .tables import format_table

MANIFEST_SCHEMA = "manifest/v1"

#: Experiment drivers that define their row blocks as manifests (the
#: migrated set); each module exports ``manifest() -> ExperimentManifest``
#: and a cache-aware ``run(cache=..., workers=...)``.
MANIFEST_SOURCES: Dict[str, str] = {
    "E1": "repro.experiments.e1_single_hop",
    "E2": "repro.experiments.e2_wpaxos_scaling",
    "E3": "repro.experiments.e3_baselines",
    "E9": "repro.experiments.e9_unreliable_links",
    "E12": "repro.experiments.e12_byzantine",
    "E13": "repro.experiments.e13_churn",
}


class ManifestError(ScenarioError):
    """A manifest document could not be parsed or executed."""


def _axes_jsonable(axes: Dict[str, List[Any]]) -> Dict[str, Any]:
    # Manifests are JSON documents: tuples flatten to lists here (grid
    # axis values are scalars or Specs throughout the repo).
    return {path: [_jsonable(v) for v in values]
            for path, values in axes.items()}


def _axes_from_jsonable(raw: Any, where: str) -> Dict[str, List[Any]]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ManifestError(f"{where} must be an object of "
                            f"path -> value list, got {raw!r}")
    out: Dict[str, List[Any]] = {}
    for path, values in raw.items():
        if not isinstance(values, list):
            raise ManifestError(
                f"{where}[{path!r}] must be a list, got {values!r}")
        out[path] = [_from_jsonable(v) for v in values]
    return out


@dataclass
class ManifestBlock:
    """One row block: a base scenario plus swept axes.

    Empty ``axes`` and ``zipped`` describe a single hand-built cell
    (E1's staggered-start run, E13's waypoint run). Otherwise the
    block denotes ``base.grid(axes, zipped=zipped)``.
    """

    name: str
    base: Scenario
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    zipped: Dict[str, List[Any]] = field(default_factory=dict)
    note: str = ""

    def is_single(self) -> bool:
        return not self.axes and not self.zipped

    def grid(self) -> ScenarioGrid:
        if self.is_single():
            raise ManifestError(
                f"block {self.name!r} is a single cell, not a grid")
        return self.base.grid(self.axes or None,
                              zipped=self.zipped or None)

    def cells(self) -> int:
        return 1 if self.is_single() else len(self.grid())

    def scenarios(self) -> List[Scenario]:
        if self.is_single():
            return [self.base]
        return self.grid().scenarios()

    def run(self, *, cache: Optional[ResultCache] = None,
            parallel: bool = True, workers: Optional[int] = None,
            executor: str = "steal",
            progress: Optional[bool] = None) -> SweepResult:
        """Execute (or regenerate from cache) every cell."""
        if self.is_single():
            metrics = cached_run(self.base, cache)
            point = SweepPoint(x=0.0, metrics=metrics, key=None)
            return SweepResult(name=self.name, points=[point])
        return self.grid().run(name=self.name, cache=cache,
                               parallel=parallel, workers=workers,
                               executor=executor, progress=progress)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "base": self.base.to_dict(),
        }
        if self.axes:
            out["axes"] = _axes_jsonable(self.axes)
        if self.zipped:
            out["zipped"] = _axes_jsonable(self.zipped)
        if self.note:
            out["note"] = self.note
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "ManifestBlock":
        if not isinstance(data, dict) or "base" not in data:
            raise ManifestError(f"not a manifest block: {data!r}")
        name = data.get("name")
        if not name:
            raise ManifestError("manifest block is missing 'name'")
        return cls(
            name=str(name),
            base=Scenario.from_dict(data["base"]),
            axes=_axes_from_jsonable(data.get("axes"), "axes"),
            zipped=_axes_from_jsonable(data.get("zipped"), "zipped"),
            note=str(data.get("note", "")),
        )


@dataclass
class ExperimentManifest:
    """An experiment's full cell population, as a JSON document."""

    experiment: str
    title: str = ""
    blocks: List[ManifestBlock] = field(default_factory=list)

    def cells(self) -> int:
        return sum(block.cells() for block in self.blocks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "experiment": self.experiment,
            "title": self.title,
            "blocks": [block.to_dict() for block in self.blocks],
        }

    @classmethod
    def from_dict(cls, data: Any) -> "ExperimentManifest":
        if not isinstance(data, dict):
            raise ManifestError(f"not a manifest dict: {data!r}")
        schema = data.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise ManifestError(
                f"unsupported manifest schema {schema!r} "
                f"(expected {MANIFEST_SCHEMA!r})")
        return cls(
            experiment=str(data.get("experiment", "")),
            title=str(data.get("title", "")),
            blocks=[ManifestBlock.from_dict(raw)
                    for raw in data.get("blocks", [])],
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentManifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(
                f"invalid manifest JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "ExperimentManifest":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")


def available_manifests() -> List[str]:
    """IDs of the drivers that export manifests."""
    return list(MANIFEST_SOURCES)


def load_manifest(experiment_id: str) -> ExperimentManifest:
    """The manifest a migrated E-driver exports."""
    module_name = MANIFEST_SOURCES.get(experiment_id.upper())
    if module_name is None:
        raise ManifestError(
            f"no manifest source for {experiment_id!r}; migrated "
            f"drivers: {', '.join(MANIFEST_SOURCES)}")
    module = importlib.import_module(module_name)
    return module.manifest()


def write_manifests(directory: str,
                    ids: Optional[List[str]] = None) -> List[str]:
    """Write one ``<id>.manifest.json`` per migrated driver."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for experiment_id in (ids or available_manifests()):
        manifest = load_manifest(experiment_id)
        path = os.path.join(
            directory, f"{manifest.experiment.lower()}.manifest.json")
        manifest.dump(path)
        paths.append(path)
    return paths


def _cell_value(value: Any) -> Any:
    if value is None:
        return None
    if isinstance(value, float):
        return value
    return value


def block_table(block: ManifestBlock,
                result: SweepResult) -> tuple:
    """Deterministic (headers, rows) for one regenerated block."""
    headers = ["cell", "x", "correct", "agree", "valid", "term",
               "decision time", "events"]
    rows = []
    for point in result.points:
        metrics = point.metrics
        label = "-" if point.key is None else repr(point.key)
        rows.append([
            label, point.x, metrics.correct, metrics.agreement,
            metrics.validity, metrics.termination,
            _cell_value(metrics.last_decision), metrics.events])
    return headers, rows


def regenerate(manifest: ExperimentManifest, *,
               cache: Optional[ResultCache] = None,
               parallel: bool = True,
               workers: Optional[int] = None,
               executor: str = "steal",
               progress: Optional[bool] = None,
               block_stats: Optional[List[Dict[str, Any]]] = None) -> str:
    """Regenerate every block table; deterministic text output.

    Cache hits skip execution entirely; fresh cells are persisted as
    they complete, so an interrupted regeneration resumes from its
    finished cells on the next invocation.

    ``block_stats``, when a list, collects one per-block cache
    accounting dict (``experiment`` / ``block`` / ``cells`` /
    ``hits`` / ``misses`` / ``stragglers``) as blocks execute. The
    counters live here -- not in the returned text -- so two
    regenerations from the same cells stay byte-identical (the CI
    regen-smoke pin) while the caller can still report which blocks
    were served from cache and which sweep keys straggled
    (:func:`repro.analysis.sweeps.flag_stragglers`).
    """
    parts = [f"=== {manifest.experiment}: {manifest.title} "
             f"({manifest.cells()} cells) ==="]
    for block in manifest.blocks:
        before = ((cache.hits, cache.misses) if cache is not None
                  else (0, 0))
        result = block.run(cache=cache, parallel=parallel,
                           workers=workers, executor=executor,
                           progress=progress)
        if block_stats is not None and cache is not None:
            stats = result.executor_stats or {}
            block_stats.append({
                "experiment": manifest.experiment,
                "block": block.name,
                "cells": block.cells(),
                "hits": cache.hits - before[0],
                "misses": cache.misses - before[1],
                "stragglers": list(stats.get("stragglers", ())),
            })
        headers, rows = block_table(block, result)
        title = block.name if not block.note else (
            f"{block.name} -- {block.note}")
        parts.append(format_table(headers, rows, title=title))
    return "\n\n".join(parts)
