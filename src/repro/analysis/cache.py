"""Scenario-keyed result cache.

Every sweep cell in this repo is a *deterministic* function of its
:class:`~repro.scenario.Scenario`: the frozen scenario document fully
determines the run, so its canonical JSON is a content address for the
run's :class:`~repro.analysis.metrics.RunMetrics`. :class:`ResultCache`
exploits that: a SHA-256 digest over ``Scenario.canonical_json()``
(salted with a code/schema version string) keys a JSON file per cell,
so overlapping grids, re-runs and interrupted ``repro regen``
invocations dedup instead of recomputing.

Layout and durability
---------------------
``<directory>/<digest[:2]>/<digest>.json`` -- two-level fan-out keeps
directory listings sane at 10^5-cell scale. Every entry embeds the
full scenario document it was computed from; a hit is only served when
the stored document equals the requested scenario's (digest-collision
and corruption guard). Writes go through a temp file + ``os.replace``
so a killed sweep never leaves a torn entry, and each stored point
lands as soon as the parent collects it -- an interrupted grid resumes
from its completed cells.

Invalidation
------------
Three ways, by design:

* change any scenario field -- the digest moves, the old entry is
  simply never read again;
* bump the cache ``salt`` (e.g. when engine semantics change in a
  PR) -- every digest moves;
* ``verify="replay"`` -- every hit is re-executed and compared,
  turning the cache into a determinism regression harness
  (mismatches raise :class:`CacheVerificationError`).

``prune(max_bytes)`` evicts least-recently-*used* entries (hits bump
mtime) to bound the on-disk footprint.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from .metrics import RunMetrics

#: Entry schema; folded into every digest so format changes invalidate
#: old caches wholesale.
CACHE_SCHEMA = "macsim-cache/v1"

#: Default on-disk location (overridable per-cache or via environment).
CACHE_DIR_ENV = "MACSIM_CACHE_DIR"
DEFAULT_CACHE_DIR = ".macsim-cache"


class CacheError(RuntimeError):
    """A cache entry could not be read or written."""


class CacheVerificationError(CacheError):
    """A replay-verified hit diverged from the stored metrics."""


def default_cache_dir() -> str:
    """The cache directory: ``$MACSIM_CACHE_DIR`` or ``.macsim-cache``."""
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


def _roundtrip(metrics: RunMetrics) -> RunMetrics:
    """Normalize metrics through the JSON wire format (tuples become
    lists etc.) so fresh and cached values compare equal."""
    return RunMetrics.from_dict(json.loads(json.dumps(
        metrics.to_dict())))


class ResultCache:
    """Disk cache of per-scenario :class:`RunMetrics`.

    ``salt`` is folded into every digest (bump it when a code change
    invalidates old results). ``verify="replay"`` (or ``True``)
    re-executes every hit and compares against the stored metrics.
    Counters (``hits``/``misses``/``stores``/``skipped``) accumulate
    over the cache's lifetime; ``hit_ratio``/:meth:`describe` report
    them.
    """

    def __init__(self, directory: Optional[str] = None, *,
                 salt: str = "", verify: Any = False) -> None:
        self.directory = directory or default_cache_dir()
        self.salt = salt
        self.verify = verify
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Puts skipped because the metrics were not JSON-serializable
        #: (e.g. a probe harvested live objects into ``extras``).
        self.skipped = 0

    # -- addressing --------------------------------------------------

    def digest(self, scenario) -> str:
        return scenario.digest(salt=self.salt)

    def path(self, scenario) -> str:
        digest = self.digest(scenario)
        return os.path.join(self.directory, digest[:2],
                            digest + ".json")

    # -- core operations ---------------------------------------------

    def get(self, scenario) -> Optional[RunMetrics]:
        """The cached metrics for ``scenario``, or ``None`` on a miss.

        Unreadable, corrupt, schema-mismatched or digest-colliding
        entries all count as misses (the sweep recomputes and
        overwrites them); only a replay-verification failure raises.
        """
        path = self.path(scenario)
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        if (not isinstance(doc, dict)
                or doc.get("schema") != CACHE_SCHEMA
                or doc.get("scenario") != scenario.to_dict()):
            self.misses += 1
            return None
        try:
            metrics = RunMetrics.from_dict(doc["metrics"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        if self.verify:
            fresh = _roundtrip(scenario.run())
            if fresh != metrics:
                raise CacheVerificationError(
                    f"replay-verified cache hit diverged for "
                    f"{self.digest(scenario)}: cached {metrics!r} "
                    f"vs fresh {fresh!r}")
        self.hits += 1
        try:
            os.utime(path)   # LRU recency for prune()
        except OSError:
            pass
        return metrics

    def put(self, scenario, metrics: RunMetrics) -> bool:
        """Store ``metrics`` under ``scenario``'s digest (atomic).

        Returns ``False`` (and counts ``skipped``) when the metrics
        cannot be JSON-serialized instead of failing the sweep.
        """
        doc = {
            "schema": CACHE_SCHEMA,
            "digest": self.digest(scenario),
            "salt": self.salt,
            "scenario": scenario.to_dict(),
            "metrics": metrics.to_dict(),
        }
        try:
            text = json.dumps(doc, sort_keys=True)
        except (TypeError, ValueError):
            self.skipped += 1
            return False
        path = self.path(scenario)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise CacheError(f"could not write cache entry {path}")
        self.stores += 1
        return True

    def run(self, scenario) -> RunMetrics:
        """Cached single-cell execution: get, else run + store.

        Fresh results are normalized through the JSON wire format so
        a later hit returns an *equal* value.
        """
        metrics = self.get(scenario)
        if metrics is not None:
            return metrics
        metrics = scenario.run()
        if self.put(scenario, metrics):
            return _roundtrip(metrics)
        return metrics

    # -- bookkeeping -------------------------------------------------

    @property
    def hit_ratio(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def stats(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "skipped": self.skipped,
                "hit_ratio": self.hit_ratio,
                "directory": self.directory}

    def describe(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.hit_ratio:.1%} hit rate)")

    # -- maintenance -------------------------------------------------

    def entries(self) -> List[str]:
        """Paths of every entry currently on disk."""
        found: List[str] = []
        if not os.path.isdir(self.directory):
            return found
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for entry in sorted(os.listdir(shard_dir)):
                if entry.endswith(".json"):
                    found.append(os.path.join(shard_dir, entry))
        return found

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until the cache fits in
        ``max_bytes``; returns the number of entries removed."""
        stamped = []
        for path in self.entries():
            try:
                info = os.stat(path)
            except OSError:
                continue
            stamped.append((info.st_mtime, info.st_size, path))
        stamped.sort()
        total = sum(size for _, size, _ in stamped)
        removed = 0
        for _, size, path in stamped:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        return removed


def cached_run(scenario, cache: Optional[ResultCache] = None
               ) -> RunMetrics:
    """Run one scenario through an optional cache (the single-cell
    counterpart of ``ScenarioGrid.run(cache=...)``)."""
    if cache is None:
        return scenario.run()
    return cache.run(scenario)
