"""``repro stats``: F_ack/F_prog histograms and counters from any run
artifact.

The paper states every algorithm's time bound against the abstract
MAC layer's ack/progress parameters; this module turns a finished run
back into those empirical distributions. It accepts three inputs and
summarizes them identically:

* a ``--telemetry`` snapshot JSON (schema ``telemetry/v1``),
* a streamed trace export (schema v3-v6, JSONL or columnar chunks)
  whose header may embed a telemetry snapshot in its metadata,
* a v1/v2 single-document trace JSON.

When no telemetry blob is present (all pre-PR7 exports), spans are
*derived* from the records by replaying the same eviction-at-ack
model the live engine uses: a span opens at ``broadcast``, tracks the
first/last ``deliver``, closes at ``ack``; deliveries after the ack
belong to no span and unacked broadcasts emit nothing. Because
summaries are computed order-insensitively
(:func:`repro.macsim.telemetry.summarize_samples`), live telemetry,
streamed JSONL derivation and the vectorized columnar derivation of
one seeded run report identical histograms -- the acceptance test
pins all three.

:data:`SPAN_RULES` maps every registered trace kind to its role in
span derivation; the guard test asserts it (and the columnar kind
table) stays total as kinds are added.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..macsim.telemetry import TELEMETRY_SCHEMA, summarize_samples
from ..macsim.trace import TRACE_KINDS
from . import export as _export
from .service_stats import (SERVICE_SCHEMAS, SERVICE_STATS_SCHEMA,
                            render_service_stats, service_doc)
from .tables import format_table

__all__ = ["SPAN_RULES", "KIND_TO_COUNTER", "derive_spans",
           "derive_spans_columnar", "stats_from_file", "render_stats"]

#: Role of each trace kind in span derivation. Every registered kind
#: MUST appear here (guard-tested): ``open`` starts a span, ``deliver``
#: extends it, ``close`` emits and evicts it, ``ignore`` never touches
#: span state.
SPAN_RULES: Dict[str, str] = {
    "broadcast": "open",
    "deliver": "deliver",
    "ack": "close",
    "decide": "ignore",
    "crash": "ignore",
    "discard": "ignore",
    "drop": "ignore",
    "topo": "ignore",
}

#: Trace kind -> the counter name its record count reports under
#: (matches the live engine's ``Telemetry.counters`` keys, so derived
#: and live counter tables line up).
KIND_TO_COUNTER: Dict[str, str] = {
    "broadcast": "broadcasts_opened",
    "deliver": "deliveries",
    "ack": "broadcasts_acked",
    "decide": "decisions",
    "crash": "crashes",
    "discard": "discards",
    "drop": "drops",
    "topo": "topo_records",
}

#: Counter names rendered first (engine counters a derived table
#: cannot know come after, in snapshot order).
_COUNTER_ORDER = ("broadcasts_opened", "broadcasts_acked", "deliveries",
                  "drops", "decisions", "crashes", "discards",
                  "topo_records")


def derive_spans(records: Iterable) -> Tuple[Dict[str, List[float]],
                                             Dict[str, int]]:
    """Replay span semantics over a record stream.

    Returns ``(samples, counts)``: the ``f_ack``/``f_prog``/``f_cover``
    sample lists plus per-kind record counts, from one pass. Accepts
    any iterable of :class:`~repro.macsim.trace.TraceRecord` (a sink,
    ``iter_saved_records``, a decoded chunk's ``records()``).
    """
    starts: Dict[int, float] = {}
    first: Dict[int, float] = {}
    last: Dict[int, float] = {}
    f_ack: List[float] = []
    f_prog: List[float] = []
    f_cover: List[float] = []
    counts = {kind: 0 for kind in TRACE_KINDS}
    for rec in records:
        kind = rec.kind
        counts[kind] += 1
        rule = SPAN_RULES[kind]
        if rule == "deliver":
            bid = rec.broadcast_id
            if bid in starts:
                if bid not in first:
                    first[bid] = rec.time
                last[bid] = rec.time
        elif rule == "open":
            starts[rec.broadcast_id] = rec.time
        elif rule == "close":
            bid = rec.broadcast_id
            start = starts.pop(bid, None)
            if start is None:
                continue  # counting-level trace or duplicate ack
            f_ack.append(rec.time - start)
            t_first = first.pop(bid, None)
            if t_first is not None:
                f_prog.append(t_first - start)
                f_cover.append(last.pop(bid) - start)
    return ({"f_ack": f_ack, "f_prog": f_prog, "f_cover": f_cover},
            counts)


# ---------------------------------------------------------------------------
# Vectorized columnar derivation
# ---------------------------------------------------------------------------

_NO_ACK = 1 << 62


class _SpanColumns:
    """Grow-on-demand per-bid state for the whole-chunk pass."""

    __slots__ = ("cap", "start", "bpos", "ack_pos", "ack_time",
                 "first", "last")

    def __init__(self, np) -> None:
        self.cap = 0
        self.start = np.empty(0)
        self.bpos = np.empty(0, dtype=np.int64)
        self.ack_pos = np.empty(0, dtype=np.int64)
        self.ack_time = np.empty(0)
        self.first = np.empty(0)
        self.last = np.empty(0)

    def ensure(self, np, max_bid: int) -> None:
        if max_bid < self.cap:
            return
        new_cap = max(max_bid + 1, self.cap * 2, 1024)
        grown = new_cap - self.cap

        def extend(col, fill, dtype=None):
            tail = np.full(grown, fill, dtype=dtype)
            return np.concatenate([col, tail])

        self.start = extend(self.start, np.nan)
        self.bpos = extend(self.bpos, -1, np.int64)
        self.ack_pos = extend(self.ack_pos, _NO_ACK, np.int64)
        self.ack_time = extend(self.ack_time, np.nan)
        self.first = extend(self.first, np.inf)
        self.last = extend(self.last, -np.inf)
        self.cap = new_cap


def derive_spans_columnar(path: str) -> Optional[
        Tuple[Dict[str, List[float]], Dict[str, int]]]:
    """Whole-chunk span derivation for ``columnar-chunks`` exports.

    Processes each decoded chunk's columns with numpy (broadcasts,
    then acks, then deliveries; global row positions resolve
    intra-chunk ordering exactly as the record stream would). Returns
    ``None`` to decline -- no numpy, negative MAC broadcast ids, or a
    reused/duplicated bid the position trick cannot order -- and the
    caller falls back to the streamed derivation, which is always
    correct.
    """
    from ..macsim.columnar import (KIND_CODES, decode_chunk, have_numpy)
    if not have_numpy():
        return None
    import numpy as np

    kb = KIND_CODES["broadcast"]
    kd = KIND_CODES["deliver"]
    ka = KIND_CODES["ack"]
    state = _SpanColumns(np)
    kind_hist = np.zeros(len(TRACE_KINDS), dtype=np.int64)
    base = 0
    for blob in _export._iter_columnar_blobs(path):
        chunk = decode_chunk(blob)
        n = chunk.n
        if not n:
            continue
        kinds = np.asarray(chunk.kinds)
        kind_hist += np.bincount(kinds, minlength=len(TRACE_KINDS))
        times = np.asarray(chunk.times)
        bids = np.asarray(chunk.bids, dtype=np.int64)
        is_b = kinds == kb
        is_d = kinds == kd
        is_a = kinds == ka
        mac = is_b | is_d | is_a
        if not mac.any():
            base += n
            continue
        if (bids[mac] < 0).any():
            return None  # None ids on MAC kinds: cannot key spans
        state.ensure(np, int(bids[mac].max()))
        pos = np.arange(base, base + n, dtype=np.int64)

        bb = bids[is_b]
        if bb.size:
            if np.unique(bb).size != bb.size:
                return None  # bid reused within one chunk
            if (state.bpos[bb] >= 0).any():
                return None  # bid reused across chunks
            state.start[bb] = times[is_b]
            state.bpos[bb] = pos[is_b]

        ab = bids[is_a]
        if ab.size:
            if np.unique(ab).size != ab.size:
                return None
            if (state.ack_pos[ab] != _NO_ACK).any():
                return None  # second ack for a bid
            apos = pos[is_a]
            atime = times[is_a]
            known = (state.bpos[ab] >= 0) & (state.bpos[ab] < apos)
            abk = ab[known]
            state.ack_pos[abk] = apos[known]
            state.ack_time[abk] = atime[known]

        db = bids[is_d]
        if db.size:
            dpos = pos[is_d]
            dtimes = times[is_d]
            bpos = state.bpos[db]
            ok = (bpos >= 0) & (bpos < dpos) & (dpos < state.ack_pos[db])
            if ok.any():
                dbo = db[ok]
                dto = dtimes[ok]
                np.minimum.at(state.first, dbo, dto)
                np.maximum.at(state.last, dbo, dto)
        base += n

    closed = state.ack_pos != _NO_ACK
    f_ack = (state.ack_time - state.start)[closed]
    with_deliveries = closed & np.isfinite(state.first)
    f_prog = (state.first - state.start)[with_deliveries]
    f_cover = (state.last - state.start)[with_deliveries]
    samples = {"f_ack": f_ack.tolist(), "f_prog": f_prog.tolist(),
               "f_cover": f_cover.tolist()}
    counts = {kind: int(kind_hist[code])
              for kind, code in KIND_CODES.items()}
    return samples, counts


# ---------------------------------------------------------------------------
# File dispatch
# ---------------------------------------------------------------------------

def _counters_from_counts(counts: Dict[str, int]) -> Dict[str, int]:
    return {KIND_TO_COUNTER[kind]: counts.get(kind, 0)
            for kind in TRACE_KINDS}


def _doc_from_snapshot(snapshot: Dict[str, Any], path: str,
                       source: str) -> Dict[str, Any]:
    doc = {
        "schema": "stats/v1",
        "path": path,
        "source": source,
        "spans": snapshot.get("spans", {}),
        "counters": snapshot.get("counters", {}),
    }
    for key in ("label", "context", "aborted", "error", "wall_seconds",
                "phases", "phase_residual_seconds"):
        if snapshot.get(key) is not None:
            doc[key] = snapshot[key]
    return doc


def _doc_from_derivation(samples: Dict[str, List[float]],
                         counts: Dict[str, int], path: str,
                         source: str) -> Dict[str, Any]:
    return {
        "schema": "stats/v1",
        "path": path,
        "source": source,
        "spans": {name: summarize_samples(values)
                  for name, values in samples.items()},
        "counters": _counters_from_counts(counts),
    }


def stats_from_file(path: str, *, derive: bool = False) -> Dict[str, Any]:
    """Build the stats document for any supported artifact.

    ``derive=True`` forces re-derivation from the records even when
    the export header embeds a live telemetry snapshot (the identity
    acceptance test compares the two).
    """
    # Telemetry snapshots and v1/v2 single documents are probed
    # *before* the streamed-export header parse: a single-line
    # telemetry JSON has a string ``schema``, which the v3+ header
    # reader would choke on.
    with open(path, "rb") as handle:
        first = handle.readline()
    first_doc: Optional[Any] = None
    try:
        first_doc = json.loads(first)
    except (json.JSONDecodeError, UnicodeDecodeError):
        first_doc = None
    if first_doc is None or not isinstance(first_doc, dict):
        # Indented JSON (``Telemetry.write``, ``trace_to_json`` with
        # indent): the first line alone does not parse.
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        return _stats_from_inline(document, path, derive=derive)
    if first_doc.get("schema") == TELEMETRY_SCHEMA:
        return _doc_from_snapshot(first_doc, path, "telemetry")
    if first_doc.get("schema") in SERVICE_SCHEMAS:
        # Compact (single-line) service artifact: the first line is
        # the whole document.
        return service_doc(first_doc, path)
    if first_doc.get("schema") in (1, _export.INLINE_SCHEMA_VERSION) \
            and "records" in first_doc:
        return _stats_from_inline(first_doc, path, derive=derive)
    if isinstance(first_doc.get("schema"), str):
        # An unrecognized *named* schema would crash the export
        # header parser (integer versions only) -- fail here, naming
        # what this command can ingest.
        raise ValueError(_unsupported_artifact(path,
                                               first_doc["schema"]))
    return _stats_from_export(path, derive=derive)


def _stats_from_inline(document: Dict[str, Any], path: str, *,
                       derive: bool) -> Dict[str, Any]:
    if document.get("schema") == TELEMETRY_SCHEMA:
        return _doc_from_snapshot(document, path, "telemetry")
    if document.get("schema") in SERVICE_SCHEMAS:
        return service_doc(document, path)
    if "records" not in document:
        raise ValueError(_unsupported_artifact(path, document.get("schema")))
    embedded = (document.get("metadata") or {}).get("telemetry")
    if embedded and not derive:
        return _doc_from_snapshot(embedded, path, "embedded-telemetry")
    records = (_export._record_from_dict(rec)
               for rec in document["records"])
    samples, counts = derive_spans(records)
    return _doc_from_derivation(samples, counts, path, "derived-inline")


def _unsupported_artifact(path: str, schema: Any = None) -> str:
    """Error text naming every schema ``repro stats`` understands."""
    got = f" (schema: {schema!r})" if schema is not None else ""
    return (f"not a stats-able artifact: {path}{got}; expected a "
            f"trace export (v1-v{_export.SCHEMA_VERSION}, JSONL or "
            f"columnar), a {TELEMETRY_SCHEMA} snapshot, or one of: "
            + ", ".join(SERVICE_SCHEMAS))


def _stats_from_export(path: str, *, derive: bool) -> Dict[str, Any]:
    header = _export._read_header(path)
    if header is None:
        raise ValueError(_unsupported_artifact(path))
    embedded = (header.get("metadata") or {}).get("telemetry")
    if embedded and not derive:
        return _doc_from_snapshot(embedded, path, "embedded-telemetry")
    if header.get("format") == "columnar-chunks":
        vectorized = derive_spans_columnar(path)
        if vectorized is not None:
            samples, counts = vectorized
            return _doc_from_derivation(samples, counts, path,
                                        "derived-columnar")
        source = "derived-columnar-stream"
    else:
        source = "derived-jsonl"
    samples, counts = derive_spans(_export.iter_saved_records(path))
    return _doc_from_derivation(samples, counts, path, source)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_stats(doc: Dict[str, Any]) -> str:
    """The stats document as aligned ASCII tables."""
    if doc.get("schema") == SERVICE_STATS_SCHEMA:
        return render_service_stats(doc)
    blocks: List[str] = []
    context = doc.get("context") or {}
    head = [f"source: {doc['source']}"]
    if doc.get("label"):
        head.append(f"label: {doc['label']}")
    head.extend(f"{key}: {value}" for key, value in context.items()
                if value is not None)
    if doc.get("aborted"):
        head.append(f"ABORTED: {doc.get('error')}")
    blocks.append("\n".join(head))

    spans = doc.get("spans") or {}
    rows = [[name, summary.get("count", 0)] +
            [_fmt(summary.get(k))
             for k in ("min", "p50", "p95", "max", "mean")]
            for name, summary in spans.items()]
    if rows:
        blocks.append(format_table(
            ["metric", "count", "min", "p50", "p95", "max", "mean"],
            rows, title="measured MAC spans (simulated time)"))

    counters = doc.get("counters") or {}
    ordered = [key for key in _COUNTER_ORDER if key in counters]
    ordered += [key for key in counters if key not in _COUNTER_ORDER]
    if ordered:
        blocks.append(format_table(
            ["counter", "value"],
            [[key, counters[key]] for key in ordered],
            title="counters"))

    phases = doc.get("phases") or {}
    if phases:
        rows = [[name, info.get("calls", 0),
                 _fmt(info.get("seconds"))]
                for name, info in phases.items()]
        residual = doc.get("phase_residual_seconds")
        if residual is not None:
            rows.append(["(run-loop residual)", "-", _fmt(residual)])
        if doc.get("wall_seconds") is not None:
            rows.append(["(total wall)", "-",
                         _fmt(doc["wall_seconds"])])
        blocks.append(format_table(["phase", "calls", "seconds"], rows,
                                   title="phase profile (wall time)"))
    return "\n\n".join(blocks)
