"""Metrics extraction from execution traces."""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping, Optional

from ..macsim import RunResult, TraceSink, check_consensus


@dataclass
class RunMetrics:
    """Everything an experiment row needs from one run."""

    algorithm: str
    topology: str
    n: int
    diameter: int
    f_ack: float
    scheduler: str
    correct: bool
    agreement: bool
    validity: bool
    termination: bool
    first_decision: Optional[float]
    last_decision: Optional[float]
    broadcasts: int
    max_broadcasts_per_node: int
    deliveries: int
    events: int
    stop_reason: str
    #: Algorithm-specific observables harvested by a runner ``probe``
    #: (e.g. Ben-Or round counts); ``None`` when no probe ran.
    extras: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the result-cache wire format).

        Every field is a JSON scalar except ``extras``, which is
        JSON-pure by construction (telemetry snapshots, connectivity
        reports, probe harvests of scalars).
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunMetrics":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored,
        for forward compatibility with newer cache entries)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def normalized_time(self) -> Optional[float]:
        """Last decision time in units of ``F_ack``."""
        if self.last_decision is None:
            return None
        return self.last_decision / self.f_ack

    @property
    def time_per_diameter(self) -> Optional[float]:
        """Last decision time over ``D * F_ack`` (the Thm 4.6 shape)."""
        if self.last_decision is None or self.diameter == 0:
            return None
        return self.last_decision / (self.diameter * self.f_ack)


def collect_metrics(*, algorithm: str, topology: str, graph,
                    scheduler, result: Optional[RunResult] = None,
                    initial_values: Dict[Any, int],
                    diameter: Optional[int] = None,
                    faulty: frozenset = frozenset(),
                    untrusted: Optional[frozenset] = None,
                    extras: Optional[Dict[str, Any]] = None,
                    trace: Optional[TraceSink] = None,
                    events: int = 0,
                    stop_reason: str = "replay") -> RunMetrics:
    """Build a :class:`RunMetrics` from a completed run.

    ``faulty`` scopes the consensus properties to correct nodes and
    ``untrusted`` the validity input set (fault-model runs); see
    :func:`repro.macsim.invariants.check_consensus`.

    Pass either a live ``result`` (the simulation path) or a bare
    ``trace`` sink without one (the disk-replay path: a reloaded
    export or a reopened :class:`~repro.macsim.columnar.ColumnarSink`
    spill directory). Every field then comes from the sink's
    counters/decision index -- O(1) on every sink -- with ``events``
    and ``stop_reason`` taken from the keyword defaults since the
    engine loop is not around to report them.
    """
    if result is not None:
        trace = result.trace
        events = result.events_processed
        stop_reason = result.stop_reason
    elif trace is None:
        raise TypeError("collect_metrics needs a result or a trace")
    report = check_consensus(trace, initial_values, faulty=faulty,
                             untrusted=untrusted)
    times = trace.decision_times()
    per_node = trace.broadcasts_per_node()
    return RunMetrics(
        algorithm=algorithm,
        topology=topology,
        n=graph.n,
        diameter=graph.diameter() if diameter is None else diameter,
        f_ack=scheduler.f_ack,
        scheduler=type(scheduler).__name__,
        correct=report.ok,
        agreement=report.agreement,
        validity=report.validity,
        termination=report.termination,
        first_decision=min(times.values()) if times else None,
        last_decision=max(times.values()) if times else None,
        broadcasts=trace.broadcast_count(),
        max_broadcasts_per_node=max(per_node.values(), default=0),
        deliveries=trace.delivery_count(),
        events=events,
        stop_reason=stop_reason,
        extras=extras,
    )
