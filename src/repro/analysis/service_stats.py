"""Reductions and tables for service observability artifacts.

The serve path emits three artifact families — request-span trees
(``service-spans/v1``, from ``repro serve --trace-requests``), windowed
metrics snapshots (``service-metrics/v1``, from ``--metrics-out`` or a
``--json-out`` report's ``metrics`` key) and per-group telemetry
attribution (``service-telemetry/v1``, from ``--telemetry``). This
module reduces any of them to one renderable stats document
(``service-stats/v1``) behind ``repro stats``, and is the reduction
the acceptance tests pin: the latency summary derived here from a span
artifact equals — exactly, nearest-rank percentile for percentile —
the report the service printed, whether the run was serial, sharded,
or replayed from JSON.

Span anatomy (all virtual time, see
:data:`repro.macsim.service.tracing.SPAN_STAGES`)::

    enqueue ----> batch_admit ==> slot_start ----> decide ----> reply
            queueing          (coincide)    consensus       commit
            delay                           decision        fanout

* ``queueing``  = batch_admit - enqueue  (wait behind the group's slot)
* ``service``   = reply - batch_admit    (the slot's whole execution)
* ``decide``    = decide - slot_start    (time to the last decision)
* ``total``     = reply - enqueue        (== the service's latency)
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..macsim.service.tracing import (METRICS_SCHEMA, SPAN_SCHEMA,
                                      latency_summary)
from .tables import format_table

__all__ = ["SERVICE_SCHEMAS", "SERVICE_STATS_SCHEMA",
           "SERVICE_TELEMETRY_SCHEMA", "reduce_spans", "reduce_metrics",
           "reduce_service_telemetry", "service_doc",
           "service_doc_from_file", "render_service_stats"]

SERVICE_TELEMETRY_SCHEMA = "service-telemetry/v1"
#: Schema of the reduced (renderable) document this module produces.
SERVICE_STATS_SCHEMA = "service-stats/v1"
#: Service artifact schemas ``repro stats`` accepts via this module.
SERVICE_SCHEMAS = (SPAN_SCHEMA, METRICS_SCHEMA, SERVICE_TELEMETRY_SCHEMA)

_HIST_BUCKETS = 8


def _histogram(samples: Sequence[float], top: float) -> Dict[str, Any]:
    """Fixed-width bucket counts over ``[0, top]`` (shared across
    groups so the per-group histograms are visually comparable)."""
    counts = [0] * _HIST_BUCKETS
    if top <= 0.0:
        top = 1.0
    width = top / _HIST_BUCKETS
    for s in samples:
        idx = min(_HIST_BUCKETS - 1, int(s / width))
        counts[idx] += 1
    return {"top": top, "counts": counts}


def reduce_spans(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Reduce a ``service-spans/v1`` artifact to breakdowns.

    The ``total`` summary is :func:`latency_summary` over
    ``reply - enqueue`` of committed requests — the *same* function
    over the *same* multiset the service used, so it reproduces the
    reported p50/p99 exactly.
    """
    records = doc.get("requests", [])
    ok_records = [r for r in records if r.get("ok")]
    total = [r["reply"] - r["enqueue"] for r in ok_records]
    queueing = [r["batch_admit"] - r["enqueue"] for r in ok_records]
    service = [r["reply"] - r["batch_admit"] for r in ok_records]
    decide = [r["decide"] - r["slot_start"] for r in ok_records]
    top = max(total) if total else 0.0

    per_group: Dict[str, Any] = {}
    groups = sorted({r["group"] for r in records})
    for gid in groups:
        recs = [r for r in ok_records if r["group"] == gid]
        lats = [r["reply"] - r["enqueue"] for r in recs]
        per_group[str(gid)] = {
            "requests": len(recs),
            "failed": sum(1 for r in records
                          if r["group"] == gid and not r.get("ok")),
            "slots": len({r["slot"] for r in records
                          if r["group"] == gid}),
            "latency": latency_summary(lats),
            "queueing": latency_summary(
                [r["batch_admit"] - r["enqueue"] for r in recs]),
            "service": latency_summary(
                [r["reply"] - r["batch_admit"] for r in recs]),
            "histogram": _histogram(lats, top),
        }
    per_shard: Dict[str, int] = {}
    for r in records:
        key = str(r.get("shard", 0))
        per_shard[key] = per_shard.get(key, 0) + 1
    return {
        "schema": SERVICE_STATS_SCHEMA,
        "kind": "spans",
        "requests": len(ok_records),
        "failed": len(records) - len(ok_records),
        "latency": latency_summary(total),
        "breakdown": {
            "queueing": latency_summary(queueing),
            "service": latency_summary(service),
            "decide": latency_summary(decide),
            "total": latency_summary(total),
        },
        "per_group": per_group,
        "per_shard": dict(sorted(per_shard.items(), key=lambda kv:
                                 int(kv[0]))),
        "scheduler": doc.get("scheduler"),
    }


def reduce_metrics(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Reduce a ``service-metrics/v1`` snapshot to renderable series."""
    windows = [{
        "start": win["start"],
        "end": win["end"],
        "arrivals": win["arrivals"],
        "commits": win["commits"],
        "rps": win["rps"],
        "in_flight": win["in_flight"],
        "latency": win["latency"],
    } for win in doc.get("windows", [])]
    return {
        "schema": SERVICE_STATS_SCHEMA,
        "kind": "metrics",
        "window": doc.get("window"),
        "dropped_windows": doc.get("dropped_windows", 0),
        "windows": windows,
        "groups": doc.get("groups", {}),
        "totals": doc.get("totals", {}),
        "counters": doc.get("counters", {}),
    }


def reduce_service_telemetry(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Per-group attribution table from a ``service-telemetry/v1``
    artifact (the satellite fix: this schema previously fell through
    to the generic trace path)."""
    groups: Dict[str, Any] = {}
    for gid, acc in doc.get("groups", {}).items():
        slots = acc.get("slots", 0)
        events = acc.get("events_processed", 0)
        groups[gid] = {
            "slots": slots,
            "events_processed": events,
            "wall_seconds": acc.get("wall_seconds", 0.0),
            "events_per_slot": (events / slots) if slots else 0.0,
            "deliveries": acc.get("counters", {}).get("deliveries"),
        }
    return {
        "schema": SERVICE_STATS_SCHEMA,
        "kind": "service-telemetry",
        "groups": dict(sorted(groups.items(),
                              key=lambda kv: int(kv[0]))),
        "totals": doc.get("totals", {}),
    }


def service_doc(document: Dict[str, Any],
                path: Optional[str] = None) -> Dict[str, Any]:
    """Dispatch a raw service artifact to its reduction."""
    schema = document.get("schema")
    if schema == SPAN_SCHEMA:
        doc = reduce_spans(document)
    elif schema == METRICS_SCHEMA:
        doc = reduce_metrics(document)
    elif schema == SERVICE_TELEMETRY_SCHEMA:
        doc = reduce_service_telemetry(document)
    else:
        raise ValueError(
            f"not a service artifact: {path or '<doc>'} "
            f"(expected schema one of {', '.join(SERVICE_SCHEMAS)}; "
            f"got {schema!r})")
    doc["source"] = path or "<doc>"
    return doc


def service_doc_from_file(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"not a service artifact: {path}")
    return service_doc(document, path)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_SUMMARY_COLS = ("count", "mean", "p50", "p95", "p99", "max")


def _summary_row(name: str, summary: Dict[str, Any]) -> List[Any]:
    return [name] + [summary.get(col) for col in _SUMMARY_COLS]


def _hist_cell(hist: Dict[str, Any]) -> str:
    return "/".join(str(c) for c in hist["counts"])


def _render_spans(doc: Dict[str, Any]) -> str:
    blocks: List[str] = []
    head = [f"source: {doc['source']}",
            f"requests: {doc['requests']}  failed: {doc['failed']}  "
            f"groups: {len(doc['per_group'])}  "
            f"shards: {len(doc['per_shard'])}"]
    blocks.append("\n".join(head))
    rows = [_summary_row(stage, doc["breakdown"][stage])
            for stage in ("queueing", "service", "decide", "total")]
    blocks.append(format_table(
        ["stage"] + list(_SUMMARY_COLS), rows,
        title="latency breakdown (virtual time)"))
    grows = []
    for gid, cell in doc["per_group"].items():
        latency = cell["latency"]
        grows.append([gid, cell["requests"], cell["failed"],
                      cell["slots"], latency.get("p50"),
                      latency.get("p99"), cell["queueing"].get("p50"),
                      cell["service"].get("p50"),
                      _hist_cell(cell["histogram"])])
    blocks.append(format_table(
        ["group", "requests", "failed", "slots", "p50", "p99",
         "queue p50", "service p50", "histogram"], grows,
        title="per-group latency"))
    scheduler = doc.get("scheduler")
    if scheduler:
        totals = scheduler["totals"]
        srows = [[shard,
                  prof.get("advance_seconds"),
                  prof.get("engine_seconds"),
                  prof.get("overhead_seconds"),
                  prof.get("overhead_fraction")]
                 for shard, prof in scheduler["shards"].items()]
        srows.append(["total", totals.get("advance_seconds"),
                      totals.get("engine_seconds"),
                      totals.get("overhead_seconds"),
                      totals.get("overhead_fraction")])
        blocks.append(format_table(
            ["shard", "advance s", "engine s", "overhead s",
             "overhead frac"], srows,
            title="cross-group scheduler overhead (wall clock)"))
    return "\n\n".join(blocks)


def _render_metrics(doc: Dict[str, Any]) -> str:
    blocks: List[str] = []
    totals = doc["totals"]
    head = [f"source: {doc['source']}",
            f"window: {doc['window']}  "
            f"dropped_windows: {doc['dropped_windows']}",
            f"arrivals: {totals.get('arrivals', 0)}  "
            f"commits: {totals.get('commits', 0)}  "
            f"failed: {totals.get('failed', 0)}  "
            f"in-flight: {totals.get('in_flight_final', 0)}"]
    blocks.append("\n".join(head))
    wrows = [[win["start"], win["arrivals"], win["commits"],
              win["rps"], win["in_flight"],
              win["latency"].get("p50"), win["latency"].get("p99")]
             for win in doc["windows"]]
    blocks.append(format_table(
        ["t", "arrivals", "commits", "rps", "in-flight", "p50",
         "p99"], wrows, title="time series (virtual-time windows)"))
    grows = [[gid, cell.get("arrivals"), cell.get("commits"),
              cell.get("failed"), cell.get("queue_peak"),
              cell.get("latency", {}).get("p50"),
              cell.get("latency", {}).get("p99")]
             for gid, cell in doc["groups"].items()]
    blocks.append(format_table(
        ["group", "arrivals", "commits", "failed", "queue peak",
         "p50", "p99"], grows, title="per-group totals"))
    counters = doc.get("counters")
    if counters:
        blocks.append(format_table(
            ["counter", "value"],
            [[name, value] for name, value in counters.items()],
            title="counters"))
    return "\n\n".join(blocks)


def _render_service_telemetry(doc: Dict[str, Any]) -> str:
    blocks: List[str] = []
    totals = doc["totals"]
    blocks.append("\n".join([
        f"source: {doc['source']}",
        f"slots: {totals.get('slots', 0)}  "
        f"events: {totals.get('events_processed', 0)}  "
        f"wall: {totals.get('wall_seconds', 0.0):.3f}s"]))
    rows = [[gid, cell["slots"], cell["events_processed"],
             cell["events_per_slot"], cell["wall_seconds"],
             cell["deliveries"]]
            for gid, cell in doc["groups"].items()]
    blocks.append(format_table(
        ["group", "slots", "events", "events/slot", "wall s",
         "deliveries"], rows,
        title="per-group engine attribution"))
    return "\n\n".join(blocks)


def render_service_stats(doc: Dict[str, Any]) -> str:
    """A reduced service document as aligned ASCII tables."""
    kind = doc.get("kind")
    if kind == "spans":
        return _render_spans(doc)
    if kind == "metrics":
        return _render_metrics(doc)
    if kind == "service-telemetry":
        return _render_service_telemetry(doc)
    raise ValueError(f"unknown service stats kind: {kind!r}")
