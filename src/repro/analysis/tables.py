"""ASCII table rendering for experiment reports.

The experiment drivers print the same rows that EXPERIMENTS.md records;
this module keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence


def format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[Any]]) -> str:
    """Render a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    cells = [[format_cell(v) for v in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(row) + " |" for row in cells)
    return "\n".join(lines)
