"""Trace export/import.

Execution traces are the ground truth of every experiment; exporting
them lets users diff runs, archive experiment evidence next to
EXPERIMENTS.md, or analyse executions with external tooling. Payloads
are stored as ``repr`` strings: traces round-trip structurally
(times, kinds, nodes, broadcast ids) with payloads preserved for
human inspection rather than re-execution.

Streaming (schema v6)
---------------------
:func:`save_trace` writes a header line (schema / metadata / crash
scenario / embedded :class:`~repro.scenario.Scenario`) followed by the
record stream in one of two chunked layouts, declared by the header's
``format`` field:

* ``jsonl-chunks`` -- one JSON array of records per line, serialized
  straight off the sink's iterator (the v3-v5 layout, still the
  default). Exporting a :class:`~repro.macsim.trace.SpillSink` run of
  10^7+ events never materializes the record list.
* ``columnar-chunks`` (new in v6) -- written automatically for
  :class:`~repro.macsim.columnar.ColumnarSink` traces: the sink's
  binary chunk blobs are copied verbatim after the header
  (length-prefixed, zero-length sentinel, then a JSON chunk manifest
  line), so the export is a near-memcpy of the spill directory and
  stays 5-10x smaller than JSONL.

:func:`load_trace` streams either layout back -- into any
:class:`~repro.macsim.trace.TraceSink` (pass ``sink=SpillSink(...)``
or a ``ColumnarSink`` to keep the reload bounded too) -- and still
reads the v1-v5 exports of earlier PRs. A file whose header embeds a
scenario can rebuild and re-execute the exact run
(:func:`load_scenario`); ``repro replay`` works on both layouts.

:func:`trace_to_json` keeps the v2 single-document layout: it is the
in-memory diff/archival format for small traces (and what the
byte-identity tests compare).

Crash *scenarios* round-trip losslessly: ``save_trace(...,
crashes=plans)`` serializes each :class:`~repro.macsim.crash.CrashPlan`
via its ``to_dict`` (the None / empty / subset distinction of
``still_delivered`` survives -- frozen sets no longer stringify), and
:func:`load_crashes` rebuilds equal plans that can re-drive a
simulation.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..macsim.crash import CrashPlan
from ..macsim.trace import Trace, TraceRecord, TraceSink

#: Schema version stamped into streamed file exports.
#: v4 added the embedded :class:`~repro.scenario.Scenario` (the full
#: declarative run description, so a trace file can rebuild and
#: re-execute the exact run); v5 extends the embedded scenario with
#: the optional ``dynamics`` spec and the record stream with
#: JSON-lossless ``topo`` records, so dynamic-topology runs replay
#: byte-identically too; v6 adds the binary ``columnar-chunks``
#: layout (``format`` header field) for
#: :class:`~repro.macsim.columnar.ColumnarSink` traces. v1-v5 files
#: still load.
SCHEMA_VERSION = 6

#: Length prefix of each binary chunk blob in columnar exports (a
#: zero length terminates the stream; the chunk manifest follows).
_CHUNK_LEN = struct.Struct("<Q")

#: Schema of the single-document layout (:func:`trace_to_json`).
INLINE_SCHEMA_VERSION = 2

#: Records per chunk line in v3 exports.
EXPORT_CHUNK_RECORDS = 50_000


def record_to_dict(record: TraceRecord, *,
                   preserialized: bool = False) -> Dict[str, Any]:
    """One record as a JSON-serializable dict."""
    payload = record.payload
    if payload is not None and not preserialized:
        payload = repr(payload)
    return {
        "time": record.time,
        "kind": record.kind,
        "node": _label(record.node),
        "broadcast_id": record.broadcast_id,
        "peer": _label(record.peer),
        "payload": payload,
    }


def iter_trace_dicts(trace: TraceSink) -> Iterator[Dict[str, Any]]:
    """Stream a sink's records as JSON-serializable dicts, in order.

    Sinks that replay ``repr``-serialized payloads (``SpillSink``)
    are passed through without a second ``repr``.
    """
    preserialized = getattr(trace, "payloads_preserialized", False)
    for record in trace:
        yield record_to_dict(record, preserialized=preserialized)


def trace_to_records(trace: TraceSink) -> List[Dict[str, Any]]:
    """Convert a trace to JSON-serializable dicts (materialized)."""
    return list(iter_trace_dicts(trace))


def trace_to_json(trace: TraceSink, *, indent: Optional[int] = None,
                  metadata: Optional[Dict[str, Any]] = None,
                  crashes: Iterable[CrashPlan] = ()) -> str:
    """Serialize a trace (plus metadata and crash scenario) to a v2
    single-document JSON string (in-memory diff format)."""
    document = {
        "schema": INLINE_SCHEMA_VERSION,
        "metadata": metadata or {},
        "crashes": [plan.to_dict() for plan in crashes],
        "records": trace_to_records(trace),
    }
    return json.dumps(document, indent=indent)


def _parse_document(text: str) -> dict:
    document = json.loads(text)
    if document.get("schema") not in (1, INLINE_SCHEMA_VERSION):
        raise ValueError(
            f"unsupported trace schema: {document.get('schema')!r}")
    return document


def _record_from_dict(rec: Dict[str, Any]) -> TraceRecord:
    return TraceRecord(
        time=rec["time"], kind=rec["kind"], node=rec["node"],
        broadcast_id=rec["broadcast_id"], peer=rec["peer"],
        payload=rec["payload"])


def trace_from_json(text: str) -> Trace:
    """Rebuild a structural trace from a v1/v2 JSON document.

    Payloads come back as their ``repr`` strings; all timing/topology
    queries (decision times, counts, crashed nodes) work as on the
    original.
    """
    document = _parse_document(text)
    trace = Trace()
    for rec in document["records"]:
        trace.append(_record_from_dict(rec))
    return trace


def crashes_from_json(text: str) -> List[CrashPlan]:
    """The crash scenario stored in an export (empty for v1 files)."""
    document = _parse_document(text)
    return [CrashPlan.from_dict(entry)
            for entry in document.get("crashes", ())]


def save_trace(trace: TraceSink, path: str, *,
               metadata: Optional[Dict[str, Any]] = None,
               crashes: Iterable[CrashPlan] = (),
               scenario=None,
               chunk_records: int = EXPORT_CHUNK_RECORDS) -> None:
    """Write a streamed (schema v6) trace export.

    JSONL layout: records are written ``chunk_records`` at a time
    straight off the sink's iterator -- peak memory is O(chunk)
    regardless of trace length, which is what makes exporting a
    :class:`~repro.macsim.trace.SpillSink` run feasible. Columnar
    sinks instead get the binary ``columnar-chunks`` layout: their
    encoded chunk blobs are copied into the file verbatim, so the
    export costs one sequential read of the spill directory.

    ``scenario`` (a :class:`~repro.scenario.Scenario`, or anything
    with a compatible ``to_dict``) embeds the declarative run
    description in the header; :func:`load_scenario` reads it back so
    the exact execution can be rebuilt and replayed.
    """
    columnar = getattr(trace, "columnar", False)
    header = {
        "schema": SCHEMA_VERSION,
        "format": "columnar-chunks" if columnar else "jsonl-chunks",
        "metadata": metadata or {},
        "crashes": [plan.to_dict() for plan in crashes],
        "scenario": scenario.to_dict() if scenario is not None else None,
    }
    if columnar:
        _save_columnar(trace, path, header)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header))
        handle.write("\n")
        chunk: List[Dict[str, Any]] = []
        for rec in iter_trace_dicts(trace):
            chunk.append(rec)
            if len(chunk) >= chunk_records:
                handle.write(json.dumps(chunk))
                handle.write("\n")
                chunk = []
        if chunk:
            handle.write(json.dumps(chunk))
            handle.write("\n")


def _save_columnar(trace: TraceSink, path: str, header: dict) -> None:
    """Binary ``columnar-chunks`` body: header line, length-prefixed
    chunk blobs copied verbatim, zero sentinel, chunk manifest line."""
    chunks = 0
    total = 0
    with open(path, "wb") as handle:
        handle.write(json.dumps(header).encode("utf-8"))
        handle.write(b"\n")
        for blob in trace.iter_chunk_blobs():
            handle.write(_CHUNK_LEN.pack(len(blob)))
            handle.write(blob)
            chunks += 1
            total += len(blob)
        handle.write(_CHUNK_LEN.pack(0))
        manifest = {"chunks": chunks, "records": len(trace),
                    "chunk_bytes": total}
        handle.write(json.dumps(manifest).encode("utf-8"))
        handle.write(b"\n")


def _iter_columnar_blobs(path: str) -> Iterator[bytes]:
    with open(path, "rb") as handle:
        handle.readline()  # header
        while True:
            prefix = handle.read(_CHUNK_LEN.size)
            if len(prefix) < _CHUNK_LEN.size:
                raise ValueError(f"truncated columnar export: {path}")
            (length,) = _CHUNK_LEN.unpack(prefix)
            if length == 0:
                return
            blob = handle.read(length)
            if len(blob) < length:
                raise ValueError(f"truncated columnar export: {path}")
            yield blob


def _read_header(path: str) -> Optional[dict]:
    """The v3+ header line, or ``None`` for v1/v2 single documents.

    Opens in binary: v6 columnar exports carry compressed chunk blobs
    after the (utf-8 JSON) header line.
    """
    with open(path, "rb") as handle:
        first = handle.readline()
    try:
        header = json.loads(first)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if isinstance(header, dict) and header.get("schema", 0) >= 3:
        if header["schema"] > SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trace schema: {header['schema']!r}")
        return header
    return None


def iter_saved_records(path: str) -> Iterator[TraceRecord]:
    """Stream the records of a v3+ export without materializing them
    (either chunk layout)."""
    header = _read_header(path)
    if header is not None and header.get("format") == "columnar-chunks":
        from ..macsim.columnar import decode_chunk
        for blob in _iter_columnar_blobs(path):
            yield from decode_chunk(blob).records()
        return
    with open(path, encoding="utf-8") as handle:
        handle.readline()  # header
        for line in handle:
            if not line.strip():
                continue
            for rec in json.loads(line):
                yield _record_from_dict(rec)


def load_trace(path: str, *, sink: Optional[TraceSink] = None) -> TraceSink:
    """Read a trace export from ``path`` (any schema version).

    ``sink`` receives the records (default: a fresh in-memory
    :class:`Trace`); pass a :class:`~repro.macsim.trace.SpillSink` to
    keep a huge reload in bounded memory. v3 files are streamed chunk
    by chunk; v1/v2 single documents are parsed whole.
    """
    trace = sink if sink is not None else Trace()
    # Exported payloads are already repr strings; sinks that
    # re-serialize on ingest (SpillSink) take their serialized-append
    # path so reload -> re-export round-trips without double-repr.
    append = getattr(trace, "append_serialized", trace.append)
    header = _read_header(path)
    if header is None:
        with open(path, encoding="utf-8") as handle:
            document = _parse_document(handle.read())
        for rec in document["records"]:
            append(_record_from_dict(rec))
        return trace
    for record in iter_saved_records(path):
        append(record)
    return trace


def load_crashes(path: str) -> List[CrashPlan]:
    """Read the crash scenario back from an export, losslessly."""
    header = _read_header(path)
    if header is not None:
        return [CrashPlan.from_dict(entry)
                for entry in header.get("crashes", ())]
    with open(path, encoding="utf-8") as handle:
        return crashes_from_json(handle.read())


def load_scenario(path: str):
    """The embedded :class:`~repro.scenario.Scenario` of an export.

    Returns ``None`` for exports that carry no scenario (schema v1-v3
    files, or v4 files saved without one). The rebuilt scenario
    re-executes to a byte-identical trace -- ``repro replay`` is built
    on this.
    """
    header = _read_header(path)
    if header is not None:
        data = header.get("scenario")
    else:
        with open(path, encoding="utf-8") as handle:
            data = _parse_document(handle.read()).get("scenario")
    if not data:
        return None
    from ..scenario import Scenario
    return Scenario.from_dict(data)


def load_metadata(path: str) -> Dict[str, Any]:
    """The metadata block of an export (any schema version)."""
    header = _read_header(path)
    if header is not None:
        return dict(header.get("metadata") or {})
    with open(path, encoding="utf-8") as handle:
        return dict(_parse_document(handle.read()).get("metadata") or {})


def _label(value: Any) -> Any:
    """Node labels are ints or strings already; pass through."""
    if value is None or isinstance(value, (int, str, float)):
        return value
    return repr(value)
