"""Trace export/import.

Execution traces are the ground truth of every experiment; exporting
them lets users diff runs, archive experiment evidence next to
EXPERIMENTS.md, or analyse executions with external tooling. Payloads
are stored as ``repr`` strings: traces round-trip structurally
(times, kinds, nodes, broadcast ids) with payloads preserved for
human inspection rather than re-execution.

Crash *scenarios* round-trip losslessly: ``save_trace(...,
crashes=plans)`` serializes each :class:`~repro.macsim.crash.CrashPlan`
via its ``to_dict`` (the None / empty / subset distinction of
``still_delivered`` survives -- frozen sets no longer stringify), and
:func:`load_crashes` rebuilds equal plans that can re-drive a
simulation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from ..macsim.crash import CrashPlan
from ..macsim.trace import Trace, TraceRecord

#: Schema version stamped into exports. Version 2 added the optional
#: ``crashes`` scenario block (version-1 documents still load).
SCHEMA_VERSION = 2


def trace_to_records(trace: Trace) -> List[Dict[str, Any]]:
    """Convert a trace to JSON-serializable dicts."""
    out = []
    for record in trace:
        out.append({
            "time": record.time,
            "kind": record.kind,
            "node": _label(record.node),
            "broadcast_id": record.broadcast_id,
            "peer": _label(record.peer),
            "payload": None if record.payload is None
            else repr(record.payload),
        })
    return out


def trace_to_json(trace: Trace, *, indent: Optional[int] = None,
                  metadata: Optional[Dict[str, Any]] = None,
                  crashes: Iterable[CrashPlan] = ()) -> str:
    """Serialize a trace (plus metadata and crash scenario) to JSON."""
    document = {
        "schema": SCHEMA_VERSION,
        "metadata": metadata or {},
        "crashes": [plan.to_dict() for plan in crashes],
        "records": trace_to_records(trace),
    }
    return json.dumps(document, indent=indent)


def _parse_document(text: str) -> dict:
    document = json.loads(text)
    if document.get("schema") not in (1, SCHEMA_VERSION):
        raise ValueError(
            f"unsupported trace schema: {document.get('schema')!r}")
    return document


def trace_from_json(text: str) -> Trace:
    """Rebuild a structural trace from a JSON export.

    Payloads come back as their ``repr`` strings; all timing/topology
    queries (decision times, counts, crashed nodes) work as on the
    original.
    """
    document = _parse_document(text)
    trace = Trace()
    for rec in document["records"]:
        trace.append(TraceRecord(
            time=rec["time"], kind=rec["kind"], node=rec["node"],
            broadcast_id=rec["broadcast_id"], peer=rec["peer"],
            payload=rec["payload"]))
    return trace


def crashes_from_json(text: str) -> List[CrashPlan]:
    """The crash scenario stored in an export (empty for v1 files)."""
    document = _parse_document(text)
    return [CrashPlan.from_dict(entry)
            for entry in document.get("crashes", ())]


def save_trace(trace: Trace, path: str, *,
               metadata: Optional[Dict[str, Any]] = None,
               crashes: Iterable[CrashPlan] = ()) -> None:
    """Write a trace export (optionally with its crash scenario)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_to_json(trace, indent=2, metadata=metadata,
                                   crashes=crashes))


def load_trace(path: str) -> Trace:
    """Read a trace export from ``path``."""
    with open(path, encoding="utf-8") as handle:
        return trace_from_json(handle.read())


def load_crashes(path: str) -> List[CrashPlan]:
    """Read the crash scenario back from an export, losslessly."""
    with open(path, encoding="utf-8") as handle:
        return crashes_from_json(handle.read())


def _label(value: Any) -> Any:
    """Node labels are ints or strings already; pass through."""
    if value is None or isinstance(value, (int, str, float)):
        return value
    return repr(value)
