"""Small statistics helpers for experiment summaries."""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two points)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values)
                     / (len(values) - 1))


def linear_fit(xs: Sequence[float],
               ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y = slope * x + intercept``.

    Used to verify scaling *shapes*: e.g. decision time vs diameter
    should fit a line with positive slope and small intercept for
    wPAXOS (Theorem 4.6), and a near-zero slope vs ``n`` for Two-Phase
    (Theorem 4.1).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    mx, my = mean(xs), mean(ys)
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate fit: all x equal")
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, my - slope * mx


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    mx, my = mean(xs), mean(ys)
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 0.0
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    return sxy / math.sqrt(sxx * syy)


def growth_ratio(xs: Sequence[float], ys: Sequence[float]) -> float:
    """``(y_last / y_first) / (x_last / x_first)``.

    A scale-free growth indicator: ~1 for linear scaling in ``x``,
    ~0 for flat, larger for super-linear. Used to compare how baseline
    and wPAXOS times react to growing ``n``.
    """
    if len(xs) < 2 or xs[0] == 0 or ys[0] == 0:
        raise ValueError("need two points with non-zero firsts")
    return (ys[-1] / ys[0]) / (xs[-1] / xs[0])
