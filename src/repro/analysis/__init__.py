"""Experiment harness: runners, metrics, statistics, table rendering."""

from .cache import (CacheError, CacheVerificationError, ResultCache,
                    cached_run, default_cache_dir)
from .metrics import RunMetrics, collect_metrics
from .runner import (alternating_values, run_consensus, split_values)
from .stats import correlation, growth_ratio, linear_fit, mean, stdev
from .sweeps import (SweepError, SweepPoint, SweepProgress,
                     SweepResult, SweepTimeoutError, SweepWorkerError,
                     default_workers, parallel_sweep,
                     saturating_workers, sweep)
from .stats_report import (derive_spans, render_stats,
                           stats_from_file)
from .tables import format_markdown_table, format_table
from .export import (crashes_from_json, iter_saved_records,
                     iter_trace_dicts, load_crashes, load_metadata,
                     load_scenario, load_trace, save_trace,
                     trace_from_json, trace_to_json, trace_to_records)

__all__ = [
    "RunMetrics",
    "collect_metrics",
    "run_consensus",
    "alternating_values",
    "split_values",
    "mean",
    "stdev",
    "linear_fit",
    "correlation",
    "growth_ratio",
    "format_table",
    "format_markdown_table",
    "sweep",
    "parallel_sweep",
    "SweepResult",
    "SweepPoint",
    "SweepProgress",
    "SweepError",
    "SweepTimeoutError",
    "SweepWorkerError",
    "default_workers",
    "saturating_workers",
    "ResultCache",
    "CacheError",
    "CacheVerificationError",
    "cached_run",
    "default_cache_dir",
    "save_trace",
    "load_trace",
    "load_crashes",
    "load_metadata",
    "load_scenario",
    "crashes_from_json",
    "trace_to_json",
    "trace_from_json",
    "trace_to_records",
    "iter_trace_dicts",
    "iter_saved_records",
    "derive_spans",
    "render_stats",
    "stats_from_file",
]
