"""Convenience runner shared by tests, benchmarks and experiments."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..macsim import build_simulation
from ..macsim.errors import ModelViolationError
from ..macsim.invariants import check_model_invariants
from ..macsim.trace import TraceLevel
from .metrics import RunMetrics, collect_metrics

#: Factory signature: (label, initial value) -> process.
ProcessFactory = Callable[[Any, int], Any]


def alternating_values(graph) -> Dict[Any, int]:
    """The default 0/1/0/1... input assignment over canonical order."""
    return {v: i % 2 for i, v in enumerate(graph.nodes)}


def split_values(graph) -> Dict[Any, int]:
    """First half 0, second half 1 (the partition-argument inputs)."""
    half = graph.n // 2
    return {v: 0 if i < half else 1
            for i, v in enumerate(graph.nodes)}


def run_consensus(*, algorithm: str, topology: str, graph, scheduler,
                  factory: ProcessFactory,
                  initial_values: Optional[Dict[Any, int]] = None,
                  max_events: int = 20_000_000,
                  max_time: Optional[float] = None,
                  check_invariants: bool = True,
                  fault_model=None,
                  trace_level: "TraceLevel | str" = TraceLevel.FULL
                  ) -> RunMetrics:
    """Run one consensus execution and return its metrics.

    ``factory(label, value)`` builds the process for each node. Model
    invariants are verified on the trace unless disabled (they are
    O(trace) and cheap at experiment sizes).

    ``fault_model`` is an optional
    :class:`~repro.macsim.faults.base.FaultModel` adversary; when
    present, invariants and consensus properties are scoped to its
    correct (non-faulty) nodes.

    ``trace_level`` selects how much of the execution is materialized
    (see :class:`~repro.macsim.trace.TraceLevel`). Model-invariant
    replay needs a full trace, so invariant checking is skipped
    automatically below ``TraceLevel.FULL``; consensus checking and
    all metrics still work (they use the decision/crash records and
    the exact occurrence counters).
    """
    values = initial_values or alternating_values(graph)
    level = TraceLevel.coerce(trace_level)
    faulty = (frozenset() if fault_model is None
              else frozenset(fault_model.faulty_nodes()))
    untrusted = (frozenset() if fault_model is None
                 else frozenset(fault_model.lying_nodes()))
    sim = build_simulation(graph, lambda v: factory(v, values[v]),
                           scheduler, fault_model=fault_model,
                           trace_level=level)
    result = sim.run(max_events=max_events, max_time=max_time)
    if check_invariants and level is TraceLevel.FULL:
        report = check_model_invariants(graph, result.trace,
                                        scheduler.f_ack, faulty=faulty)
        if not report.ok:
            raise ModelViolationError(
                f"{algorithm} on {topology}: " + "; ".join(
                    report.violations[:5]))
    return collect_metrics(algorithm=algorithm, topology=topology,
                           graph=graph, scheduler=scheduler,
                           result=result, initial_values=values,
                           faulty=faulty, untrusted=untrusted)
