"""Convenience runner shared by tests, benchmarks and experiments."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from ..macsim import build_simulation
from ..macsim.crash import CrashPlan
from ..macsim.errors import ModelViolationError
from ..macsim.invariants import check_model_invariants
from ..macsim.trace import TraceLevel, TraceSink
from .metrics import RunMetrics, collect_metrics

#: Factory signature: (label, initial value) -> process.
ProcessFactory = Callable[[Any, int], Any]


def alternating_values(graph) -> Dict[Any, int]:
    """The default 0/1/0/1... input assignment over canonical order."""
    return {v: i % 2 for i, v in enumerate(graph.nodes)}


def split_values(graph) -> Dict[Any, int]:
    """First half 0, second half 1 (the partition-argument inputs)."""
    half = graph.n // 2
    return {v: 0 if i < half else 1
            for i, v in enumerate(graph.nodes)}


def run_consensus(*, algorithm: str, topology: str, graph, scheduler,
                  factory: ProcessFactory,
                  initial_values: Optional[Dict[Any, int]] = None,
                  max_events: int = 20_000_000,
                  max_time: Optional[float] = None,
                  check_invariants: bool = True,
                  fault_model=None,
                  crashes: Iterable[CrashPlan] = (),
                  unreliable_graph=None,
                  dynamics=None,
                  trace_level: "TraceLevel | str" = TraceLevel.FULL,
                  trace_sink: Optional[TraceSink] = None,
                  probe: Optional[Callable[[Any], Dict[str, Any]]] = None,
                  telemetry=None) -> RunMetrics:
    """Run one consensus execution and return its metrics.

    .. note:: New code should usually describe the run as a
       :class:`repro.scenario.Scenario` and call ``scenario.run()`` --
       a frozen, JSON-round-trippable form of exactly this call that
       also serializes into trace exports, expands into sweep grids
       and replays. This function remains the execution engine
       underneath (``Scenario.run`` resolves its specs and calls it
       with byte-identical results).

    ``factory(label, value)`` builds the process for each node. Model
    invariants are verified on the trace unless disabled (the replay
    is streaming and O(n) in memory, so it stays cheap even for
    spilled traces).

    ``fault_model`` is an optional
    :class:`~repro.macsim.faults.base.FaultModel` adversary; when
    present, invariants and consensus properties are scoped to its
    correct (non-faulty) nodes. ``crashes`` is the legacy crash-plan
    API (crashed nodes execute their program correctly, so they are
    *not* treated as faulty for validity); the two are mutually
    exclusive. ``unreliable_graph`` runs the dual-graph model variant.

    ``dynamics`` is an optional
    :class:`~repro.macsim.dynamics.base.TopologyDynamics` model: the
    run executes over a time-varying graph, invariants audit
    deliveries against the graph as of each broadcast (from the
    trace's ``topo`` records), and a ``connectivity`` probe -- epoch
    count, connected fraction, T-interval connectivity -- lands in
    :attr:`RunMetrics.extras` automatically.

    ``trace_level``/``trace_sink`` select the trace sink (see
    :mod:`repro.macsim.trace`): invariant replay needs a replayable
    sink (FULL, SPILL or COLUMNAR), so invariant checking is skipped
    automatically for counting sinks; consensus checking and all
    metrics work on every sink (they use the decision/crash records
    and the exact occurrence counters). COLUMNAR sinks take the
    vectorized whole-chunk invariant fast path when numpy is
    installed.

    ``probe(sim)`` may harvest algorithm-specific observables from the
    finished simulator (e.g. round counts); its dict lands in
    :attr:`RunMetrics.extras`. Keep probe results small and picklable
    -- sweeps ship them across process boundaries.

    ``telemetry`` opts into run observability: pass ``True`` (or a
    :class:`~repro.macsim.telemetry.Telemetry` instance to keep a
    handle on the raw samples) and the snapshot -- engine counters,
    empirical F_ack/F_prog/F_cover histograms, phase profile -- lands
    in ``RunMetrics.extras["telemetry"]``. Telemetry never perturbs
    the trace: on or off, the same seeded run produces byte-identical
    records.
    """
    values = initial_values or alternating_values(graph)
    faulty = (frozenset() if fault_model is None
              else frozenset(fault_model.faulty_nodes()))
    untrusted = (frozenset() if fault_model is None
                 else frozenset(fault_model.lying_nodes()))
    sim = build_simulation(graph, lambda v: factory(v, values[v]),
                           scheduler, fault_model=fault_model,
                           crashes=crashes,
                           unreliable_graph=unreliable_graph,
                           dynamics=dynamics,
                           trace_level=trace_level,
                           trace_sink=trace_sink,
                           telemetry=telemetry)
    result = sim.run(max_events=max_events, max_time=max_time)
    sink = result.trace
    sink.close()
    if check_invariants and sink.replayable:
        report = check_model_invariants(graph, sink, scheduler.f_ack,
                                        unreliable_graph=unreliable_graph,
                                        faulty=faulty)
        if not report.ok:
            raise ModelViolationError(
                f"{algorithm} on {topology}: " + "; ".join(
                    report.violations[:5]))
    extras = probe(sim) if probe is not None else None
    if dynamics is not None:
        from ..macsim.dynamics import connectivity_report
        extras = dict(extras or {})
        extras["connectivity"] = connectivity_report(graph, sink)
    tel = sim.telemetry
    if tel is not None:
        tel.context.update(algorithm=algorithm, topology=topology,
                           scheduler=type(scheduler).__name__,
                           fault_model=(None if fault_model is None
                                        else type(fault_model).__name__))
        extras = dict(extras or {})
        extras["telemetry"] = tel.snapshot()
    return collect_metrics(algorithm=algorithm, topology=topology,
                           graph=graph, scheduler=scheduler,
                           result=result, initial_values=values,
                           faulty=faulty, untrusted=untrusted,
                           extras=extras)
