"""Declarative, serializable consensus run descriptions.

Every experiment in this repo is "one algorithm x one topology x one
scheduler x one adversary", but the codebase historically spelled that
product four different ways: ``run_consensus``'s kwarg list, the CLI's
hand-rolled parsers, each E-driver's bespoke factory wiring, and the
export layer's ad-hoc metadata. A :class:`Scenario` is the single
declarative form: a frozen, JSON-round-trippable description that can
be **named** (specs), **built** (resolved through the
:mod:`repro.registry` registries), **run** (wrapping
:func:`repro.analysis.runner.run_consensus`), **swept**
(:meth:`Scenario.grid` feeding ``sweep``/``parallel_sweep``) and
**replayed** (embedded in schema-v4 trace exports)::

    from repro.scenario import (AlgorithmSpec, FaultSpec, Scenario,
                                SchedulerSpec, TopologySpec)

    scenario = Scenario(
        algorithm=AlgorithmSpec("wpaxos"),
        topology=TopologySpec("grid", rows=4, cols=6),
        scheduler=SchedulerSpec("random", f_ack=2.0),
        fault=FaultSpec("crash", node=3, time=1.5),
        seed=7)
    metrics = scenario.run()                 # one execution
    text = scenario.to_json()                # lossless round trip
    assert Scenario.from_json(text) == scenario

    series = scenario.grid({"topology.cols": [4, 6, 8],
                            "seed": range(5)}).run()   # (x, seed) keys

Resolution is **pure**: specs hold only JSON-serializable parameters,
and every stateful object (graphs, scheduler RNGs, fault-model RNGs)
is built fresh per run, so a scenario executed twice -- or loaded back
from a trace file and executed on another machine -- produces
byte-identical FULL traces.

The registries (``@register_algorithm`` / ``@register_topology`` /
``@register_scheduler`` / ``@register_fault_model``, plus overlays and
initial-value assignments) are documented in :mod:`repro.registry`;
the built-in catalogue is registered at the bottom of this module and
matches the legacy CLI factories parameter for parameter.
"""

from __future__ import annotations

import hashlib
import inspect
import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from .registry import (ALGORITHMS, DYNAMICS, FAULT_MODELS, OVERLAYS,
                       SCHEDULERS, TOPOLOGIES, VALUES, UnknownNameError,
                       register_algorithm, register_dynamics,
                       register_fault_model, register_overlay,
                       register_scheduler, register_topology,
                       register_values)


class ScenarioError(ValueError):
    """An invalid scenario: unknown names, bad params, wrong shapes."""


# ---------------------------------------------------------------------------
# Specs: one named, parameterized axis of a scenario
# ---------------------------------------------------------------------------

_SCALARS = (int, float, str, bool, type(None))


def _normalize(value: Any, where: str) -> Any:
    """Coerce ``value`` into the JSON-stable subset specs may hold.

    Tuples become lists (what JSON would do anyway) so that equality
    survives a dump/load cycle; nested specs pass through.
    """
    if isinstance(value, Spec):
        return value
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_normalize(v, where) for v in value]
    if isinstance(value, (dict,)):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise ScenarioError(
                    f"{where}: dict params need string keys to survive "
                    f"JSON, got key {k!r}")
            out[k] = _normalize(v, where)
        return out
    if isinstance(value, range):
        return [int(v) for v in value]
    raise ScenarioError(
        f"{where}: param value {value!r} is not JSON-serializable "
        f"(allowed: int/float/str/bool/None, lists, string-keyed "
        f"dicts, nested specs)")


def _freeze(value: Any) -> Any:
    """A hashable mirror of a normalized param value (or sweep key)."""
    if isinstance(value, Spec):
        return (value.kind, value.name, _freeze(dict(value.params)))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


def _jsonable(value: Any) -> Any:
    if isinstance(value, Spec):
        return value.to_dict()
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def _from_jsonable(value: Any) -> Any:
    if isinstance(value, dict) and "__spec__" in value:
        cls = _SPEC_CLASSES.get(value["__spec__"])
        if cls is None:
            raise ScenarioError(f"unknown spec kind {value['__spec__']!r}")
        return cls.from_dict(value)
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _from_jsonable(v) for k, v in value.items()}
    return value


class Spec:
    """One named axis choice plus its JSON-serializable parameters.

    Immutable; equality and hashing cover the subclass, name and
    params, so specs can be dict keys and scenario equality is
    structural.
    """

    kind = "spec"
    registry = None  # set by subclasses

    __slots__ = ("_name", "_params")

    def __init__(self, name: str, **params: Any) -> None:
        object.__setattr__(self, "_name", str(name))
        object.__setattr__(
            self, "_params",
            {k: _normalize(v, f"{type(self).__name__}({name!r})")
             for k, v in params.items()})

    # -- immutability ----------------------------------------------------
    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError(f"{type(self).__name__} is frozen")

    def __delattr__(self, key: str) -> None:
        raise AttributeError(f"{type(self).__name__} is frozen")

    # -- pickling (slots + frozen need explicit state handling; sweep
    # keys holding specs cross process boundaries in parallel grids) --
    def __getstate__(self):
        return (self._name, self._params)

    def __setstate__(self, state) -> None:
        name, params = state
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_params", params)

    # -- accessors -------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def params(self) -> Mapping[str, Any]:
        return dict(self._params)

    def with_params(self, **updates: Any) -> "Spec":
        """A copy with the given params replaced/added."""
        merged = dict(self._params)
        merged.update(updates)
        return type(self)(self._name, **merged)

    # -- identity --------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        return (type(self) is type(other)
                and self._name == other._name
                and self._params == other._params)

    def __hash__(self) -> int:
        return hash((type(self), self._name, _freeze(dict(self._params))))

    def __repr__(self) -> str:
        args = "".join(f", {k}={v!r}" for k, v in self._params.items())
        return f"{type(self).__name__}({self._name!r}{args})"

    def describe(self) -> str:
        """Compact human label, e.g. ``grid(rows=4, cols=6)``."""
        if not self._params:
            return self._name
        inner = ", ".join(f"{k}={v!r}" if not isinstance(v, Spec)
                          else f"{k}={v.describe()}"
                          for k, v in self._params.items())
        return f"{self._name}({inner})"

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"__spec__": self.kind, "name": self._name,
                "params": {k: _jsonable(v)
                           for k, v in self._params.items()}}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Spec":
        if not isinstance(data, Mapping) or "name" not in data:
            raise ScenarioError(
                f"not a {cls.__name__} dict: {data!r}")
        params = {k: _from_jsonable(v)
                  for k, v in (data.get("params") or {}).items()}
        return cls(data["name"], **params)

    # -- resolution ------------------------------------------------------
    def builder(self) -> Callable:
        """This spec's registered builder (raises on unknown names)."""
        return self.registry.get(self._name)


class TopologySpec(Spec):
    """A named topology, e.g. ``TopologySpec("grid", rows=4, cols=6)``."""

    kind = "topology"
    registry = TOPOLOGIES

    def build(self):
        """Construct the graph."""
        return self.builder()(**self.params)


class SchedulerSpec(Spec):
    """A named scheduler; params may nest another :class:`SchedulerSpec`
    (wrapper schedulers take ``inner=...``)."""

    kind = "scheduler"
    registry = SCHEDULERS

    def build(self, seed: int = 0):
        """Construct the scheduler, injecting ``seed`` where accepted.

        A builder with a ``seed`` parameter that the spec does not pin
        receives the scenario seed; nested scheduler specs resolve
        recursively under the same rule.
        """
        builder = self.builder()
        params = {k: (v.build(seed) if isinstance(v, SchedulerSpec) else v)
                  for k, v in self.params.items()}
        return _call_seeded(builder, params, seed)


class AlgorithmSpec(Spec):
    """A named algorithm; ``build`` returns a ``(label, value) ->
    process`` factory."""

    kind = "algorithm"
    registry = ALGORITHMS

    def build(self, graph, seed: int = 0):
        return self.builder()(graph, seed, **self.params)


class FaultSpec(Spec):
    """A named fault model (crash / omission / byzantine / custom)."""

    kind = "fault"
    registry = FAULT_MODELS

    def build(self, graph, seed: int = 0):
        return self.builder()(graph, seed, **self.params)


class OverlaySpec(Spec):
    """A named unreliable-link overlay for the dual-graph model."""

    kind = "overlay"
    registry = OVERLAYS

    def build(self, graph, seed: int = 0):
        return _call_seeded(self.builder(), dict(self.params), seed, graph)


class DynamicsSpec(Spec):
    """A named topology-dynamics model (churn / mobility / scripted)."""

    kind = "dynamics"
    registry = DYNAMICS

    def build(self, graph, seed: int = 0):
        return self.builder()(graph, seed, **self.params)


_SPEC_CLASSES = {cls.kind: cls for cls in
                 (TopologySpec, SchedulerSpec, AlgorithmSpec, FaultSpec,
                  OverlaySpec, DynamicsSpec)}


def _call_seeded(builder: Callable, params: Dict[str, Any], seed: int,
                 *args: Any):
    """Call ``builder(*args, **params)``, injecting ``seed=seed`` when
    the builder accepts one and the params do not pin it."""
    if "seed" not in params:
        try:
            accepts_seed = "seed" in inspect.signature(builder).parameters
        except (TypeError, ValueError):  # builtins without signatures
            accepts_seed = False
        if accepts_seed:
            params = dict(params, seed=seed)
    return builder(*args, **params)


# ---------------------------------------------------------------------------
# Scenario: the full run description
# ---------------------------------------------------------------------------

@dataclass
class ResolvedScenario:
    """A scenario's stateful ingredients, built fresh and ready to run."""

    scenario: "Scenario"
    graph: Any
    scheduler: Any
    factory: Callable[[Any, int], Any]
    initial_values: Dict[Any, int]
    fault_model: Any = None
    unreliable_graph: Any = None
    dynamics: Any = None

    def build(self, *, trace_sink=None, telemetry=None):
        """Construct (but do not run) the scenario's simulator.

        This is the per-group half of the engine API: everything that
        belongs to one consensus instance -- graph, processes, queue,
        trace sink, telemetry -- lives on the returned
        :class:`~repro.macsim.simulator.Simulator`, while *when* it
        runs is the caller's business. ``simulate()`` drives it to
        completion in one call; the multi-group service runtime
        interleaves many built simulators over one loop.

        ``telemetry`` (a bool or a
        :class:`~repro.macsim.telemetry.Telemetry` to keep a handle
        on) defaults to the scenario's ``telemetry`` field."""
        from .macsim import build_simulation
        scenario = self.scenario
        values = self.initial_values
        factory = self.factory
        if telemetry is None:
            telemetry = scenario.telemetry
        return build_simulation(
            self.graph, lambda v: factory(v, values[v]), self.scheduler,
            fault_model=self.fault_model,
            unreliable_graph=self.unreliable_graph,
            dynamics=self.dynamics,
            trace_level=scenario.trace_level, trace_sink=trace_sink,
            telemetry=telemetry)

    def simulate(self, *, trace_sink=None, telemetry=None):
        """Run the simulation and return the raw
        :class:`~repro.macsim.simulator.RunResult` (trace included,
        closed). This is the byte-identity/replay entry point; use
        :meth:`Scenario.run` when you want metrics."""
        scenario = self.scenario
        sim = self.build(trace_sink=trace_sink, telemetry=telemetry)
        result = sim.run(max_events=scenario.max_events,
                         max_time=scenario.max_time)
        result.trace.close()
        return result


@dataclass(frozen=True)
class Scenario:
    """A complete, serializable description of one consensus run.

    Frozen and structurally comparable:
    ``Scenario.from_dict(s.to_dict()) == s`` holds losslessly (the
    round-trip property test pins it). ``seed`` feeds the algorithm's
    per-process RNGs, any scheduler/overlay builder that accepts a
    seed the spec does not pin, and the fault model's plan seeds --
    one knob reseeds the whole run.
    """

    algorithm: AlgorithmSpec
    topology: TopologySpec
    scheduler: SchedulerSpec = field(
        default_factory=lambda: SchedulerSpec("synchronous"))
    fault: Optional[FaultSpec] = None
    overlay: Optional[OverlaySpec] = None
    #: Optional time-varying topology model (churn/mobility/scripted).
    dynamics: Optional[DynamicsSpec] = None
    #: Registered initial-value assignment name (see ``register_values``).
    values: str = "alternating"
    seed: int = 0
    trace_level: str = "full"
    max_events: int = 20_000_000
    max_time: Optional[float] = None
    check_invariants: bool = True
    #: Optional display label (lands in ``RunMetrics.topology``);
    #: defaults to ``topology.describe()``.
    label: Optional[str] = None
    #: Opt-in run telemetry (engine counters, empirical F_ack/F_prog
    #: spans, phase profile); the snapshot lands in
    #: ``RunMetrics.extras["telemetry"]``. Never perturbs the trace.
    telemetry: bool = False

    def __post_init__(self) -> None:
        for name, cls in (("algorithm", AlgorithmSpec),
                          ("topology", TopologySpec),
                          ("scheduler", SchedulerSpec)):
            if not isinstance(getattr(self, name), cls):
                raise ScenarioError(
                    f"Scenario.{name} must be a {cls.__name__}, got "
                    f"{getattr(self, name)!r}")
        for name, cls in (("fault", FaultSpec), ("overlay", OverlaySpec),
                          ("dynamics", DynamicsSpec)):
            value = getattr(self, name)
            if value is not None and not isinstance(value, cls):
                raise ScenarioError(
                    f"Scenario.{name} must be a {cls.__name__} or None, "
                    f"got {value!r}")
        from .macsim.trace import TraceLevel
        object.__setattr__(self, "trace_level",
                           TraceLevel(self.trace_level).value)

    # -- building and running -------------------------------------------
    def resolve(self) -> ResolvedScenario:
        """Build every stateful ingredient, fresh for this call."""
        graph = self.topology.build()
        return ResolvedScenario(
            scenario=self,
            graph=graph,
            scheduler=self.scheduler.build(self.seed),
            factory=self.algorithm.build(graph, self.seed),
            initial_values=VALUES.get(self.values)(graph),
            fault_model=(self.fault.build(graph, self.seed)
                         if self.fault is not None else None),
            unreliable_graph=(self.overlay.build(graph, self.seed)
                              if self.overlay is not None else None),
            dynamics=(self.dynamics.build(graph, self.seed)
                      if self.dynamics is not None else None),
        )

    def run_kwargs(self) -> Dict[str, Any]:
        """The exact :func:`~repro.analysis.runner.run_consensus`
        keyword arguments this scenario denotes."""
        resolved = self.resolve()
        out: Dict[str, Any] = dict(
            algorithm=self.algorithm.name,
            topology=self.display_label(),
            graph=resolved.graph,
            scheduler=resolved.scheduler,
            factory=resolved.factory,
            initial_values=resolved.initial_values,
            check_invariants=self.check_invariants,
        )
        if resolved.fault_model is not None:
            out["fault_model"] = resolved.fault_model
        if resolved.unreliable_graph is not None:
            out["unreliable_graph"] = resolved.unreliable_graph
        if resolved.dynamics is not None:
            out["dynamics"] = resolved.dynamics
        return out

    def run(self, *, trace_sink=None, probe=None, telemetry=None):
        """Execute once and return
        :class:`~repro.analysis.metrics.RunMetrics` -- exactly what
        the equivalent ``run_consensus`` call returns (the A/B tests
        pin byte-identical traces). ``telemetry`` overrides the
        scenario's ``telemetry`` field (bool or a
        :class:`~repro.macsim.telemetry.Telemetry` instance)."""
        from .analysis.runner import run_consensus
        if telemetry is None:
            telemetry = self.telemetry
        return run_consensus(max_events=self.max_events,
                             max_time=self.max_time,
                             trace_level=self.trace_level,
                             trace_sink=trace_sink, probe=probe,
                             telemetry=telemetry,
                             **self.run_kwargs())

    def simulate(self, *, trace_sink=None):
        """Execute once and return the raw run result (with trace)."""
        return self.resolve().simulate(trace_sink=trace_sink)

    def display_label(self) -> str:
        return self.label if self.label else self.topology.describe()

    # -- derivation ------------------------------------------------------
    def override(self, changes: Optional[Mapping[str, Any]] = None,
                 **kw: Any) -> "Scenario":
        """A copy with dotted-path overrides applied.

        Paths address scenario fields and spec params:
        ``{"seed": 3, "topology.n": 16, "scheduler.inner.f_ack": 2.0}``.
        Keyword form uses ``__`` for dots: ``override(topology__n=16)``.
        """
        merged: Dict[str, Any] = {}
        if changes:
            merged.update(changes)
        for key, value in kw.items():
            merged[key.replace("__", ".")] = value
        scenario = self
        for path, value in merged.items():
            scenario = scenario._apply(path, value)
        return scenario

    def _apply(self, path: str, value: Any) -> "Scenario":
        head, _, rest = path.partition(".")
        if head not in _SCENARIO_FIELDS:
            raise ScenarioError(
                f"unknown scenario field {head!r} in override path "
                f"{path!r}; fields: {', '.join(sorted(_SCENARIO_FIELDS))}")
        if not rest:
            return replace(self, **{head: value})
        current = getattr(self, head)
        if not isinstance(current, Spec):
            raise ScenarioError(
                f"override path {path!r} descends into {head!r}, which "
                f"is not a spec (it is {current!r})")
        return replace(self, **{head: _spec_apply(current, rest, value)})

    def grid(self, axes: Optional[Mapping[str, Any]] = None,
             zipped: Optional[Mapping[str, Any]] = None,
             **kw: Any) -> "ScenarioGrid":
        """A declarative sweep grid over dotted-path axes.

        ``grid({"topology.n": [8, 16], "seed": range(5)})`` (or
        ``grid(topology__n=[8, 16], seed=range(5))``) is the cartesian
        product, one derived scenario per cell. Keys are structured
        sweep keys: ``(x, seed)``-style tuples in axis declaration
        order (a single axis keeps plain scalar keys), feeding
        :func:`~repro.analysis.sweeps.parallel_sweep` directly.

        ``zipped`` declares **correlated** axes that advance in
        lockstep instead of multiplying out -- the E2-style
        ``(n, seed)`` random-graph pairs::

            # 3 cells, not 9: (n=8, seed=3), (n=12, seed=4), ...
            base.grid(zipped={"topology.n": [8, 12, 16],
                              "seed": [3, 4, 5]})

            # 2 x 3 = 6 cells; keys like (0.05, (8, 3))
            base.grid({"dynamics.rate": [0.05, 0.1]},
                      zipped={"topology.n": [8, 12, 16],
                              "seed": [3, 4, 5]})

        The zipped block contributes one key slot (a tuple of its
        values in declaration order; a single zipped axis keeps plain
        values), appended after the cartesian values.
        """
        ordered: Dict[str, List[Any]] = {}
        if axes:
            for key, vals in axes.items():
                ordered[key] = list(vals)
        for key, vals in kw.items():
            ordered[key.replace("__", ".")] = list(vals)
        return ScenarioGrid(self, ordered, zipped=zipped)

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": "scenario/v1",
            "algorithm": self.algorithm.to_dict(),
            "topology": self.topology.to_dict(),
            "scheduler": self.scheduler.to_dict(),
            "fault": self.fault.to_dict() if self.fault else None,
            "overlay": self.overlay.to_dict() if self.overlay else None,
            "dynamics": (self.dynamics.to_dict()
                         if self.dynamics else None),
            "values": self.values,
            "seed": self.seed,
            "trace_level": self.trace_level,
            "max_events": self.max_events,
            "max_time": self.max_time,
            "check_invariants": self.check_invariants,
            "label": self.label,
        }
        # Emitted only when set: keeps pre-PR7 scenario documents (and
        # their golden round-trips) byte-stable.
        if self.telemetry:
            out["telemetry"] = True
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        if not isinstance(data, Mapping):
            raise ScenarioError(f"not a scenario dict: {data!r}")
        for required in ("algorithm", "topology"):
            if not data.get(required):
                raise ScenarioError(
                    f"scenario dict is missing {required!r}")

        def opt(spec_cls, key):
            raw = data.get(key)
            return spec_cls.from_dict(raw) if raw else None

        defaults = cls.__dataclass_fields__
        return cls(
            algorithm=AlgorithmSpec.from_dict(data["algorithm"]),
            topology=TopologySpec.from_dict(data["topology"]),
            scheduler=(SchedulerSpec.from_dict(data["scheduler"])
                       if data.get("scheduler")
                       else SchedulerSpec("synchronous")),
            fault=opt(FaultSpec, "fault"),
            overlay=opt(OverlaySpec, "overlay"),
            dynamics=opt(DynamicsSpec, "dynamics"),
            values=data.get("values", "alternating"),
            seed=int(data.get("seed", 0)),
            trace_level=data.get("trace_level", "full"),
            max_events=int(data.get(
                "max_events", defaults["max_events"].default)),
            max_time=(None if data.get("max_time") is None
                      else float(data["max_time"])),
            check_invariants=bool(data.get("check_invariants", True)),
            label=data.get("label"),
            telemetry=bool(data.get("telemetry", False)),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def canonical_json(self) -> str:
        """Whitespace-free, key-sorted JSON: the stable content form.

        Two scenarios that run identically serialize identically
        (specs normalize their params on construction), so this string
        -- and the :meth:`digest` over it -- is a content address for
        the run's results.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self, *, salt: str = "") -> str:
        """SHA-256 hex digest of :meth:`canonical_json`.

        ``salt`` folds a code/schema version into the digest so a
        result cache can be invalidated wholesale when engine
        semantics change (see
        :class:`repro.analysis.cache.ResultCache`).
        """
        hasher = hashlib.sha256()
        hasher.update(salt.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(self.canonical_json().encode("utf-8"))
        return hasher.hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "Scenario":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")


_SCENARIO_FIELDS = {f.name for f in fields(Scenario)}


def _spec_apply(spec: Spec, path: str, value: Any) -> Spec:
    head, _, rest = path.partition(".")
    if not rest:
        return spec.with_params(**{head: value})
    nested = spec.params.get(head)
    if not isinstance(nested, Spec):
        raise ScenarioError(
            f"override path descends into param {head!r} of "
            f"{spec.describe()}, which is not a spec")
    return spec.with_params(**{head: _spec_apply(nested, rest, value)})


class ScenarioGrid:
    """The cartesian product of dotted-path axes over a base scenario.

    Feeds :func:`~repro.analysis.sweeps.sweep` /
    :func:`~repro.analysis.sweeps.parallel_sweep` with structured
    keys: each cell's key is the tuple of its axis values in
    declaration order (plain scalars for single-axis grids), so
    seed-replicated grids produce the classic ``(x, seed)`` keys and
    :meth:`~repro.analysis.sweeps.SweepResult.by_x` regroups them.

    ``zipped`` axes advance in lockstep (correlated axes, e.g. E2's
    ``(n, seed)`` random-graph pairs) and contribute a single trailing
    key slot; see :meth:`Scenario.grid`.
    """

    def __init__(self, base: Scenario, axes: Mapping[str, List[Any]],
                 zipped: Optional[Mapping[str, Any]] = None) -> None:
        zipped = {k: list(v) for k, v in (zipped or {}).items()}
        if not axes and not zipped:
            raise ScenarioError("grid needs at least one axis")
        for path, values in dict(axes, **zipped).items():
            if not values:
                raise ScenarioError(f"grid axis {path!r} is empty")
        lengths = {len(v) for v in zipped.values()}
        if len(lengths) > 1:
            raise ScenarioError(
                "zipped grid axes must all have the same length, got "
                + ", ".join(f"{path}: {len(v)}"
                            for path, v in zipped.items()))
        overlap = set(axes) & set(zipped)
        if overlap:
            raise ScenarioError(
                f"axes declared both cartesian and zipped: "
                f"{sorted(overlap)}")
        self.base = base
        self.axes: Dict[str, List[Any]] = {k: list(v)
                                           for k, v in axes.items()}
        self.zipped: Dict[str, List[Any]] = zipped
        self._single = len(self.axes) == 1 and not zipped
        self._keys: Optional[List[Any]] = None
        self._index: Optional[Dict[Any, int]] = None

    def _zip_combos(self) -> List[Any]:
        """One key slot per zipped position: plain values for a single
        zipped axis, declaration-order tuples otherwise."""
        if len(self.zipped) == 1:
            (values,) = self.zipped.values()
            return list(values)
        return [tuple(combo) for combo in zip(*self.zipped.values())]

    def keys(self) -> List[Any]:
        """Structured sweep keys, one per grid cell."""
        if self._keys is None:
            if self._single:
                (values,) = self.axes.values()
                self._keys = list(values)
            elif not self.zipped:
                self._keys = [tuple(combo) for combo in
                              itertools.product(*self.axes.values())]
            elif not self.axes:
                self._keys = self._zip_combos()
            else:
                self._keys = [tuple(combo) + (zslot,) for combo, zslot
                              in itertools.product(
                                  itertools.product(*self.axes.values()),
                                  self._zip_combos())]
        return list(self._keys)

    def _key_index(self, key: Any) -> int:
        if self._index is None:
            index: Dict[Any, int] = {}
            for i, k in enumerate(self.keys()):
                index.setdefault(_freeze(k), i)
            self._index = index
        return self._index[_freeze(key)]

    def scenario_at(self, key: Any) -> Scenario:
        """The derived scenario for one sweep key."""
        if self.zipped:
            zpaths = list(self.zipped)
            if self.axes:
                combo = tuple(key)
                if len(combo) != len(self.axes) + 1:
                    raise ScenarioError(
                        f"key {key!r} does not match grid axes "
                        f"{list(self.axes)} + zipped {zpaths}")
                combo, zslot = combo[:-1], combo[-1]
            else:
                combo, zslot = (), key
            zvalues = (zslot,) if len(zpaths) == 1 else tuple(zslot)
            if len(zvalues) != len(zpaths):
                raise ScenarioError(
                    f"key {key!r} does not match zipped axes {zpaths}")
            overrides = dict(zip(self.axes, combo))
            overrides.update(zip(zpaths, zvalues))
            return self.base.override(overrides)
        combo = (key,) if self._single else tuple(key)
        if len(combo) != len(self.axes):
            raise ScenarioError(
                f"key {key!r} does not match grid axes "
                f"{list(self.axes)}")
        return self.base.override(dict(zip(self.axes, combo)))

    def scenarios(self) -> List[Scenario]:
        return [self.scenario_at(key) for key in self.keys()]

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        if self.zipped:
            total *= len(next(iter(self.zipped.values())))
        return total

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios())

    def _point_x(self, key: Any) -> float:
        """The plotting axis a sweep would assign this cell's key."""
        from .analysis.sweeps import _scalar_axis
        try:
            return _scalar_axis(key)
        except ValueError:
            # Non-numeric axis (e.g. sweeping whole fault specs):
            # the cell's position is the plotting axis.
            return float(self._key_index(key))

    def _point_kwargs(self, key: Any) -> Dict[str, Any]:
        """Sweep ``build(key)`` hook: the run kwargs for one cell."""
        kwargs = self.scenario_at(key).run_kwargs()
        kwargs.pop("algorithm")   # sweep passes its own name
        kwargs["x"] = self._point_x(key)
        return kwargs

    def run(self, *, name: Optional[str] = None, parallel: bool = True,
            workers: Optional[int] = None, cache=None,
            executor: str = "steal",
            progress: Optional[bool] = None,
            point_timeout: Optional[float] = None,
            point_retries: int = 0):
        """Execute the whole grid and return a
        :class:`~repro.analysis.sweeps.SweepResult`.

        ``parallel=True`` (default) fans cells out over
        :func:`~repro.analysis.sweeps.parallel_sweep` workers
        (``executor`` selects work stealing vs the legacy pool);
        results are byte-identical to the sequential path either way.

        ``cache`` (a :class:`repro.analysis.cache.ResultCache`) serves
        cells whose scenario digest is already stored and persists
        fresh cells *as they complete*, so an interrupted grid resumes
        where it stopped and overlapping grids dedup their shared
        cells. Cached metrics are stored in *canonical* form -- the
        ``algorithm`` field carries the scenario's algorithm name, as
        ``Scenario.run()`` would report it, not this grid's display
        ``name`` -- and are relabeled on the way out, so entries are
        shared across differently-named grids, single-cell
        ``cached_run`` calls and ``verify="replay"`` re-executions.
        """
        from dataclasses import replace

        from .analysis.sweeps import (SweepPoint, SweepProgress,
                                      SweepResult, _progress_enabled,
                                      parallel_sweep, sweep)
        base = self.base
        label = name or base.algorithm.name
        keys = self.keys()
        run_kwargs = dict(max_events=base.max_events,
                          max_time=base.max_time,
                          trace_level=base.trace_level)
        if cache is None:
            if parallel:
                return parallel_sweep(
                    label, keys, self._point_kwargs,
                    workers=workers, executor=executor,
                    progress=progress, point_timeout=point_timeout,
                    point_retries=point_retries, **run_kwargs)
            return sweep(label, keys, self._point_kwargs,
                         progress=progress, **run_kwargs)

        points: List[Optional[SweepPoint]] = [None] * len(keys)
        miss_keys: List[Any] = []
        miss_slots: List[int] = []
        for slot, key in enumerate(keys):
            scenario = self.scenario_at(key)
            metrics = cache.get(scenario)
            if metrics is not None:
                if metrics.algorithm != label:
                    metrics = replace(metrics, algorithm=label)
                points[slot] = SweepPoint(x=self._point_x(key),
                                          metrics=metrics, key=key)
            else:
                miss_keys.append(key)
                miss_slots.append(slot)
        reporter = (SweepProgress(label, len(keys))
                    if _progress_enabled(progress) else None)
        if reporter is not None:
            reporter.note_cached(len(keys) - len(miss_keys))
            reporter.note_misses(len(miss_keys))
        worker_stats = None
        executor_stats = None
        if miss_keys:
            def _store(point) -> None:
                scenario = self.scenario_at(point.key)
                canonical = point.metrics
                if canonical.algorithm != scenario.algorithm.name:
                    canonical = replace(
                        canonical, algorithm=scenario.algorithm.name)
                cache.put(scenario, canonical)

            if parallel:
                fresh = parallel_sweep(
                    label, miss_keys, self._point_kwargs,
                    workers=workers, executor=executor,
                    point_timeout=point_timeout,
                    point_retries=point_retries, reporter=reporter,
                    on_point=_store, **run_kwargs)
            else:
                fresh = sweep(label, miss_keys, self._point_kwargs,
                              reporter=reporter, on_point=_store,
                              **run_kwargs)
            for slot, point in zip(miss_slots, fresh.points):
                points[slot] = point
            executor_stats = fresh.executor_stats
            if executor_stats is not None:
                worker_stats = executor_stats.get("per_worker")
        if reporter is not None:
            reporter.finish(worker_stats=worker_stats)
        return SweepResult(name=label, points=points,
                           executor_stats=executor_stats)


# ---------------------------------------------------------------------------
# Topology string shorthands (the CLI syntax)
# ---------------------------------------------------------------------------

#: ``name:args`` shorthand parsers for the historical CLI syntax.
_TOPOLOGY_SHORTHANDS: Dict[str, Callable[[str], Dict[str, Any]]] = {}


def _shorthand(name):
    def _decorate(fn):
        _TOPOLOGY_SHORTHANDS[name] = fn
        return fn
    return _decorate


@_shorthand("grid")
def _sh_grid(args: str) -> Dict[str, Any]:
    rows, _, cols = (args or "4x4").partition("x")
    return {"rows": int(rows), "cols": int(cols)}


@_shorthand("torus")
def _sh_torus(args: str) -> Dict[str, Any]:
    rows, _, cols = (args or "4x4").partition("x")
    return {"rows": int(rows), "cols": int(cols)}


@_shorthand("star-of-cliques")
def _sh_soc(args: str) -> Dict[str, Any]:
    arms, _, size = (args or "4x6").partition("x")
    return {"arms": int(arms), "size": int(size)}


@_shorthand("tree")
def _sh_tree(args: str) -> Dict[str, Any]:
    branching, _, depth = (args or "2x3").partition("x")
    return {"branching": int(branching), "depth": int(depth)}


@_shorthand("barbell")
def _sh_barbell(args: str) -> Dict[str, Any]:
    size, _, path = (args or "4x2").partition("x")
    return {"clique_size": int(size), "path_length": int(path)}


@_shorthand("random")
def _sh_random(args: str) -> Dict[str, Any]:
    n, _, seed = (args or "16").partition(":")
    out: Dict[str, Any] = {"n": int(n)}
    if seed:
        out["seed"] = int(seed)
    return out


@_shorthand("geometric")
def _sh_geometric(args: str) -> Dict[str, Any]:
    n, _, seed = (args or "24").partition(":")
    out: Dict[str, Any] = {"n": int(n)}
    if seed:
        out["seed"] = int(seed)
    return out


def parse_topology_spec(text: str) -> TopologySpec:
    """Parse ``name[:args]`` topology shorthands into a spec.

    Known shapes keep their historical syntax (``grid:4x6``,
    ``random:16:3``); any registered name additionally accepts
    ``name``, ``name:<first-param>`` or ``name:k=v,k=v`` -- so a
    topology registered by user code is immediately addressable from
    the CLI. Unknown names raise :class:`UnknownNameError` listing
    the live registry.
    """
    name, _, args = text.partition(":")
    builder = TOPOLOGIES.get(name)   # raises UnknownNameError
    if "=" in args:
        params: Dict[str, Any] = {}
        for pair in args.split(","):
            key, eq, raw = pair.partition("=")
            if not eq:
                raise ScenarioError(
                    f"bad topology param {pair!r} in {text!r} "
                    f"(expected k=v)")
            params[key.strip()] = _literal(raw.strip())
        return TopologySpec(name, **params)
    shorthand = _TOPOLOGY_SHORTHANDS.get(name)
    if shorthand is not None:
        return TopologySpec(name, **shorthand(args))
    if not args:
        return TopologySpec(name)
    # Bare positional shorthand: value binds the builder's first param.
    first = next(iter(inspect.signature(builder).parameters), None)
    if first is None:
        raise ScenarioError(
            f"topology {name!r} takes no parameters, got {args!r}")
    return TopologySpec(name, **{first: _literal(args)})


def _literal(raw: str) -> Any:
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def parse_dynamics_spec(text: str) -> DynamicsSpec:
    """Parse ``name[:k=v,...]`` dynamics shorthands into a spec.

    The CLI syntax of ``--dynamics``: ``edge-churn:rate=0.05``,
    ``random-waypoint:radius=0.3,speed=0.1``, or a bare ``name``.
    Underscores in the name are accepted for the hyphenated built-ins
    (``edge_churn`` == ``edge-churn``). A bare ``name:value`` binds
    the builder's first parameter. Unknown names raise
    :class:`UnknownNameError` listing the live registry.
    """
    name, _, args = text.partition(":")
    if name not in DYNAMICS and "_" in name \
            and name.replace("_", "-") in DYNAMICS:
        name = name.replace("_", "-")
    builder = DYNAMICS.get(name)   # raises UnknownNameError
    if not args:
        return DynamicsSpec(name)
    if "=" in args:
        params: Dict[str, Any] = {}
        for pair in args.split(","):
            key, eq, raw = pair.partition("=")
            if not eq:
                raise ScenarioError(
                    f"bad dynamics param {pair!r} in {text!r} "
                    f"(expected k=v)")
            params[key.strip()] = _literal(raw.strip())
        return DynamicsSpec(name, **params)
    # Bare positional shorthand: value binds the builder's first
    # parameter after the (graph, seed) contract arguments.
    signature = iter(inspect.signature(builder).parameters)
    next(signature, None)  # graph
    next(signature, None)  # seed
    first = next(signature, None)
    if first is None:
        raise ScenarioError(
            f"dynamics {name!r} takes no parameters, got {args!r}")
    return DynamicsSpec(name, **{first: _literal(args)})


# ===========================================================================
# Built-in catalogue
# ===========================================================================
# These registrations subsume the string tables the CLI, runner and
# experiment drivers used to duplicate. Parameter names and defaults
# deliberately mirror the legacy factories so scenarios resolve to
# byte-identical executions (pinned by tests/test_scenario.py).

from .core import (BenOrConsensus, ByzantineConsensus,  # noqa: E402
                   GatherAllConsensus, PaxosFloodNode, TwoPhaseConsensus,
                   WPaxosConfig, WPaxosNode, max_tolerance)
from .macsim.crash import CrashPlan, crash_plan  # noqa: E402
from .macsim.faults import (ByzantineFaultModel, ByzantinePlan,  # noqa: E402
                            CorruptStrategy, CrashFaultModel,
                            EquivocateStrategy, OmissionFaultModel,
                            OmissionPlan, SilentStrategy)
from .macsim.dynamics import (EdgeChurn, NodeChurn,  # noqa: E402
                              RandomWaypoint, ScriptedDynamics)
from .macsim.schedulers import (AdversarialUnreliableScheduler,  # noqa: E402
                                BernoulliUnreliableScheduler,
                                EagerDeliveryScheduler,
                                JitteredRoundScheduler, MaxDelayScheduler,
                                PartitionScheduler, RandomDelayScheduler,
                                ScriptedScheduler, ScriptedStep,
                                SilencingScheduler, StaggeredScheduler,
                                SynchronousScheduler)
from .topology import standard as _topo  # noqa: E402

#: Byzantine strategy names accepted by the ``byzantine`` fault model
#: (and the CLI's ``--byz-strategy``).
BYZANTINE_STRATEGIES = {
    "silent": SilentStrategy,
    "corrupt": CorruptStrategy,
    "equivocate": EquivocateStrategy,
}


def _uid_map(graph, base: int = 1) -> Dict[Any, int]:
    """Canonical-order uids (``index + base``), the legacy CLI rule."""
    return {v: i + base for i, v in enumerate(graph.nodes)}


def _require_single_hop(graph, algorithm: str) -> None:
    if graph.diameter() > 1:
        raise ScenarioError(
            f"{algorithm} requires a single hop (clique) topology")


def _tail_nodes(graph, count: int, nodes, kind: str) -> List[Any]:
    """Fault targets: explicit labels, or the last ``count`` nodes of
    the canonical order (the legacy CLI rule)."""
    if nodes is not None:
        labels = list(nodes)
        for label in labels:
            if not graph.has_node(label):
                raise ScenarioError(
                    f"{kind} fault model names unknown node {label!r}")
        return labels
    if count < 0:
        raise ScenarioError(f"{kind} count must be non-negative")
    if count >= graph.n:
        raise ScenarioError(
            f"{kind} fault model must leave at least one correct node "
            f"(count={count}, n={graph.n})")
    return list(graph.nodes)[-count:] if count else []


# -- topologies -------------------------------------------------------------

@register_topology("clique")
def _t_clique(n: int = 8):
    """Complete graph (single hop)."""
    return _topo.clique(n)


@register_topology("line")
def _t_line(n: int = 8):
    """Path graph; diameter n-1 (the worst-case multihop shape)."""
    return _topo.line(n)


@register_topology("ring")
def _t_ring(n: int = 8):
    """Cycle graph."""
    return _topo.ring(n)


@register_topology("star")
def _t_star(n: int = 8):
    """Hub-and-leaves bottleneck."""
    return _topo.star(n)


@register_topology("grid")
def _t_grid(rows: int = 4, cols: int = 4):
    """rows x cols mesh."""
    return _topo.grid(rows, cols)


@register_topology("torus")
def _t_torus(rows: int = 4, cols: int = 4):
    """Wrap-around mesh."""
    return _topo.torus(rows, cols)


@register_topology("tree")
def _t_tree(branching: int = 2, depth: int = 3):
    """Complete branching-ary tree."""
    return _topo.balanced_tree(branching, depth)


@register_topology("barbell")
def _t_barbell(clique_size: int = 4, path_length: int = 2):
    """Two cliques joined by a path."""
    return _topo.barbell(clique_size, path_length)


@register_topology("star-of-cliques")
def _t_star_of_cliques(arms: int = 4, size: int = 6):
    """Hub joined to arms cliques (the aggregation stress shape)."""
    return _topo.star_of_cliques(arms, size)


@register_topology("random")
def _t_random(n: int = 16, density: float = 0.1, seed: int = 0):
    """Random connected graph: spanning tree + G(n, density) edges."""
    return _topo.random_connected(n, density, seed=seed)


@register_topology("geometric")
def _t_geometric(n: int = 24, radius: float = 0.3, seed: int = 0):
    """Random geometric graph on the unit square, stitched connected."""
    return _topo.random_geometric(n, radius, seed=seed)


# -- schedulers -------------------------------------------------------------

@register_scheduler("synchronous")
def _s_synchronous(f_ack: float = 1.0):
    """Lock-step rounds of length f_ack."""
    return SynchronousScheduler(f_ack)


@register_scheduler("random")
def _s_random(f_ack: float = 1.0, seed: Optional[int] = None,
              min_fraction: float = 0.0):
    """Uniformly random delivery/ack delays within f_ack."""
    return RandomDelayScheduler(f_ack, seed=seed,
                                min_fraction=min_fraction)


@register_scheduler("max-delay")
def _s_max_delay(f_ack: float = 1.0):
    """Adversarial: every delivery and ack at the last legal moment."""
    return MaxDelayScheduler(f_ack)


@register_scheduler("jittered")
def _s_jittered(round_length: float = 1.0, jitter: float = 0.25,
                seed: Optional[int] = None):
    """TDMA-like rounds with bounded per-delivery jitter."""
    return JitteredRoundScheduler(round_length, jitter, seed=seed)


@register_scheduler("staggered")
def _s_staggered(step: float = 1.0, max_degree: int = 64,
                 reverse: bool = False):
    """Serialized one-at-a-time deliveries (FLP-style orderings)."""
    return StaggeredScheduler(step, max_degree=max_degree,
                              reverse=reverse)


@register_scheduler("eager")
def _s_eager(f_prog: float = 0.5, f_ack: float = 1.0,
             seed: Optional[int] = None, worst_case_acks: bool = True):
    """Fast deliveries (F_prog) under a slack ack bound (F_ack)."""
    return EagerDeliveryScheduler(f_prog, f_ack, seed=seed,
                                  worst_case_acks=worst_case_acks)


@register_scheduler("bernoulli-unreliable")
def _s_bernoulli(p: float = 0.5, seed: Optional[int] = None,
                 inner=None):
    """Dual-graph wrapper: each unreliable link delivers w.p. p."""
    return BernoulliUnreliableScheduler(
        inner if inner is not None else SynchronousScheduler(1.0),
        p, seed=seed)


@register_scheduler("adversarial-unreliable")
def _s_adversarial_unreliable(cutoff: float = 10.0, inner=None):
    """Dual-graph wrapper: unreliable links die at the cutoff."""
    return AdversarialUnreliableScheduler(
        inner if inner is not None else SynchronousScheduler(1.0),
        cutoff)


def _spec_label(key: Any) -> Any:
    """JSON dict keys are strings; map digit-like ones back to the
    integer node labels the topologies use."""
    if isinstance(key, str):
        try:
            return int(key)
        except ValueError:
            return key
    return key


@register_scheduler("silencing")
def _s_silencing(silenced=(), release_time: float = 4.0, inner=None):
    """Withhold broadcasts of the ``silenced`` nodes until release.

    The paper's semi-synchronous adversary (Theorems 3.3/3.9) in
    spec-friendly form: ``silenced`` is a JSON list of node labels,
    ``inner`` an optional nested scheduler spec (default: synchronous
    rounds of length 1).
    """
    return SilencingScheduler(
        inner if inner is not None else SynchronousScheduler(1.0),
        [_spec_label(v) for v in silenced], release_time)


@register_scheduler("partition")
def _s_partition(side_a=(), release_time: float = 4.0,
                 round_length: float = 1.0, inner=None):
    """Delay cross-cut deliveries between two sides until release.

    The Theorem 3.10 partition adversary: ``side_a`` is a JSON list of
    the nodes on one side of the vertex cut; the other side is the
    complement. The inner scheduler must be synchronous (pass
    ``round_length`` instead of a nested spec in the common case).
    """
    if inner is None:
        inner = SynchronousScheduler(round_length)
    elif not isinstance(inner, SynchronousScheduler):
        raise ScenarioError(
            "partition scheduler requires a synchronous inner "
            "scheduler")
    return PartitionScheduler(inner, [_spec_label(v) for v in side_a],
                              release_time)


@register_scheduler("scripted")
def _s_scripted(scripts=None, f_ack: float = 100.0, fallback=None):
    """Replay hand-scripted delivery plans from a JSON timeline.

    ``scripts`` maps node label -> list of steps for that node's
    successive broadcasts; each step is ``{"ack": offset,
    "deliveries": {neighbor: offset}}`` (offsets relative to the
    broadcast start; unlisted neighbors receive at the ack offset).
    Node labels appear as JSON strings and are coerced back to ints
    where digit-like. ``fallback`` is an optional nested scheduler
    spec for unscripted broadcasts.
    """
    table = {}
    for node_key, steps in (scripts or {}).items():
        parsed = []
        for step in steps:
            offsets = {_spec_label(k): float(v) for k, v in
                       (step.get("deliveries") or {}).items()}
            parsed.append(ScriptedStep(
                delivery_offsets=offsets,
                ack_offset=float(step.get("ack", 1.0))))
        table[_spec_label(node_key)] = parsed
    return ScriptedScheduler(table, fallback=fallback, f_ack=f_ack)


# -- algorithms -------------------------------------------------------------

@register_algorithm("two-phase")
def _a_two_phase(graph, seed: int, uid_base: int = 1):
    """Two-Phase Consensus (Theorem 4.1; single hop only)."""
    _require_single_hop(graph, "two-phase")
    uid = _uid_map(graph, uid_base)
    return lambda label, value: TwoPhaseConsensus(uid[label], value)


@register_algorithm("wpaxos")
def _a_wpaxos(graph, seed: int, tree_priority: bool = True,
              aggregation: bool = True, retry_policy: str = "paper",
              attempts_per_change: int = 2):
    """wPAXOS (Theorem 4.6; any connected topology)."""
    uid = _uid_map(graph)
    n = graph.n

    def make(label, value):
        config = WPaxosConfig(tree_priority=tree_priority,
                              aggregation=aggregation,
                              retry_policy=retry_policy,
                              attempts_per_change=attempts_per_change)
        return WPaxosNode(uid[label], value, n, config)
    return make


@register_algorithm("gatherall")
def _a_gatherall(graph, seed: int):
    """GatherAll baseline (O(n * F_ack), Section 4.2)."""
    uid = _uid_map(graph)
    n = graph.n
    return lambda label, value: GatherAllConsensus(uid[label], value, n)


@register_algorithm("flood-paxos")
def _a_flood_paxos(graph, seed: int):
    """Flooding-PAXOS baseline (O(n * F_ack), Section 4.2)."""
    uid = _uid_map(graph)
    n = graph.n
    return lambda label, value: PaxosFloodNode(uid[label], value, n)


@register_algorithm("ben-or")
def _a_ben_or(graph, seed: int, f: Optional[int] = None,
              seed_scale: int = 101, uid_seed_scale: int = 1):
    """Ben-Or randomized consensus (single hop, crash minority)."""
    _require_single_hop(graph, "ben-or")
    uid = _uid_map(graph)
    n = graph.n
    tolerance = (n - 1) // 2 if f is None else f
    return lambda label, value: BenOrConsensus(
        uid[label], value, n, tolerance,
        seed=seed * seed_scale + uid_seed_scale * uid[label])


@register_algorithm("byzantine")
def _a_byzantine(graph, seed: int, f: Optional[int] = None,
                 relay: Optional[bool] = None, seed_scale: int = 101,
                 uid_seed_scale: int = 1):
    """Grading+amplification Byzantine consensus (n > 5f)."""
    uid = _uid_map(graph)
    n = graph.n
    tolerance = max_tolerance(n) if f is None else f
    use_relay = graph.diameter() > 1 if relay is None else relay
    return lambda label, value: ByzantineConsensus(
        uid[label], value, n, tolerance,
        seed=seed * seed_scale + uid_seed_scale * uid[label],
        relay=use_relay)


# -- fault models -----------------------------------------------------------

@register_fault_model("crash")
def _f_crash(graph, seed: int, node=None, time: float = 1.0,
             still_delivered=None, plans=None):
    """Fail-stop: crash one node (or a ``plans`` list of dicts)."""
    if plans is not None:
        return CrashFaultModel([CrashPlan.from_dict(p) for p in plans])
    if node is None:
        raise ScenarioError("crash fault model needs node= or plans=")
    if not graph.has_node(node):
        raise ScenarioError(f"crash fault model: unknown node {node!r}")
    return CrashFaultModel([crash_plan(node, float(time),
                                       still_delivered)])


@register_fault_model("omission")
def _f_omission(graph, seed: int, count: int = 1, send: bool = True,
                receive: bool = False, start: float = 0.0,
                drop_rate: float = 1.0, nodes=None):
    """Send/receive omission on the last ``count`` nodes."""
    targets = _tail_nodes(graph, count, nodes, "omission")
    return OmissionFaultModel([
        OmissionPlan(node=v, send=send, receive=receive, start=start,
                     drop_rate=drop_rate, seed=seed * 13 + i)
        for i, v in enumerate(targets)])


@register_fault_model("byzantine")
def _f_byzantine(graph, seed: int, count: int = 1,
                 strategy: str = "corrupt",
                 budget: Optional[int] = None,
                 plan_seed_scale: Optional[int] = None,
                 strategy_value=None, nodes=None):
    """Byzantine adversary on the last ``count`` nodes.

    ``plan_seed_scale`` switches plan seeding from the CLI rule
    (``seed * 13 + i``) to uid-proportional seeds
    (``plan_seed_scale * uid``, the E12 construction).
    """
    try:
        strategy_cls = BYZANTINE_STRATEGIES[strategy]
    except KeyError:
        raise UnknownNameError("byzantine strategy", strategy,
                               sorted(BYZANTINE_STRATEGIES)) from None
    targets = _tail_nodes(graph, count, nodes, "byzantine")
    uid = _uid_map(graph)
    plans = []
    for i, v in enumerate(targets):
        plan_seed = (plan_seed_scale * uid[v]
                     if plan_seed_scale is not None else seed * 13 + i)
        strat = (strategy_cls(strategy_value)
                 if strategy == "corrupt" and strategy_value is not None
                 else strategy_cls())
        plans.append(ByzantinePlan(node=v, strategy=strat,
                                   seed=plan_seed))
    return ByzantineFaultModel(plans, budget=budget)


# -- dynamics ---------------------------------------------------------------
# Builder contract: builder(graph, seed, **params) -> TopologyDynamics.
# Model RNGs derive from the scenario seed through a fixed affine map
# (seed * 7919 + salt) so one knob reseeds the whole run without the
# dynamics stream colliding with the scheduler/fault streams.

@register_dynamics("edge-churn")
def _d_edge_churn(graph, seed: int, rate: float = 0.05,
                  add_rate: Optional[float] = None,
                  epoch_length: float = 1.0,
                  floor: str = "spanning-tree"):
    """Seeded per-epoch link add/remove churn with a protected floor."""
    return EdgeChurn(rate=rate, add_rate=add_rate,
                     epoch_length=epoch_length, floor=floor,
                     seed=seed * 7919 + 11)


@register_dynamics("node-churn")
def _d_node_churn(graph, seed: int, leave_rate: float = 0.05,
                  rejoin_rate: float = 0.5, epoch_length: float = 1.0,
                  protect: int = 1):
    """Node leave/join churn with process-state reset on rejoin."""
    return NodeChurn(leave_rate=leave_rate, rejoin_rate=rejoin_rate,
                     epoch_length=epoch_length, protect=protect,
                     seed=seed * 7919 + 13)


@register_dynamics("random-waypoint")
def _d_random_waypoint(graph, seed: int, radius: float = 0.35,
                       speed: float = 0.08, epoch_length: float = 1.0,
                       stitch: bool = True):
    """Unit-square random-waypoint mobility with geometric links."""
    return RandomWaypoint(radius=radius, speed=speed,
                          epoch_length=epoch_length, stitch=stitch,
                          seed=seed * 7919 + 17)


@register_dynamics("scripted")
def _d_scripted(graph, seed: int, timeline=None):
    """Explicit topology timeline (JSON add/remove/leave/join)."""
    return ScriptedDynamics(timeline or ())


# -- overlays ---------------------------------------------------------------

@register_overlay("random-overlay")
def _o_random_overlay(graph, density: float = 0.1,
                      seed: Optional[int] = None):
    """Random non-edges of the base graph as unreliable links."""
    return _topo.unreliable_overlay(graph, density, seed=seed)


# -- initial values ---------------------------------------------------------

@register_values("alternating")
def _v_alternating(graph):
    """0/1/0/1... over the canonical node order (the default)."""
    return {v: i % 2 for i, v in enumerate(graph.nodes)}


@register_values("split")
def _v_split(graph):
    """First half 0, second half 1 (partition-argument inputs)."""
    half = graph.n // 2
    return {v: 0 if i < half else 1 for i, v in enumerate(graph.nodes)}


@register_values("two-thirds-zeros")
def _v_two_thirds_zeros(graph):
    """Two-thirds zeros: clear but non-unanimous majority (E12)."""
    nodes = list(graph.nodes)
    cut = (2 * len(nodes)) // 3
    return {v: 0 if i < cut else 1 for i, v in enumerate(nodes)}
