"""repro: reproduction of "Consensus with an Abstract MAC Layer".

A full Python implementation of Calvin Newport's PODC 2014 paper
(arXiv:1405.1382): the abstract MAC layer model as an executable
simulator, the paper's two consensus algorithms (Two-Phase Consensus
and wPAXOS with its four support services), the baselines it argues
against, and machine-checked reproductions of every lower bound.

Quick start::

    from repro import (build_simulation, check_consensus, clique,
                       SynchronousScheduler, TwoPhaseConsensus)

    graph = clique(5)
    values = {v: v % 2 for v in graph.nodes}
    sim = build_simulation(
        graph,
        lambda v: TwoPhaseConsensus(uid=v, initial_value=values[v]),
        SynchronousScheduler(1.0))
    result = sim.run()
    print(result.decisions)                       # everyone agrees
    print(check_consensus(result.trace, values).ok)  # True

See README.md for the architecture tour and DESIGN.md / EXPERIMENTS.md
for the reproduction methodology and measured results.
"""

from .macsim import (CrashPlan, EdgeChurn, NodeChurn, Process,
                     RandomWaypoint, RunResult, ScriptedDynamics,
                     Simulator, TopologyDelta, TopologyDynamics,
                     build_simulation, check_consensus,
                     check_model_invariants, connectivity_report,
                     crash_plan)
from .macsim.schedulers import (AdversarialUnreliableScheduler,
                                BernoulliUnreliableScheduler,
                                JitteredRoundScheduler,
                                MaxDelayScheduler, PartitionScheduler,
                                RandomDelayScheduler, Scheduler,
                                ScriptedScheduler, SilencingScheduler,
                                StaggeredScheduler, SynchronousScheduler)
from .topology import (Graph, clique, grid, kd_network, line,
                       network_a, network_b, random_connected,
                       random_geometric, ring, star, star_of_cliques,
                       torus, verify_figure1)
from .topology.standard import unreliable_overlay
from .core import (AnonymousMinFlood, BenOrConsensus,
                   ConsensusProcess, GatherAllConsensus,
                   NoSizeMinIdFlood, PaxosFloodNode, SafetyMonitor,
                   TwoPhaseConsensus, WPaxosConfig, WPaxosNode)
from .registry import (register_algorithm, register_dynamics,
                       register_fault_model, register_overlay,
                       register_scheduler, register_topology,
                       register_values)
from .scenario import (AlgorithmSpec, DynamicsSpec, FaultSpec,
                       OverlaySpec, Scenario, ScenarioError,
                       ScenarioGrid, SchedulerSpec, TopologySpec)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrate
    "Simulator",
    "build_simulation",
    "RunResult",
    "Process",
    "CrashPlan",
    "crash_plan",
    "check_consensus",
    "check_model_invariants",
    # schedulers
    "Scheduler",
    "SynchronousScheduler",
    "RandomDelayScheduler",
    "JitteredRoundScheduler",
    "MaxDelayScheduler",
    "SilencingScheduler",
    "StaggeredScheduler",
    "PartitionScheduler",
    "ScriptedScheduler",
    "BernoulliUnreliableScheduler",
    "AdversarialUnreliableScheduler",
    # topologies
    "Graph",
    "clique",
    "line",
    "ring",
    "star",
    "grid",
    "torus",
    "star_of_cliques",
    "random_connected",
    "random_geometric",
    "network_a",
    "network_b",
    "kd_network",
    "verify_figure1",
    "unreliable_overlay",
    # algorithms
    "ConsensusProcess",
    "TwoPhaseConsensus",
    "WPaxosNode",
    "WPaxosConfig",
    "SafetyMonitor",
    "GatherAllConsensus",
    "PaxosFloodNode",
    "AnonymousMinFlood",
    "NoSizeMinIdFlood",
    "BenOrConsensus",
    # dynamics
    "TopologyDynamics",
    "TopologyDelta",
    "EdgeChurn",
    "NodeChurn",
    "RandomWaypoint",
    "ScriptedDynamics",
    "connectivity_report",
    # scenarios
    "Scenario",
    "ScenarioError",
    "ScenarioGrid",
    "AlgorithmSpec",
    "TopologySpec",
    "SchedulerSpec",
    "FaultSpec",
    "OverlaySpec",
    "DynamicsSpec",
    "register_algorithm",
    "register_topology",
    "register_scheduler",
    "register_fault_model",
    "register_dynamics",
    "register_overlay",
    "register_values",
]
